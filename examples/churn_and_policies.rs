//! Churn tolerance and window-closure policies: replay a PlanetLab-style
//! submission trace against the paper's four policies (§5.1, Figure 6) and
//! show how Dissent's servers keep making progress while a wait-for-everyone
//! policy stalls on stragglers.
//!
//! ```text
//! cargo run --release --example churn_and_policies
//! ```

use dissent::protocol::{ClientAction, GroupBuilder, Session, WindowPolicy};
use dissent_bench::window_policy_study;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Part 1: policy study over the synthetic trace (the Figure-6 data).
    println!("window-closure policies over a 560-client PlanetLab-style trace:");
    for r in window_policy_study(60) {
        let mut v = r.completion_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {:<32} median {:>7.2} s   p95 {:>7.2} s   missed clients {:>5.2}%",
            r.name,
            v[v.len() / 2],
            v[(v.len() - 1) * 95 / 100],
            r.missed_fraction * 100.0
        );
    }

    // Part 2: functional churn demo — a quarter of the clients vanish and the
    // round still completes, because servers only XOR pads for submitters.
    let mut rng = StdRng::seed_from_u64(3);
    let clients = 12;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(6)
        .with_window_policy(WindowPolicy::default())
        .build();
    let mut session = Session::new(&group, &mut rng).expect("session setup");
    println!("\nfunctional churn demo ({clients} clients, 3 servers):");
    for round in 0..4u64 {
        let actions: Vec<ClientAction> = (0..clients)
            .map(|c| {
                if rng.gen_bool(0.25) {
                    ClientAction::Offline
                } else if c as u64 == round {
                    ClientAction::Send(format!("status update {round}").into_bytes())
                } else {
                    ClientAction::Idle
                }
            })
            .collect();
        let result = session.run_round(&actions, &mut rng);
        println!(
            "  round {:>2}: {:>2}/{} submitted (threshold {}), {} message(s) delivered",
            result.round,
            result.participation,
            clients,
            result.required_participation,
            result.messages.len()
        );
    }
}
