//! Quickstart: set up a small Dissent group, run the scheduling key shuffle,
//! and exchange a few anonymous messages.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dissent::protocol::{ClientAction, GroupBuilder, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A group of 8 clients served by 3 administratively independent servers.
    // The anytrust assumption: at least one of the three is honest.
    let group = GroupBuilder::new(8, 3).with_shuffle_soundness(8).build();
    println!("group id: {}", group.config.group_id_hex());

    // Session setup runs the verifiable key shuffle that assigns every
    // client a secret pseudonym slot.
    let mut session = Session::new(&group, &mut rng).expect("session setup");
    println!(
        "key shuffle complete: {} pseudonym slots assigned",
        session.pseudonym_keys().len()
    );

    // Client 5 wants to post anonymously.  Round 0 carries its slot-open
    // request; round 1 carries the message.
    let mut actions = vec![ClientAction::Idle; 8];
    actions[5] = ClientAction::Send(b"the committee meets at dawn".to_vec());
    let r0 = session.run_round(&actions, &mut rng);
    println!(
        "round {}: {} participants, {} messages",
        r0.round,
        r0.participation,
        r0.messages.len()
    );

    let r1 = session.run_round(&vec![ClientAction::Idle; 8], &mut rng);
    for (slot, msg) in &r1.messages {
        println!(
            "round {}: slot {} says {:?} (no one can tell which client owns the slot)",
            r1.round,
            slot,
            String::from_utf8_lossy(msg)
        );
    }
    assert!(r1.certified, "every server signed the round output");
}
