//! Anonymous microblogging: the paper's §4.2 workload on the in-memory
//! session — a fraction of clients post short messages each round and the
//! feed collects whatever the DC-net reveals.
//!
//! ```text
//! cargo run --example microblog
//! ```

use dissent::apps::microblog::{Feed, MicroblogWorkload};
use dissent::protocol::{GroupBuilder, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let clients = 20;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(6)
        .build();
    let mut session = Session::new(&group, &mut rng).expect("session setup");

    // A livelier posting rate than the paper's 1% so a short demo shows output.
    let workload = MicroblogWorkload {
        post_probability: 0.15,
        post_bytes: 48,
        offline_probability: 0.05,
    };
    let mut feed = Feed::new();
    for round in 0..8u64 {
        let actions = workload.actions(clients, round, &mut rng);
        let result = session.run_round(&actions, &mut rng);
        feed.ingest(&result);
        println!(
            "round {:>2}: participation {:>2}/{}  posts so far {}",
            result.round,
            result.participation,
            clients,
            feed.len()
        );
    }
    println!("\nanonymous feed:");
    for post in &feed.posts {
        println!(
            "  [round {:>2}, slot {:>2}] {}",
            post.round,
            post.slot,
            String::from_utf8_lossy(&post.body).trim_end_matches('.')
        );
    }
}
