//! Local-area anonymous web browsing (WiNoN, §4.3/§5.4): tunnel HTTP flows
//! through the SOCKS framing layer and compare download times under the four
//! access configurations of Figure 10.
//!
//! ```text
//! cargo run --example web_browsing
//! ```

use dissent::apps::socks::{split_flow, Reassembler};
use dissent::apps::web::{alexa_like_corpus, BrowsingConfig, BrowsingModel};

fn main() {
    // Part 1: the SOCKS framing round trip an entry/exit node pair performs.
    let request = b"GET /index.html HTTP/1.1\r\nHost: news.example\r\n\r\n".to_vec();
    let frames = split_flow(0x51ca, "news.example", 80, &request, 160);
    println!(
        "tunnelling a {}-byte request as {} slot-sized frames",
        request.len(),
        frames.len()
    );
    let mut exit = Reassembler::new();
    let mut delivered = None;
    for f in frames {
        delivered = exit.ingest(f).or(delivered);
    }
    let flow = delivered.expect("flow reassembled at the exit node");
    println!(
        "exit node forwards {} bytes to {}:{}",
        flow.data.len(),
        flow.dest_host,
        flow.dest_port
    );

    // Part 2: Figure 10 — Alexa-like Top-100 downloads under each config.
    let corpus = alexa_like_corpus(100, 0xA1E);
    let model = BrowsingModel::default();
    println!("\nAlexa-like Top-100 downloads on a 24 Mbps WiFi LAN (mean seconds/page):");
    for cfg in BrowsingConfig::all() {
        let times = model.download_corpus(cfg, &corpus);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {:<16} mean {:>6.1} s   median {:>6.1} s   p90 {:>6.1} s",
            cfg.label(),
            mean,
            sorted[sorted.len() / 2],
            sorted[(sorted.len() - 1) * 9 / 10]
        );
    }
    println!("\n(the paper reports ~10 s / 40 s / 45 s / 55 s per ~1 MB page for the same four configurations)");
}
