//! Disruption and the accusation process (§3.9): a malicious client jams an
//! anonymous sender's slot; the victim finds a witness bit, files a
//! pseudonym-signed accusation, and the servers trace and expel the
//! disruptor without ever learning who the victim is.
//!
//! ```text
//! cargo run --example accusation
//! ```

use dissent::protocol::{ClientAction, GroupBuilder, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let clients = 6;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(6)
        .build();
    let mut session = Session::new(&group, &mut rng).expect("session setup");

    // Round 0: the victim (client 1) asks for its message slot.
    let mut actions = vec![ClientAction::Idle; clients];
    actions[1] = ClientAction::Send(b"leak: the minister owns the mill".to_vec());
    session.run_round(&actions, &mut rng);

    // Rounds 1..: client 4 keeps disrupting the victim's slot.
    let victim_slot = session.slot_of_client(1);
    println!("victim owns slot {victim_slot}; client 4 starts jamming it");
    for _ in 0..4 {
        let mut actions = vec![ClientAction::Idle; clients];
        actions[4] = ClientAction::Disrupt { victim_slot };
        let result = session.run_round(&actions, &mut rng);
        println!(
            "round {}: corrupted slots {:?}, expelled {:?}",
            result.round, result.corrupted_slots, result.expelled
        );
        if !result.expelled.is_empty() {
            break;
        }
    }
    assert!(session.expelled().contains(&4), "the disruptor is expelled");

    // With the disruptor gone the victim's retransmission goes through.
    let mut actions = vec![ClientAction::Idle; clients];
    actions[1] = ClientAction::Send(b"leak: the minister owns the mill".to_vec());
    session.run_round(&actions, &mut rng);
    let result = session.run_round(&vec![ClientAction::Idle; clients], &mut rng);
    for (slot, msg) in &result.messages {
        println!(
            "delivered after expulsion: slot {} -> {:?}",
            slot,
            String::from_utf8_lossy(msg)
        );
    }
}
