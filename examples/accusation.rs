//! Disruption and the accusation process (§3.9): a malicious client jams an
//! anonymous sender's slot; the victim finds a witness bit, files a
//! pseudonym-signed accusation, and the servers trace and expel the
//! disruptor without ever learning who the victim is.
//!
//! ```text
//! cargo run --example accusation
//! ```

use dissent::crypto::dh::DhKeyPair;
use dissent::crypto::group::Group;
use dissent::dcnet::accusation::{
    build_rebuttal, check_rebuttals, Rebuttal, RebuttalContext, RebuttalOutcome,
};
use dissent::dcnet::pad::pad_bit;
use dissent::protocol::{ClientAction, GroupBuilder, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let clients = 6;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(6)
        .build();
    let mut session = Session::new(&group, &mut rng).expect("session setup");

    // Round 0: the victim (client 1) asks for its message slot.
    let mut actions = vec![ClientAction::Idle; clients];
    actions[1] = ClientAction::Send(b"leak: the minister owns the mill".to_vec());
    session.run_round(&actions, &mut rng);

    // Rounds 1..: client 4 keeps disrupting the victim's slot.
    let victim_slot = session.slot_of_client(1);
    println!("victim owns slot {victim_slot}; client 4 starts jamming it");
    for _ in 0..4 {
        let mut actions = vec![ClientAction::Idle; clients];
        actions[4] = ClientAction::Disrupt { victim_slot };
        let result = session.run_round(&actions, &mut rng);
        println!(
            "round {}: corrupted slots {:?}, expelled {:?}",
            result.round, result.corrupted_slots, result.expelled
        );
        if !result.expelled.is_empty() {
            break;
        }
    }
    assert!(session.expelled().contains(&4), "the disruptor is expelled");

    // With the disruptor gone the victim's retransmission goes through.
    let mut actions = vec![ClientAction::Idle; clients];
    actions[1] = ClientAction::Send(b"leak: the minister owns the mill".to_vec());
    session.run_round(&actions, &mut rng);
    let result = session.run_round(&vec![ClientAction::Idle; clients], &mut rng);
    for (slot, msg) in &result.messages {
        println!(
            "delivered after expulsion: slot {} -> {:?}",
            slot,
            String::from_utf8_lossy(msg)
        );
    }

    // Epilogue: the rebuttal protocol (paper §3.9 case c).  A malicious
    // server frames three clients by lying about their shared pad bits; each
    // files a rebuttal revealing the raw DH element with a DLEQ proof, and
    // the whole wave is checked in one batched verification.
    let group = Group::testing_256();
    let mut rng = StdRng::seed_from_u64(7);
    let server_kp = DhKeyPair::generate(&group, &mut rng);
    let framed: Vec<DhKeyPair> = (0..3)
        .map(|_| DhKeyPair::generate(&group, &mut rng))
        .collect();
    let (key_context, round, total_len, bit) = (&b"demo-group"[..], 11u64, 64usize, 123usize);
    let rebuttals: Vec<Rebuttal> = framed
        .iter()
        .enumerate()
        .map(|(i, kp)| {
            build_rebuttal(
                &mut rng,
                &group,
                i as u32,
                0,
                kp.secret(),
                server_kp.public(),
            )
        })
        .collect();
    let ctxs: Vec<RebuttalContext> = framed
        .iter()
        .map(|kp| RebuttalContext {
            group: &group,
            client_pk: kp.public(),
            server_pk: server_kp.public(),
            key_context,
            round,
            total_len,
            bit,
        })
        .collect();
    // The lying server claimed the opposite of every true pad bit.
    let items: Vec<(&RebuttalContext, &Rebuttal, bool)> = ctxs
        .iter()
        .zip(&rebuttals)
        .zip(&framed)
        .map(|((ctx, reb), kp)| {
            let true_bit = pad_bit(
                &kp.shared_secret(&group, server_kp.public(), key_context),
                round,
                total_len,
                bit,
            );
            (ctx, reb, !true_bit)
        })
        .collect();
    let outcomes = check_rebuttals(&items);
    for (i, outcome) in outcomes.iter().enumerate() {
        println!("rebuttal of framed client {i}: {outcome:?}");
        assert_eq!(*outcome, RebuttalOutcome::ServerLied(0));
    }
}
