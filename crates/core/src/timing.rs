//! Round-timing simulation: the quantitative half of the reproduction.
//!
//! Figures 6–9 of the paper report *time per round* and *time per protocol
//! phase* as functions of client count, server count, message size, window
//! policy and testbed.  Those quantities are sums of well-defined terms —
//! client computation, client→server transfers, server↔server exchanges,
//! pad expansion, shuffle exponentiations — all of which the
//! `dissent-net` models capture.  This module assembles the terms into the
//! same round structure the real protocol follows, so the harnesses in
//! `dissent-bench` can sweep group sizes into the thousands without paying
//! hours of real 2048-bit exponentiations (see DESIGN.md §2).
//!
//! The decomposition mirrors the paper's Figure 7/8 split:
//!
//! * **client submission** — from clients receiving the previous cleartext
//!   to the servers holding the current round's ciphertexts (client compute,
//!   upstream transfer, straggler delays, window-closure policy);
//! * **server processing** — inventory exchange, pad expansion and XOR,
//!   commitment + ciphertext + signature exchanges, and pushing the signed
//!   cleartext back to the clients.

use crate::policy::{WindowOutcome, WindowPolicy};
use dissent_crypto::padding;
use dissent_dcnet::slots::PAYLOAD_HEADER_LEN;
use dissent_net::churn::ChurnModel;
use dissent_net::costmodel::CostModel;
use dissent_net::sim::{to_secs, SimTime};
use dissent_net::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Traffic pattern of a scenario (paper §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Microblogging: a random `percent_senders`% of clients submit
    /// `message_bytes`-byte messages each round (the paper used 1% / 128 B).
    Microblog {
        /// Per-message size in bytes.
        message_bytes: usize,
        /// Percentage of clients that send each round (0–100).
        percent_senders: u32,
    },
    /// Data sharing: a single client transmits `message_bytes` per round
    /// (the paper used 128 KB).
    Bulk {
        /// Per-round transfer size in bytes.
        message_bytes: usize,
    },
}

impl Workload {
    /// Per-slot overhead in bytes, derived from the real dcnet wire layout
    /// (self-randomizing padding + payload header) rather than hardcoded,
    /// so the timing model cannot silently drift from
    /// `dissent-dcnet::slots`.
    pub const SLOT_OVERHEAD: usize = padding::OVERHEAD + PAYLOAD_HEADER_LEN;

    /// The paper's microblog workload: 1 % of clients send 128-byte posts.
    pub fn paper_microblog() -> Self {
        Workload::Microblog {
            message_bytes: 128,
            percent_senders: 1,
        }
    }

    /// The paper's data-sharing workload: one 128 KB message per round.
    pub fn paper_bulk() -> Self {
        Workload::Bulk {
            message_bytes: 128 * 1024,
        }
    }

    /// Number of open slots and bytes per open slot for `num_clients`.
    pub fn open_slots(&self, num_clients: usize) -> (usize, usize) {
        match *self {
            Workload::Microblog {
                message_bytes,
                percent_senders,
            } => {
                let senders = ((num_clients as f64) * (percent_senders as f64) / 100.0)
                    .ceil()
                    .max(1.0) as usize;
                (senders, message_bytes + Self::SLOT_OVERHEAD)
            }
            Workload::Bulk { message_bytes } => (1, message_bytes + Self::SLOT_OVERHEAD),
        }
    }

    /// The DC-net cleartext length for one round.
    pub fn cleartext_len(&self, num_clients: usize) -> usize {
        let (slots, bytes) = self.open_slots(num_clients);
        num_clients.div_ceil(8) + slots * bytes
    }
}

/// Everything needed to simulate rounds of one scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Topology (client/server/internet links and counts).
    pub topology: Topology,
    /// Computation-cost model.
    pub cost: CostModel,
    /// Client churn/straggler model.
    pub churn: ChurnModel,
    /// Submission-window policy.
    pub policy: WindowPolicy,
    /// Traffic workload.
    pub workload: Workload,
    /// How many Dissent client processes share one physical machine (the
    /// DeterLab evaluation ran up to 16 per machine); scales client-side
    /// compute and its share of the uplink.
    pub oversubscription: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Scenario {
    /// The DeterLab configuration used for Figures 7–9: 100 Mbps links,
    /// 10 ms server RTTs, 50 ms client links, up to 16 client processes per
    /// physical machine (320 machines).
    pub fn deterlab(num_clients: usize, num_servers: usize, workload: Workload) -> Self {
        let physical_machines = 320.0;
        Scenario {
            topology: Topology::deterlab(num_clients, num_servers),
            cost: CostModel::default(),
            churn: ChurnModel::deterlab(),
            policy: WindowPolicy::default(),
            workload,
            oversubscription: (num_clients as f64 / physical_machines).max(1.0),
            seed: 0xF16,
        }
    }

    /// The PlanetLab configuration of §5.2: 17 servers (16 EC2 + Yale),
    /// public-Internet clients.
    pub fn planetlab(num_clients: usize, num_servers: usize, workload: Workload) -> Self {
        Scenario {
            topology: Topology::planetlab(num_clients, num_servers),
            cost: CostModel::default(),
            churn: ChurnModel::planetlab(),
            policy: WindowPolicy::default(),
            workload,
            oversubscription: 1.0,
            seed: 0xF17,
        }
    }
}

/// Timing breakdown of one simulated round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Client-submission phase duration.
    pub client_submission: SimTime,
    /// Server-processing phase duration.
    pub server_processing: SimTime,
    /// Clients whose ciphertexts made the window.
    pub included: usize,
    /// Clients that submitted after the window closed.
    pub missed: usize,
    /// Whether the hard deadline forced the window shut.
    pub hit_hard_deadline: bool,
}

impl RoundTiming {
    /// Total round duration.
    pub fn total(&self) -> SimTime {
        self.client_submission + self.server_processing
    }

    /// Total round duration in seconds.
    pub fn total_secs(&self) -> f64 {
        to_secs(self.total())
    }
}

/// Per-client submission delays for one round (behavioural delay + compute +
/// upstream transfer), for the clients that are online.
pub fn submission_delays(scenario: &Scenario, rng: &mut StdRng) -> Vec<SimTime> {
    let n = scenario.topology.num_clients;
    let m = scenario.topology.num_servers;
    let total_len = scenario.workload.cleartext_len(n);
    let behaviors = scenario.churn.sample_population(rng, n);
    let compute = (scenario.cost.client_round_compute(total_len, m) as f64
        * scenario.oversubscription) as SimTime;
    behaviors
        .iter()
        .filter_map(|b| b.delay())
        .map(|behavioural| {
            let transfer = (scenario
                .topology
                .client_link
                .transfer_time_jittered(total_len, rng) as f64
                * scenario.oversubscription) as SimTime;
            // Client processes time-share their physical machine (the
            // DeterLab runs packed up to 16 per host), so behavioural delays
            // inflate with the oversubscription factor too.
            let behavioural = (behavioural as f64 * scenario.oversubscription) as SimTime;
            behavioural + compute + transfer
        })
        .collect()
}

/// Apply the scenario's window policy to a set of submission delays.
///
/// The servers' expectation is the set of clients actually participating
/// (they track the previous round's participation count, §3.7), so the
/// policy fraction is taken over the eventual submitters rather than the
/// full static roster.
pub fn close_window(scenario: &Scenario, delays: &[SimTime]) -> WindowOutcome {
    scenario.policy.apply(delays, delays.len())
}

/// The server-processing phase duration for one round.
pub fn server_processing(scenario: &Scenario, participating: usize) -> SimTime {
    let n = scenario.topology.num_clients;
    let m = scenario.topology.num_servers.max(1);
    let total_len = scenario.workload.cleartext_len(n);
    let per_server_clients = participating.div_ceil(m);
    let link = &scenario.topology.server_link;
    let client_link = &scenario.topology.client_link;

    // Ingest: the last ciphertexts are serialized into the server's NIC.
    let ingest = link.serialization_time(per_server_clients * total_len);
    // Inventory exchange: one round trip of small lists among the servers.
    let inventory = link.rtt() + link.serialization_time(participating * 4 * m);
    // Pad expansion + XOR + commitment.
    let compute =
        scenario
            .cost
            .server_round_compute(total_len, participating, per_server_clients, m);
    // Commitment exchange (32 bytes each), then full server ciphertexts to
    // every other server, then signatures.
    let commits = link.latency_us + link.serialization_time(32 * m);
    let exchange = link.latency_us + link.serialization_time(total_len * m.saturating_sub(1));
    let signatures = link.latency_us + link.serialization_time(96 * m);
    // Distribute the signed cleartext to the attached clients.
    let distribute =
        client_link.latency_us + link.serialization_time(per_server_clients * total_len);
    ingest + inventory + compute + commits + exchange + signatures + distribute
}

/// Simulate one round end-to-end.
pub fn simulate_round(scenario: &Scenario, rng: &mut StdRng) -> RoundTiming {
    let delays = submission_delays(scenario, rng);
    let window = close_window(scenario, &delays);
    let server = server_processing(scenario, window.included.max(1));
    RoundTiming {
        client_submission: window.close_time,
        server_processing: server,
        included: window.included,
        missed: window.missed,
        hit_hard_deadline: window.hit_hard_deadline,
    }
}

/// Simulate `rounds` consecutive rounds.
pub fn simulate_rounds(scenario: &Scenario, rounds: usize) -> Vec<RoundTiming> {
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    (0..rounds)
        .map(|_| simulate_round(scenario, &mut rng))
        .collect()
}

/// Phase durations of a full protocol run (Figure 9): key shuffle, one
/// DC-net exchange, the accusation (blame) shuffle, and blame evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullProtocolTiming {
    /// The scheduling key shuffle.
    pub key_shuffle: SimTime,
    /// One DC-net round.
    pub dcnet_round: SimTime,
    /// The accusation (general message) shuffle.
    pub blame_shuffle: SimTime,
    /// The blame evaluation.
    pub blame_evaluation: SimTime,
}

/// Simulate the four phases of Figure 9 for a scenario.
pub fn simulate_full_protocol(scenario: &Scenario) -> FullProtocolTiming {
    let n = scenario.topology.num_clients;
    let m = scenario.topology.num_servers.max(1);
    let link = &scenario.topology.server_link;
    let cost = &scenario.cost;

    // Element + proof bytes per shuffle entry (2048-bit elements → 256-byte
    // elements, two per ciphertext, plus the per-entry share of the proof).
    let entry_bytes = 2 * 256 + 128;

    // Key shuffle: clients submit (client link), then each server in turn
    // shuffles, proves, and forwards the list; every other server verifies
    // in parallel with the next pass, so the critical path per pass is the
    // prover's work plus the transfer plus one verification.
    let submit =
        scenario.topology.client_link.transfer_time(entry_bytes) + cost.modexp_us as SimTime * 2;
    let per_pass = cost.key_shuffle_pass(n)           // prove
        + cost.key_shuffle_pass(n)                    // verify by peers
        + link.transfer_time(n * entry_bytes);
    let key_shuffle = submit + per_pass * m as SimTime;

    // One DC-net round under the same scenario.
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x9);
    let dcnet_round = simulate_round(scenario, &mut rng).total();

    // Blame (accusation) shuffle: a general message shuffle over the same
    // population — message embedding and verification make each pass several
    // times more expensive than a key-shuffle pass.
    let blame_per_pass = cost.message_shuffle_pass(n)
        + cost.message_shuffle_pass(n)
        + link.transfer_time(n * entry_bytes * 2);
    let blame_shuffle = submit + blame_per_pass * m as SimTime;

    // Blame evaluation: servers exchange revealed bits (small) and recompute
    // pads for every participating client.
    let blame_evaluation =
        link.rtt() + link.serialization_time(n * 2 * m) + cost.blame_evaluation(n, m) * 2;

    FullProtocolTiming {
        key_shuffle,
        dcnet_round,
        blame_shuffle,
        blame_evaluation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dissent_net::SECOND;

    #[test]
    fn workload_slot_math_matches_paper() {
        // The per-slot overhead is the real dcnet wire layout: padding
        // (seed + length + checksum) plus the payload header.
        assert_eq!(
            Workload::SLOT_OVERHEAD,
            padding::OVERHEAD + PAYLOAD_HEADER_LEN
        );
        let micro = Workload::paper_microblog();
        let (senders, slot) = micro.open_slots(1000);
        assert_eq!(senders, 10);
        assert_eq!(slot, 128 + Workload::SLOT_OVERHEAD);
        let bulk = Workload::paper_bulk();
        let (senders, slot) = bulk.open_slots(1000);
        assert_eq!(senders, 1);
        assert_eq!(slot, 128 * 1024 + Workload::SLOT_OVERHEAD);
        // Cleartext length includes the request-bit region.
        assert_eq!(micro.cleartext_len(8), 1 + 128 + Workload::SLOT_OVERHEAD);
        // The derived overhead exactly fits an encoded slot payload: a
        // 128-byte message needs a slot of 128 + SLOT_OVERHEAD bytes.
        let config = dissent_dcnet::slots::SlotConfig::default();
        assert_eq!(config.len_for_message(128), 128 + Workload::SLOT_OVERHEAD);
    }

    #[test]
    fn round_time_grows_with_client_count() {
        let small = Scenario::deterlab(64, 32, Workload::paper_microblog());
        let large = Scenario::deterlab(5120, 32, Workload::paper_microblog());
        let t_small = simulate_rounds(&small, 10);
        let t_large = simulate_rounds(&large, 10);
        let mean =
            |v: &[RoundTiming]| v.iter().map(|r| r.total_secs()).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&t_large) > mean(&t_small),
            "{} vs {}",
            mean(&t_large),
            mean(&t_small)
        );
    }

    #[test]
    fn small_groups_hit_sub_second_latency() {
        // §5.2: "delays were on the order of 500 to 600 ms for 32 to 256
        // clients" — the simulated shape should stay in the sub-second to
        // ~1 s range for those sizes.
        let s = Scenario::deterlab(128, 32, Workload::paper_microblog());
        let rounds = simulate_rounds(&s, 20);
        let mean = rounds.iter().map(|r| r.total_secs()).sum::<f64>() / rounds.len() as f64;
        assert!(mean > 0.1 && mean < 2.0, "mean = {mean}");
    }

    #[test]
    fn bulk_workload_slower_than_microblog() {
        let micro = Scenario::deterlab(640, 32, Workload::paper_microblog());
        let bulk = Scenario::deterlab(640, 32, Workload::paper_bulk());
        let tm = simulate_rounds(&micro, 5);
        let tb = simulate_rounds(&bulk, 5);
        let mean =
            |v: &[RoundTiming]| v.iter().map(|r| r.total_secs()).sum::<f64>() / v.len() as f64;
        assert!(mean(&tb) > mean(&tm) * 1.5);
    }

    #[test]
    fn single_server_bulk_is_worse_than_many_servers() {
        // Figure 8: for the 128 KB scenario the utility of extra servers is
        // clear, because a lone server must push every client's copy itself.
        let one = Scenario::deterlab(640, 1, Workload::paper_bulk());
        let many = Scenario::deterlab(640, 24, Workload::paper_bulk());
        let t_one = simulate_rounds(&one, 5);
        let t_many = simulate_rounds(&many, 5);
        let mean =
            |v: &[RoundTiming]| v.iter().map(|r| r.total_secs()).sum::<f64>() / v.len() as f64;
        assert!(mean(&t_one) > mean(&t_many));
    }

    #[test]
    fn planetlab_rounds_slower_than_deterlab() {
        let det = Scenario::deterlab(320, 17, Workload::paper_microblog());
        let pl = Scenario::planetlab(320, 17, Workload::paper_microblog());
        let td = simulate_rounds(&det, 10);
        let tp = simulate_rounds(&pl, 10);
        let mean =
            |v: &[RoundTiming]| v.iter().map(|r| r.total_secs()).sum::<f64>() / v.len() as f64;
        assert!(mean(&tp) > mean(&td));
    }

    #[test]
    fn full_protocol_ordering_matches_figure_9() {
        // Figure 9: blame shuffle ≫ key shuffle ≫ DC-net round; blame
        // evaluation is comparatively small.
        let s = Scenario::deterlab(500, 24, Workload::paper_microblog());
        let t = simulate_full_protocol(&s);
        assert!(t.blame_shuffle > t.key_shuffle);
        assert!(t.key_shuffle > t.dcnet_round);
        assert!(t.blame_evaluation < t.key_shuffle);
        // At 1000 clients the accusation shuffle crosses the one-hour mark
        // in the paper; with the default cost model it should at least reach
        // the tens-of-minutes range.
        let s1000 = Scenario::deterlab(1000, 24, Workload::paper_microblog());
        let t1000 = simulate_full_protocol(&s1000);
        assert!(to_secs(t1000.blame_shuffle) > 900.0);
        // And the DC-net round stays in the seconds range — "extremely
        // efficient, accounting for a negligible portion of total time".
        assert!(t1000.dcnet_round < 30 * SECOND);
    }

    #[test]
    fn wait_all_policy_suffers_from_stragglers() {
        let mut cut = Scenario::planetlab(500, 17, Workload::paper_microblog());
        cut.policy = WindowPolicy::FractionThenMultiplier {
            fraction: 0.95,
            multiplier: 1.1,
            hard_deadline: 120 * SECOND,
        };
        let mut wait = cut.clone();
        wait.policy = WindowPolicy::WaitAll {
            hard_deadline: 120 * SECOND,
        };
        let tc = simulate_rounds(&cut, 20);
        let tw = simulate_rounds(&wait, 20);
        let median = |v: &[RoundTiming]| {
            let mut xs: Vec<f64> = v.iter().map(|r| to_secs(r.client_submission)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        // Figure 6: waiting for every client is an order of magnitude worse.
        assert!(
            median(&tw) > 5.0 * median(&tc),
            "{} vs {}",
            median(&tw),
            median(&tc)
        );
    }
}
