//! Group configuration and identities.
//!
//! A Dissent group is defined by a static file listing one public key per
//! server (provider) and one per client (member), plus the policy constants
//! α and the window-closure policy (paper §3.2, §3.7).  A cryptographic hash
//! of this definition serves as a self-certifying group identifier.
//!
//! For simulations and tests this module can also *generate* a whole group
//! deterministically from a seed, so a 1,000-client group is reproducible
//! without storing a thousand keys.

use crate::policy::WindowPolicy;
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::group::{Element, Group};
use dissent_crypto::schnorr::SigningKeyPair;
use dissent_crypto::sha256::{sha256_tagged, to_hex};
use dissent_dcnet::slots::SlotConfig;
use serde::{Deserialize, Serialize};

/// The public definition of a Dissent group, distributed to every member.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupConfig {
    /// The algebraic group all public-key operations use.
    pub group: Group,
    /// Every server's Diffie–Hellman public key, in server order.
    pub server_dh_keys: Vec<Element>,
    /// Every server's signing public key, in server order.
    pub server_sign_keys: Vec<Element>,
    /// Every client's Diffie–Hellman public key, in roster order.
    pub client_dh_keys: Vec<Element>,
    /// Every client's signing public key, in roster order.
    pub client_sign_keys: Vec<Element>,
    /// The participation threshold α of §3.7 (0 ≤ α ≤ 1).
    pub alpha: f64,
    /// The submission-window closure policy of §5.1.
    pub window_policy: WindowPolicy,
    /// Slot scheduler configuration.
    pub slot_config: SlotConfig,
    /// Soundness parameter (shadow rounds) for the verifiable shuffles.
    pub shuffle_soundness: usize,
    /// How many completed rounds of blame evidence (client and server
    /// ciphertexts) the servers retain.  Accusations naming a round older
    /// than this horizon are rejected — the paper's bounded-blame window.
    /// Must be at least the pipeline window of any driver run on top.
    pub blame_horizon: u64,
}

impl GroupConfig {
    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.server_dh_keys.len()
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.client_dh_keys.len()
    }

    /// The self-certifying group identifier: a hash over the whole
    /// definition (paper §3.2).
    pub fn group_id(&self) -> [u8; 32] {
        let mut parts: Vec<Vec<u8>> = Vec::new();
        parts.push(self.group.name().as_bytes().to_vec());
        for k in self.server_dh_keys.iter().chain(&self.server_sign_keys) {
            parts.push(k.to_bytes(&self.group));
        }
        for k in self.client_dh_keys.iter().chain(&self.client_sign_keys) {
            parts.push(k.to_bytes(&self.group));
        }
        parts.push(format!("{:.6}", self.alpha).into_bytes());
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        sha256_tagged(&refs)
    }

    /// The group identifier as a hex string (used in logs and examples).
    pub fn group_id_hex(&self) -> String {
        to_hex(&self.group_id())
    }
}

/// The private keys held by one client.
#[derive(Clone, Debug)]
pub struct ClientIdentity {
    /// Index in the group roster.
    pub index: usize,
    /// Long-term Diffie–Hellman keypair (pad secrets).
    pub dh: DhKeyPair,
    /// Long-term signing keypair (message authentication).
    pub signing: SigningKeyPair,
}

/// The private keys held by one server.
#[derive(Clone, Debug)]
pub struct ServerIdentity {
    /// Index in the server list.
    pub index: usize,
    /// Long-term Diffie–Hellman keypair (pad secrets and shuffle layers).
    pub dh: DhKeyPair,
    /// Long-term signing keypair.
    pub signing: SigningKeyPair,
}

/// A fully-generated group: the public configuration plus every private
/// identity.  Only simulations and tests hold this; a real deployment would
/// distribute the identities to their owners.
#[derive(Clone, Debug)]
pub struct GeneratedGroup {
    /// The public group definition.
    pub config: GroupConfig,
    /// All server identities.
    pub servers: Vec<ServerIdentity>,
    /// All client identities.
    pub clients: Vec<ClientIdentity>,
}

/// Builder for deterministic group generation.
#[derive(Clone, Debug)]
pub struct GroupBuilder {
    group: Group,
    num_clients: usize,
    num_servers: usize,
    alpha: f64,
    window_policy: WindowPolicy,
    slot_config: SlotConfig,
    shuffle_soundness: usize,
    blame_horizon: u64,
    seed: u64,
}

impl GroupBuilder {
    /// Start building a group with `num_clients` clients and `num_servers`
    /// servers over the fast testing group.
    pub fn new(num_clients: usize, num_servers: usize) -> Self {
        GroupBuilder {
            group: Group::testing_256(),
            num_clients,
            num_servers,
            alpha: 0.95,
            window_policy: WindowPolicy::default(),
            slot_config: SlotConfig::default(),
            shuffle_soundness: 8,
            blame_horizon: 32,
            seed: 0xD155E27,
        }
    }

    /// Use a specific algebraic group (e.g. [`Group::rfc3526_2048`] for
    /// production-strength parameters).
    pub fn with_group(mut self, group: Group) -> Self {
        self.group = group;
        self
    }

    /// Set the participation threshold α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Set the window-closure policy.
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.window_policy = policy;
        self
    }

    /// Set the slot configuration.
    pub fn with_slot_config(mut self, slot_config: SlotConfig) -> Self {
        self.slot_config = slot_config;
        self
    }

    /// Set the shuffle soundness parameter.
    pub fn with_shuffle_soundness(mut self, soundness: usize) -> Self {
        self.shuffle_soundness = soundness.max(1);
        self
    }

    /// Set the blame retention horizon (rounds of evidence kept; must cover
    /// the deepest pipeline window the session will be driven with).
    pub fn with_blame_horizon(mut self, horizon: u64) -> Self {
        self.blame_horizon = horizon.max(1);
        self
    }

    /// Set the generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the group: every identity is derived deterministically from
    /// the seed, so two builders with identical parameters produce identical
    /// groups.
    pub fn build(self) -> GeneratedGroup {
        let servers: Vec<ServerIdentity> = (0..self.num_servers)
            .map(|i| ServerIdentity {
                index: i,
                dh: DhKeyPair::from_seed(
                    &self.group,
                    format!("{}-server-dh-{i}", self.seed).as_bytes(),
                ),
                signing: SigningKeyPair::from_seed(
                    &self.group,
                    format!("{}-server-sign-{i}", self.seed).as_bytes(),
                ),
            })
            .collect();
        let clients: Vec<ClientIdentity> = (0..self.num_clients)
            .map(|i| ClientIdentity {
                index: i,
                dh: DhKeyPair::from_seed(
                    &self.group,
                    format!("{}-client-dh-{i}", self.seed).as_bytes(),
                ),
                signing: SigningKeyPair::from_seed(
                    &self.group,
                    format!("{}-client-sign-{i}", self.seed).as_bytes(),
                ),
            })
            .collect();
        let config = GroupConfig {
            group: self.group,
            server_dh_keys: servers.iter().map(|s| s.dh.public().clone()).collect(),
            server_sign_keys: servers.iter().map(|s| s.signing.public().clone()).collect(),
            client_dh_keys: clients.iter().map(|c| c.dh.public().clone()).collect(),
            client_sign_keys: clients.iter().map(|c| c.signing.public().clone()).collect(),
            alpha: self.alpha,
            window_policy: self.window_policy,
            slot_config: self.slot_config,
            shuffle_soundness: self.shuffle_soundness,
            blame_horizon: self.blame_horizon,
        };
        GeneratedGroup {
            config,
            servers,
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_sizes() {
        let g = GroupBuilder::new(12, 3).build();
        assert_eq!(g.config.num_clients(), 12);
        assert_eq!(g.config.num_servers(), 3);
        assert_eq!(g.clients.len(), 12);
        assert_eq!(g.servers.len(), 3);
        assert_eq!(g.config.server_sign_keys.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GroupBuilder::new(5, 2).with_seed(7).build();
        let b = GroupBuilder::new(5, 2).with_seed(7).build();
        assert_eq!(a.config.group_id(), b.config.group_id());
        assert_eq!(a.clients[3].dh.public(), b.clients[3].dh.public());
        let c = GroupBuilder::new(5, 2).with_seed(8).build();
        assert_ne!(a.config.group_id(), c.config.group_id());
    }

    #[test]
    fn group_id_is_self_certifying() {
        // Changing any membership or policy detail changes the identifier.
        let base = GroupBuilder::new(4, 2).build();
        let different_alpha = GroupBuilder::new(4, 2).with_alpha(0.5).build();
        let different_size = GroupBuilder::new(5, 2).build();
        assert_ne!(base.config.group_id(), different_alpha.config.group_id());
        assert_ne!(base.config.group_id(), different_size.config.group_id());
        assert_eq!(base.config.group_id_hex().len(), 64);
    }

    #[test]
    fn identities_match_config_keys() {
        let g = GroupBuilder::new(3, 2).build();
        for (i, c) in g.clients.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.dh.public(), &g.config.client_dh_keys[i]);
            assert_eq!(c.signing.public(), &g.config.client_sign_keys[i]);
        }
        for (j, s) in g.servers.iter().enumerate() {
            assert_eq!(s.dh.public(), &g.config.server_dh_keys[j]);
        }
    }

    #[test]
    fn alpha_is_clamped() {
        let g = GroupBuilder::new(1, 1).with_alpha(7.0).build();
        assert_eq!(g.config.alpha, 1.0);
    }
}
