//! Typed protocol messages with canonical wire forms.
//!
//! The round engine in [`crate::round`] is driven by explicit messages
//! rather than shared memory: clients emit [`ClientSubmit`]s, servers
//! exchange [`ServerCommit`]/[`ServerReveal`] pairs (the commit–reveal step
//! of Algorithm 2 that stops a dishonest server adapting its ciphertext
//! after seeing the others'), every server signs the round output in a
//! [`Certify`], and disruption victims file [`AccusationFiled`]s.  Each
//! message has a canonical byte encoding — length-prefixed fields behind a
//! one-byte tag — so the same structures travel over a real transport, feed
//! the discrete-event simulator's size model, and can be archived for
//! audits.
//!
//! Ciphertext payloads are carried as `Arc<[u8]>`: a ciphertext is
//! materialized once when the client builds it and every later stage (server
//! combine, blame record, accusation reveal) shares that one allocation.

use dissent_crypto::group::{Group, Scalar};
use dissent_crypto::schnorr::Signature;
use dissent_dcnet::accusation::Accusation;
use dissent_dcnet::server::{ClientId, ServerId};
use std::sync::Arc;

/// A client's round ciphertext, addressed to its upstream server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientSubmit {
    /// The round the ciphertext belongs to.
    pub round: u64,
    /// The submitting client.
    pub client: ClientId,
    /// The upstream server the ciphertext is addressed to.
    pub upstream: ServerId,
    /// The DC-net ciphertext (shared, materialized exactly once).
    pub ciphertext: Arc<[u8]>,
}

/// A server's binding commitment to its round ciphertext (Algorithm 2,
/// step 3), broadcast before any ciphertext is revealed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerCommit {
    /// The round the commitment belongs to.
    pub round: u64,
    /// The committing server.
    pub server: ServerId,
    /// `HASH(round ‖ server ‖ s_j)`.
    pub commitment: [u8; 32],
}

/// A server's revealed round ciphertext, checked against its commitment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerReveal {
    /// The round the ciphertext belongs to.
    pub round: u64,
    /// The revealing server.
    pub server: ServerId,
    /// The server ciphertext `s_j`.
    pub ciphertext: Arc<[u8]>,
}

/// A server's signature over the round's certification digest (Algorithm 2,
/// step 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certify {
    /// The certified round.
    pub round: u64,
    /// The signing server.
    pub server: ServerId,
    /// Schnorr signature over the certification digest.
    pub signature: Signature,
}

/// A disruption victim's accusation, signed with its pseudonym key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccusationFiled {
    /// The accusation (round, slot, witness bit).
    pub accusation: Accusation,
    /// Pseudonym-key signature over [`Accusation::to_bytes`].
    pub signature: Signature,
}

/// The authenticated provenance of an inbound protocol message.
///
/// The transport's challenge–response handshake (`dissent-net::auth`) binds
/// each connection to one roster identity; the engine's `deliver_*` ingests
/// take that identity and drop any message whose embedded sender does not
/// match.  [`MessageOrigin::Local`] is the in-process drivers' origin — the
/// lock-step session, the pipelined driver and the simulator construct
/// message batches themselves, so every sender field is trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageOrigin {
    /// Constructed in-process by a trusted driver; sender fields are
    /// accepted as-is.
    Local,
    /// Received over a connection authenticated as this roster client.
    Client(ClientId),
    /// Received over a connection authenticated as this roster server.
    Server(ServerId),
}

impl MessageOrigin {
    /// May this origin deliver a `ClientSubmit` claiming `client`?
    pub fn allows_client(&self, client: ClientId) -> bool {
        match self {
            MessageOrigin::Local => true,
            MessageOrigin::Client(i) => *i == client,
            MessageOrigin::Server(_) => false,
        }
    }

    /// May this origin deliver a server-sent message claiming `server`?
    pub fn allows_server(&self, server: ServerId) -> bool {
        match self {
            MessageOrigin::Local => true,
            MessageOrigin::Client(_) => false,
            MessageOrigin::Server(j) => *j == server,
        }
    }
}

/// Any protocol message, for transports that multiplex one channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolMessage {
    /// Client → upstream server.
    ClientSubmit(ClientSubmit),
    /// Server → all servers.
    ServerCommit(ServerCommit),
    /// Server → all servers.
    ServerReveal(ServerReveal),
    /// Server → everyone.
    Certify(Certify),
    /// Victim → servers (via the accusation shuffle in the full protocol).
    AccusationFiled(AccusationFiled),
}

/// Errors decoding a wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// An embedded group element failed subgroup membership.
    BadElement,
    /// Bytes were left over after the message.
    TrailingBytes,
    /// A size field exceeds this platform's addressable range (a `u64`
    /// slot/bit index that does not fit in `usize` on a 32-bit target).
    Overflow,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadElement => write!(f, "embedded element is not a subgroup member"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::Overflow => write!(f, "size field exceeds the platform's address range"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_CLIENT_SUBMIT: u8 = 0x01;
const TAG_SERVER_COMMIT: u8 = 0x02;
const TAG_SERVER_REVEAL: u8 = 0x03;
const TAG_CERTIFY: u8 = 0x04;
const TAG_ACCUSATION: u8 = 0x05;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    // lint:allow(unchecked-wire-narrowing): encoder-side length of data we
    // produced ourselves; the transport's write_frame caps whole frames at
    // MAX_FRAME (16 MiB, far below u32::MAX) before any of this reaches
    // the wire.
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn put_signature(out: &mut Vec<u8>, group: &Group, sig: &Signature) {
    put_bytes(out, &sig.commitment.to_bytes(group));
    put_bytes(out, &sig.response.to_bytes(group));
}

/// Convert an exactly-`N`-byte slice into an array without a panic path:
/// `Reader::take` already guarantees the width, but attacker-reachable
/// decode code keeps every conversion fallible on principle.
fn fixed<const N: usize>(bytes: &[u8]) -> Result<[u8; N], WireError> {
    <[u8; N]>::try_from(bytes).map_err(|_| WireError::Truncated)
}

/// Cursor over a wire buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(fixed(self.take(4)?)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(fixed(self.take(8)?)?))
    }

    /// A length-prefixed field.  The declared length is validated against
    /// the bytes actually remaining *before* anything is sliced or copied,
    /// so a forged `0xFFFF_FFFF` prefix errors as `Truncated` without ever
    /// attempting a multi-GiB allocation at the `.into()`/`.to_vec()` call
    /// sites downstream.
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = usize::try_from(self.u32()?).map_err(|_| WireError::Overflow)?;
        if self.buf.len() - self.pos < len {
            return Err(WireError::Truncated);
        }
        self.take(len)
    }

    /// A `u64` field holding an in-memory index (slot, bit offset).  The
    /// checked narrowing matters on 32-bit targets, where `as usize` would
    /// silently truncate a forged 2^32+k index into a plausible small one.
    fn u64_index(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Overflow)
    }

    fn signature(&mut self, group: &Group) -> Result<Signature, WireError> {
        let commitment = group
            .element_from_bytes(self.bytes()?)
            .map_err(|_| WireError::BadElement)?;
        let response = Scalar::from_biguint(
            dissent_crypto::bigint::BigUint::from_bytes_be(self.bytes()?),
            group,
        );
        Ok(Signature {
            commitment,
            response,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

impl ProtocolMessage {
    /// A short label for logs and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMessage::ClientSubmit(_) => "client-submit",
            ProtocolMessage::ServerCommit(_) => "server-commit",
            ProtocolMessage::ServerReveal(_) => "server-reveal",
            ProtocolMessage::Certify(_) => "certify",
            ProtocolMessage::AccusationFiled(_) => "accusation",
        }
    }

    /// The round a message belongs to.
    pub fn round(&self) -> u64 {
        match self {
            ProtocolMessage::ClientSubmit(m) => m.round,
            ProtocolMessage::ServerCommit(m) => m.round,
            ProtocolMessage::ServerReveal(m) => m.round,
            ProtocolMessage::Certify(m) => m.round,
            ProtocolMessage::AccusationFiled(m) => m.accusation.round,
        }
    }

    /// Canonical wire encoding.  Signatures are encoded relative to the
    /// session group (fixed-width element/scalar fields).
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ProtocolMessage::ClientSubmit(m) => {
                out.push(TAG_CLIENT_SUBMIT);
                out.extend_from_slice(&m.round.to_be_bytes());
                out.extend_from_slice(&m.client.to_be_bytes());
                out.extend_from_slice(&m.upstream.to_be_bytes());
                put_bytes(&mut out, &m.ciphertext);
            }
            ProtocolMessage::ServerCommit(m) => {
                out.push(TAG_SERVER_COMMIT);
                out.extend_from_slice(&m.round.to_be_bytes());
                out.extend_from_slice(&m.server.to_be_bytes());
                out.extend_from_slice(&m.commitment);
            }
            ProtocolMessage::ServerReveal(m) => {
                out.push(TAG_SERVER_REVEAL);
                out.extend_from_slice(&m.round.to_be_bytes());
                out.extend_from_slice(&m.server.to_be_bytes());
                put_bytes(&mut out, &m.ciphertext);
            }
            ProtocolMessage::Certify(m) => {
                out.push(TAG_CERTIFY);
                out.extend_from_slice(&m.round.to_be_bytes());
                out.extend_from_slice(&m.server.to_be_bytes());
                put_signature(&mut out, group, &m.signature);
            }
            ProtocolMessage::AccusationFiled(m) => {
                out.push(TAG_ACCUSATION);
                out.extend_from_slice(&m.accusation.round.to_be_bytes());
                out.extend_from_slice(&(m.accusation.slot as u64).to_be_bytes());
                out.extend_from_slice(&(m.accusation.bit as u64).to_be_bytes());
                put_signature(&mut out, group, &m.signature);
            }
        }
        out
    }

    /// Decode a wire message.  Group elements inside signatures are
    /// membership-checked against `group`.
    pub fn from_bytes(bytes: &[u8], group: &Group) -> Result<ProtocolMessage, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            TAG_CLIENT_SUBMIT => ProtocolMessage::ClientSubmit(ClientSubmit {
                round: r.u64()?,
                client: r.u32()?,
                upstream: r.u32()?,
                ciphertext: r.bytes()?.into(),
            }),
            TAG_SERVER_COMMIT => ProtocolMessage::ServerCommit(ServerCommit {
                round: r.u64()?,
                server: r.u32()?,
                commitment: fixed(r.take(32)?)?,
            }),
            TAG_SERVER_REVEAL => ProtocolMessage::ServerReveal(ServerReveal {
                round: r.u64()?,
                server: r.u32()?,
                ciphertext: r.bytes()?.into(),
            }),
            TAG_CERTIFY => ProtocolMessage::Certify(Certify {
                round: r.u64()?,
                server: r.u32()?,
                signature: r.signature(group)?,
            }),
            TAG_ACCUSATION => ProtocolMessage::AccusationFiled(AccusationFiled {
                accusation: Accusation {
                    round: r.u64()?,
                    slot: r.u64_index()?,
                    bit: r.u64_index()?,
                },
                signature: r.signature(group)?,
            }),
            tag => return Err(WireError::BadTag(tag)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Compute the simulator's per-message wire sizes from the real encodings:
/// a sample of each message type is encoded for a round whose cleartext is
/// `total_len` bytes, so the discrete-event driver charges exactly the bytes
/// the typed messages would occupy on a real link.
pub fn sim_wire_sizes(group: &Group, total_len: usize) -> dissent_net::driver::WireSizes {
    let sig = Signature {
        commitment: group.generator(),
        response: Scalar::zero(),
    };
    let submit = ProtocolMessage::ClientSubmit(ClientSubmit {
        round: 0,
        client: 0,
        upstream: 0,
        ciphertext: vec![0u8; total_len].into(),
    });
    let commit = ProtocolMessage::ServerCommit(ServerCommit {
        round: 0,
        server: 0,
        commitment: [0u8; 32],
    });
    let reveal = ProtocolMessage::ServerReveal(ServerReveal {
        round: 0,
        server: 0,
        ciphertext: vec![0u8; total_len].into(),
    });
    let certify = ProtocolMessage::Certify(Certify {
        round: 0,
        server: 0,
        signature: sig,
    });
    let certify_len = certify.to_bytes(group).len();
    dissent_net::driver::WireSizes {
        client_submit: submit.to_bytes(group).len(),
        server_commit: commit.to_bytes(group).len(),
        server_reveal: reveal.to_bytes(group).len(),
        certify: certify_len,
        // The signed cleartext pushed back to each client: the raw output
        // plus one certification signature and a small header.
        cleartext_push: total_len + certify_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dissent_crypto::group::Group;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip(msg: ProtocolMessage, group: &Group) {
        let bytes = msg.to_bytes(group);
        let back = ProtocolMessage::from_bytes(&bytes, group).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(9);
        let kp = dissent_crypto::schnorr::SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"message");
        roundtrip(
            ProtocolMessage::ClientSubmit(ClientSubmit {
                round: 7,
                client: 3,
                upstream: 1,
                ciphertext: vec![1u8, 2, 3, 4, 5].into(),
            }),
            &group,
        );
        roundtrip(
            ProtocolMessage::ServerCommit(ServerCommit {
                round: 7,
                server: 2,
                commitment: [0xab; 32],
            }),
            &group,
        );
        roundtrip(
            ProtocolMessage::ServerReveal(ServerReveal {
                round: 7,
                server: 2,
                ciphertext: vec![9u8; 64].into(),
            }),
            &group,
        );
        roundtrip(
            ProtocolMessage::Certify(Certify {
                round: 7,
                server: 0,
                signature: sig.clone(),
            }),
            &group,
        );
        roundtrip(
            ProtocolMessage::AccusationFiled(AccusationFiled {
                accusation: Accusation {
                    round: 5,
                    slot: 2,
                    bit: 1234,
                },
                signature: sig,
            }),
            &group,
        );
    }

    #[test]
    fn truncation_and_bad_tags_are_rejected() {
        let group = Group::testing_256();
        let msg = ProtocolMessage::ServerCommit(ServerCommit {
            round: 1,
            server: 0,
            commitment: [7; 32],
        });
        let bytes = msg.to_bytes(&group);
        for cut in 0..bytes.len() {
            assert_eq!(
                ProtocolMessage::from_bytes(&bytes[..cut], &group),
                Err(WireError::Truncated),
                "prefix of {cut} bytes must be truncated"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            ProtocolMessage::from_bytes(&trailing, &group),
            Err(WireError::TrailingBytes)
        );
        let mut bad = bytes;
        bad[0] = 0x7f;
        assert!(matches!(
            ProtocolMessage::from_bytes(&bad, &group),
            Err(WireError::BadTag(0x7f))
        ));
    }

    #[test]
    fn non_member_signature_element_is_rejected_at_decode() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(11);
        let kp = dissent_crypto::schnorr::SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"m");
        let msg = ProtocolMessage::Certify(Certify {
            round: 1,
            server: 0,
            signature: sig,
        });
        let bytes = msg.to_bytes(&group);
        // Splice in a commitment of value 0 (never a subgroup member); the
        // decoder must refuse rather than hand a non-member to verification.
        let field_start = 1 + 8 + 4;
        let elt_len =
            u32::from_be_bytes(bytes[field_start..field_start + 4].try_into().unwrap()) as usize;
        let mut forged = bytes[..field_start].to_vec();
        forged.extend_from_slice(&1u32.to_be_bytes());
        forged.push(0);
        forged.extend_from_slice(&bytes[field_start + 4 + elt_len..]);
        assert_eq!(
            ProtocolMessage::from_bytes(&forged, &group),
            Err(WireError::BadElement)
        );
    }

    #[test]
    fn forged_giant_length_prefix_is_truncated_without_allocation() {
        // A ClientSubmit whose ciphertext length field is rewritten to
        // 0xFFFF_FFFF: the decoder must bounds-check the declared length
        // against the remaining buffer *before* any allocation, so this
        // returns `Truncated` immediately instead of reserving 4 GiB.
        let group = Group::testing_256();
        let msg = ProtocolMessage::ClientSubmit(ClientSubmit {
            round: 1,
            client: 0,
            upstream: 0,
            ciphertext: vec![0u8; 16].into(),
        });
        let mut bytes = msg.to_bytes(&group);
        let len_at = 1 + 8 + 4 + 4; // tag, round, client, upstream
        bytes[len_at..len_at + 4].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        assert_eq!(
            ProtocolMessage::from_bytes(&bytes, &group),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn u64_slot_and_bit_fields_use_checked_narrowing() {
        // On 64-bit targets any u64 index fits, so the full range must
        // round-trip; on 32-bit targets the same decode path returns
        // `WireError::Overflow` instead of silently truncating the index.
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(21);
        let kp = dissent_crypto::schnorr::SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"m");
        let big = u32::MAX as u64 + 17;
        let msg = ProtocolMessage::AccusationFiled(AccusationFiled {
            accusation: Accusation {
                round: 3,
                slot: 5,
                bit: 7,
            },
            signature: sig,
        });
        let mut bytes = msg.to_bytes(&group);
        // Rewrite the slot field (after tag + round) to a value above u32.
        bytes[9..17].copy_from_slice(&big.to_be_bytes());
        let decoded = ProtocolMessage::from_bytes(&bytes, &group);
        if usize::try_from(big).is_ok() {
            match decoded {
                Ok(ProtocolMessage::AccusationFiled(m)) => {
                    assert_eq!(m.accusation.slot as u64, big)
                }
                other => panic!("expected decode, got {other:?}"),
            }
        } else {
            assert_eq!(decoded, Err(WireError::Overflow));
        }
    }

    #[test]
    fn origin_gates_sender_identity() {
        assert!(MessageOrigin::Local.allows_client(3));
        assert!(MessageOrigin::Local.allows_server(1));
        assert!(MessageOrigin::Client(3).allows_client(3));
        assert!(!MessageOrigin::Client(3).allows_client(4));
        assert!(!MessageOrigin::Client(3).allows_server(3));
        assert!(MessageOrigin::Server(1).allows_server(1));
        assert!(!MessageOrigin::Server(1).allows_server(0));
        assert!(!MessageOrigin::Server(1).allows_client(1));
    }

    #[test]
    fn sim_wire_sizes_track_cleartext_length() {
        // Sizes are derived from the real encodings, not hardcoded constants.
        let group = Group::testing_256();
        let small = sim_wire_sizes(&group, 100);
        let large = sim_wire_sizes(&group, 10_000);
        assert_eq!(
            large.client_submit - small.client_submit,
            9_900,
            "submit grows byte-for-byte with the cleartext"
        );
        assert_eq!(small.server_commit, large.server_commit);
        assert!(small.certify > 1 + 8 + 4 + 8);
        assert!(large.cleartext_push > 10_000);
    }
}
