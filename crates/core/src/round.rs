//! The round state machine: one DC-net round as explicit message-driven
//! phases.
//!
//! `Session::run_round` used to be a single ~300-line lock-step body; it is
//! now a thin driver over the phase functions here, and the pipelined driver
//! in [`crate::pipeline`] interleaves the same phases across a window of
//! in-flight rounds.  Each phase consumes and produces the typed protocol
//! messages of [`crate::messages`]:
//!
//! ```text
//! Submission ──ClientSubmit──▶ Commit ──ServerCommit──▶ Reveal
//!     ──ServerReveal──▶ Certification ──Certify──▶ Complete
//!                                 └─▶ finalize: output, AccusationFiled, blame
//! ```
//!
//! All state that belongs to *one round in flight* lives in [`RoundState`];
//! the [`Session`](crate::session::Session) only holds cross-round state
//! (roster, schedule, expulsions, blame records).  That separation is what
//! lets W rounds proceed concurrently.

use crate::messages::{
    AccusationFiled, Certify, ClientSubmit, MessageOrigin, ServerCommit, ServerReveal,
};
use crate::policy::participation_threshold;
use crate::session::{ClientAction, RoundRecord, RoundResult, Session};
use dissent_crypto::schnorr;
use dissent_crypto::sha256::sha256_tagged;
use dissent_dcnet::accusation;
use dissent_dcnet::client::TransmissionRecord;
use dissent_dcnet::server::{
    self, certification_digest, combine, server_ciphertext, trim_inventories, ClientId, ServerId,
};
use dissent_dcnet::slots::RoundLayout;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Where a round currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundPhase {
    /// Collecting client ciphertexts.
    Submission,
    /// Servers have the submissions; commitments are being exchanged.
    Commit,
    /// Commitments are bound; server ciphertexts are being revealed.
    Reveal,
    /// The cleartext is combined; certification signatures are circulating.
    Certification,
    /// The round output is certified and finalized.
    Complete,
}

/// All state of one round in flight.
#[derive(Clone, Debug)]
pub struct RoundState {
    /// The (frozen) layout this round runs under.
    pub layout: RoundLayout,
    /// Current phase.
    pub phase: RoundPhase,
    /// Per-upstream-server submissions, each ciphertext materialized once.
    pub(crate) per_server: BTreeMap<ServerId, BTreeMap<ClientId, Arc<[u8]>>>,
    /// Transmission records of clients that wrote to their slot this round
    /// (client-side secrets, kept for disruption detection), client order.
    pub(crate) records: Vec<(usize, TransmissionRecord)>,
    /// The agreed composite client list `l`.
    pub(crate) composite: Vec<ClientId>,
    /// Which server received each composite client's ciphertext.
    pub(crate) assignment: BTreeMap<ClientId, ServerId>,
    /// Server ciphertexts awaiting reveal (each server's own stash).
    pub(crate) pending_reveals: BTreeMap<ServerId, Arc<[u8]>>,
    /// Commitments received from the `ServerCommit` exchange.
    pub(crate) commitments: BTreeMap<ServerId, [u8; 32]>,
    /// Revealed server ciphertexts that passed the commitment check.
    pub(crate) server_cts: BTreeMap<ServerId, Arc<[u8]>>,
    /// Whether every reveal matched its commitment.
    pub(crate) commits_ok: bool,
    /// The combined round cleartext.
    pub(crate) cleartext: Vec<u8>,
    /// The certification digest, computed once in the certify phase.
    pub(crate) cert_digest: Option<[u8; 32]>,
    /// Whether every certification signature verified (and `commits_ok`).
    pub(crate) certified: bool,
}

impl RoundState {
    /// A fresh round over `layout`.
    pub fn new(layout: RoundLayout) -> Self {
        RoundState {
            layout,
            phase: RoundPhase::Submission,
            per_server: BTreeMap::new(),
            records: Vec::new(),
            composite: Vec::new(),
            assignment: BTreeMap::new(),
            pending_reveals: BTreeMap::new(),
            commitments: BTreeMap::new(),
            server_cts: BTreeMap::new(),
            commits_ok: false,
            cleartext: Vec::new(),
            cert_digest: None,
            certified: false,
        }
    }

    /// The round number.
    pub fn round(&self) -> u64 {
        self.layout.round
    }

    /// Whether the round output is certified: every reveal matched its
    /// commitment and every roster server's certification signature
    /// verified (recomputed by [`Session::deliver_certificates`]).
    pub fn is_certified(&self) -> bool {
        self.certified
    }

    /// A digest over everything a delivered message can touch: phase,
    /// submissions, composite/assignment, commitments, reveals, combined
    /// cleartext and certification state.  Diagnostic only — the fuzz
    /// harness compares fingerprints to prove that garbage or mutated
    /// frames fed through the `deliver_*` ingests never mutate the round.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.layout.round.to_be_bytes());
        buf.push(match self.phase {
            RoundPhase::Submission => 0,
            RoundPhase::Commit => 1,
            RoundPhase::Reveal => 2,
            RoundPhase::Certification => 3,
            RoundPhase::Complete => 4,
        });
        for (server, clients) in &self.per_server {
            buf.extend_from_slice(&(*server as u64).to_be_bytes());
            for (client, ct) in clients {
                buf.extend_from_slice(&(*client as u64).to_be_bytes());
                buf.extend_from_slice(&(ct.len() as u64).to_be_bytes());
                buf.extend_from_slice(ct);
            }
        }
        buf.extend_from_slice(&(self.records.len() as u64).to_be_bytes());
        for (slot, _) in &self.records {
            buf.extend_from_slice(&(*slot as u64).to_be_bytes());
        }
        for client in &self.composite {
            buf.extend_from_slice(&(*client as u64).to_be_bytes());
        }
        for (client, server) in &self.assignment {
            buf.extend_from_slice(&(*client as u64).to_be_bytes());
            buf.extend_from_slice(&(*server as u64).to_be_bytes());
        }
        for (server, ct) in &self.pending_reveals {
            buf.extend_from_slice(&(*server as u64).to_be_bytes());
            buf.extend_from_slice(ct);
        }
        for (server, commitment) in &self.commitments {
            buf.extend_from_slice(&(*server as u64).to_be_bytes());
            buf.extend_from_slice(commitment);
        }
        for (server, ct) in &self.server_cts {
            buf.extend_from_slice(&(*server as u64).to_be_bytes());
            buf.extend_from_slice(ct);
        }
        buf.push(self.commits_ok as u8);
        buf.extend_from_slice(&self.cleartext);
        if let Some(digest) = &self.cert_digest {
            buf.extend_from_slice(digest);
        }
        buf.push(self.certified as u8);
        sha256_tagged(&[b"dissent-round-fingerprint", &buf])
    }
}

/// Source of per-entity randomness for the round engine.
///
/// The lock-step path threads one caller-supplied RNG through every
/// operation in protocol order ([`SharedRng`]) — exactly the pre-refactor
/// behaviour.  The pipelined driver gives every client and server its own
/// deterministic stream ([`PerEntityRng`]), so the *interleaving* of phases
/// across in-flight rounds cannot change any entity's byte stream — the
/// property the W-equivalence tests rely on.
pub trait RngSource {
    /// The concrete RNG type handed out.
    type Rng: RngCore + ?Sized;
    /// The RNG driving client `i`'s randomness.
    fn client_rng(&mut self, client: usize) -> &mut Self::Rng;
    /// The RNG driving server `j`'s randomness.
    fn server_rng(&mut self, server: usize) -> &mut Self::Rng;
}

/// One shared RNG for every entity (the lock-step path).
pub struct SharedRng<'a, R: RngCore + ?Sized>(pub &'a mut R);

impl<R: RngCore + ?Sized> RngSource for SharedRng<'_, R> {
    type Rng = R;
    fn client_rng(&mut self, _client: usize) -> &mut R {
        self.0
    }
    fn server_rng(&mut self, _server: usize) -> &mut R {
        self.0
    }
}

/// An independent deterministic stream per client and per server, derived
/// from a master seed by domain-separated hashing.
pub struct PerEntityRng {
    clients: Vec<StdRng>,
    servers: Vec<StdRng>,
}

impl PerEntityRng {
    /// Derive streams for `num_clients` clients and `num_servers` servers.
    pub fn new(seed: u64, num_clients: usize, num_servers: usize) -> Self {
        let derive = |role: &[u8], index: usize| {
            let digest = sha256_tagged(&[
                b"dissent-round-rng",
                &seed.to_be_bytes(),
                role,
                &(index as u64).to_be_bytes(),
            ]);
            StdRng::from_seed(digest)
        };
        PerEntityRng {
            clients: (0..num_clients).map(|i| derive(b"client", i)).collect(),
            servers: (0..num_servers).map(|j| derive(b"server", j)).collect(),
        }
    }
}

impl RngSource for PerEntityRng {
    type Rng = StdRng;
    fn client_rng(&mut self, client: usize) -> &mut StdRng {
        &mut self.clients[client]
    }
    fn server_rng(&mut self, server: usize) -> &mut StdRng {
        &mut self.servers[server]
    }
}

impl Session {
    /// Open the next round in lock-step: its layout is the schedule's
    /// current layout.  (The pipelined driver freezes layouts for a whole
    /// batch instead.)
    pub fn begin_round(&self) -> RoundState {
        RoundState::new(self.schedule.layout())
    }

    /// **Submission phase (client side).**  Every online, non-expelled
    /// client turns its [`ClientAction`] into a DC-net ciphertext for the
    /// round `state` belongs to and addresses it to its upstream server.
    /// Transmission records (the client-side evidence needed to detect
    /// disruption of its own slot) are stashed in `state`.
    pub fn client_phase<S: RngSource>(
        &mut self,
        state: &mut RoundState,
        actions: &[ClientAction],
        rngs: &mut S,
    ) -> Vec<ClientSubmit> {
        assert_eq!(
            actions.len(),
            self.config.num_clients(),
            "one action per roster client required"
        );
        assert_eq!(
            state.phase,
            RoundPhase::Submission,
            "round already past submission"
        );
        let phase_start = Instant::now();
        let layout = state.layout.clone();
        let num_servers = self.config.num_servers();
        let mut out = Vec::new();
        for (i, action) in actions.iter().enumerate() {
            if self.expelled.contains(&(i as ClientId)) {
                continue;
            }
            let Some(submission) = self.build_submission(i, action, &layout, rngs.client_rng(i))
            else {
                continue;
            };
            let client = &mut self.clients[i];
            let ct = client
                .dcnet
                .ciphertext(rngs.client_rng(i), &layout, &submission);
            let mut bytes = ct.ciphertext;
            if let Some(record) = ct.record {
                state.records.push((i, record));
            }
            // A disruptor flips bits over its victim's slot on top of its
            // otherwise well-formed ciphertext.
            if let ClientAction::Disrupt { victim_slot } = action {
                if let Some(range) = layout.slots.get(*victim_slot).copied().flatten() {
                    let rng = rngs.client_rng(i);
                    for b in &mut bytes[range.offset..range.offset + range.len] {
                        *b ^= rng.next_u32() as u8;
                    }
                }
            }
            out.push(ClientSubmit {
                round: layout.round,
                client: i as ClientId,
                upstream: (i % num_servers) as ServerId,
                ciphertext: bytes.into(),
            });
        }
        self.metrics
            .phase_client
            .observe_duration(phase_start.elapsed());
        out
    }

    /// Deliver `ClientSubmit`s to the servers (the first well-formed
    /// submission per client wins; later duplicates are ignored).
    ///
    /// A submission is dropped unless it is well-formed for this round: the
    /// round number matches, the client is a non-expelled roster member, the
    /// upstream server is the one the balanced assignment fixes for that
    /// client (a spoofed upstream would otherwise plant a phantom inventory
    /// whose clients enter the composite list but whose ciphertexts never
    /// combine), and the ciphertext has exactly the round's length (a wrong
    /// length would poison the servers' XOR fold).
    ///
    /// `origin` is the authenticated identity of whichever connection (or
    /// in-process driver) delivered the batch: a submission claiming a
    /// different client than the connection authenticated as is dropped
    /// *here*, before it can race the honest one — first-write-wins alone
    /// cannot reject a spoof that arrives first, which is exactly the PR 5
    /// hole the transport's challenge–response handshake closes.
    /// [`MessageOrigin::Local`] (the in-process drivers, which construct
    /// their own batches) trusts the sender fields as before.
    pub fn deliver_submissions(
        &self,
        state: &mut RoundState,
        msgs: Vec<ClientSubmit>,
        origin: MessageOrigin,
    ) {
        assert_eq!(
            state.phase,
            RoundPhase::Submission,
            "submissions delivered out of phase"
        );
        let num_servers = self.config.num_servers();
        for j in 0..num_servers {
            state.per_server.entry(j as ServerId).or_default();
        }
        for msg in msgs {
            let client = msg.client as usize;
            if !origin.allows_client(msg.client)
                || msg.round != state.layout.round
                || client >= self.config.num_clients()
                || msg.upstream as usize != client % num_servers
                || self.expelled.contains(&msg.client)
                || msg.ciphertext.len() != state.layout.total_len
            {
                continue;
            }
            state
                .per_server
                .entry(msg.upstream)
                .or_default()
                .entry(msg.client)
                .or_insert(msg.ciphertext);
        }
    }

    /// **Commit phase (server side, Algorithm 2 steps 2–3).**  The servers
    /// exchange inventories, agree on the composite client list, expand
    /// their pads, and broadcast binding commitments to their ciphertexts.
    ///
    /// Every server's pad expansion is independent, so the M simulated
    /// servers run concurrently on the pool (each server's own fold shards
    /// further across clients inside `server_ciphertext`); results are keyed
    /// by server id, so scheduling cannot reorder them.
    pub fn server_commit_phase(&self, state: &mut RoundState) -> Vec<ServerCommit> {
        assert_eq!(
            state.phase,
            RoundPhase::Submission,
            "commit phase re-entered"
        );
        let phase_start = Instant::now();
        let round = state.layout.round;
        let inventories: BTreeMap<ServerId, Vec<ClientId>> = state
            .per_server
            .iter()
            .map(|(&j, subs)| (j, subs.keys().copied().collect()))
            .collect();
        let (trimmed, composite) = trim_inventories(&inventories);
        state.assignment = trimmed
            .iter()
            .flat_map(|(&srv, clients)| clients.iter().map(move |&c| (c, srv)))
            .collect();
        state.composite = composite;

        type ServerOutput = (ServerId, Vec<u8>, [u8; 32]);
        let total_len = state.layout.total_len;
        let composite = &state.composite;
        let per_server = &state.per_server;
        let server_outputs: Vec<ServerOutput> = {
            use rayon::prelude::*;
            let chunk = self
                .servers
                .len()
                .div_ceil(rayon::current_num_threads())
                .max(1);
            let mut shards: Vec<Vec<ServerOutput>> = Vec::new();
            self.servers
                .par_chunks(chunk)
                .map(|srvs| {
                    srvs.iter()
                        .map(|srv| {
                            let id = srv.index as ServerId;
                            let own: BTreeMap<ClientId, Arc<[u8]>> = trimmed[&id]
                                .iter()
                                .map(|c| (*c, per_server[&id][c].clone()))
                                .collect();
                            let sct = server_ciphertext(
                                round,
                                total_len,
                                composite,
                                &srv.client_secrets,
                                &own,
                            );
                            let commit = server::commitment(round, id, &sct);
                            (id, sct, commit)
                        })
                        .collect()
                })
                .collect_into_vec(&mut shards);
            shards.into_iter().flatten().collect()
        };
        let mut out = Vec::with_capacity(server_outputs.len());
        for (j, sct, commitment) in server_outputs {
            state.pending_reveals.insert(j, sct.into());
            out.push(ServerCommit {
                round,
                server: j,
                commitment,
            });
        }
        state.phase = RoundPhase::Commit;
        self.metrics
            .phase_commit
            .observe_duration(phase_start.elapsed());
        out
    }

    /// Record the commitment broadcast.  Once all commitments are bound the
    /// round can move to the reveal phase.
    ///
    /// Only roster servers may commit: a commit under a phantom server id is
    /// dropped, so an injected phantom commit+reveal pair can never stand in
    /// for a missing roster server's.  The *first* commitment per server is
    /// binding — a conflicting duplicate injected after the genuine broadcast
    /// is ignored rather than overwriting it, so injected garbage cannot veto
    /// an otherwise-complete round.
    ///
    /// Like every `deliver_*` ingest, this consumes its phase's whole message
    /// batch exactly once — that is the in-process drivers' contract, and
    /// out-of-phase delivery is a driver bug that panics.  A transport that
    /// receives messages individually must buffer them into per-phase batches
    /// (as `SimDriver` does) before handing them to the engine.
    ///
    /// `origin` must be allowed to speak for the commit's claimed server: a
    /// connection authenticated as server *j* (or as any client) cannot
    /// plant a commitment under server *k*'s id.
    pub fn deliver_commits(
        &self,
        state: &mut RoundState,
        msgs: Vec<ServerCommit>,
        origin: MessageOrigin,
    ) {
        assert_eq!(
            state.phase,
            RoundPhase::Commit,
            "commitments delivered out of phase"
        );
        for msg in msgs {
            if !origin.allows_server(msg.server)
                || msg.round != state.layout.round
                || msg.server as usize >= self.servers.len()
            {
                continue;
            }
            state
                .commitments
                .entry(msg.server)
                .or_insert(msg.commitment);
        }
        state.phase = RoundPhase::Reveal;
    }

    /// **Reveal phase.**  Each server publishes the ciphertext it committed
    /// to.
    pub fn server_reveal_phase(state: &mut RoundState) -> Vec<ServerReveal> {
        assert_eq!(
            state.phase,
            RoundPhase::Reveal,
            "reveal before commitments bound"
        );
        let round = state.layout.round;
        state
            .pending_reveals
            .iter()
            .map(|(&server, ct)| ServerReveal {
                round,
                server,
                ciphertext: ct.clone(),
            })
            .collect()
    }

    /// Check every reveal against its commitment (the step that stops a
    /// dishonest server adapting its ciphertext after seeing the others')
    /// and store the ciphertexts that bind.
    ///
    /// `commits_ok` requires a binding, correctly-sized reveal from *every*
    /// roster server: a missing reveal would leave that server's pads
    /// uncancelled and silently certify keystream garbage, so an incomplete
    /// set can never certify.  Reveals under a non-roster server id and
    /// reveals that fail the commitment or length check are simply dropped —
    /// an injected garbage reveal cannot veto a round whose roster reveals
    /// all bind (the commitment scheme already guarantees at most one
    /// binding ciphertext per server).
    pub fn deliver_reveals(
        &self,
        state: &mut RoundState,
        msgs: Vec<ServerReveal>,
        origin: MessageOrigin,
    ) {
        assert_eq!(
            state.phase,
            RoundPhase::Reveal,
            "reveals delivered out of phase"
        );
        let round = state.layout.round;
        for msg in msgs {
            if !origin.allows_server(msg.server)
                || msg.round != round
                || msg.server as usize >= self.servers.len()
            {
                continue;
            }
            let bound = msg.ciphertext.len() == state.layout.total_len
                && state.commitments.get(&msg.server).is_some_and(|c| {
                    server::verify_commitment(round, msg.server, &msg.ciphertext, c)
                });
            if bound {
                state.server_cts.insert(msg.server, msg.ciphertext);
            }
        }
        // Every roster server — by id, not by count — must have a binding
        // reveal, so a phantom entry can never stand in for a missing one.
        state.commits_ok =
            (0..self.servers.len()).all(|j| state.server_cts.contains_key(&(j as ServerId)));
        state.phase = RoundPhase::Certification;
    }

    /// **Certification phase (Algorithm 2 step 5).**  Combine the server
    /// ciphertexts into the round cleartext and have every server sign the
    /// certification digest.
    pub fn certify_phase<S: RngSource>(
        &self,
        state: &mut RoundState,
        rngs: &mut S,
    ) -> Vec<Certify> {
        assert_eq!(
            state.phase,
            RoundPhase::Certification,
            "certify before reveals"
        );
        let phase_start = Instant::now();
        let round = state.layout.round;
        state.cleartext = combine(state.layout.total_len, &state.server_cts);
        let digest = certification_digest(round, &state.composite, &state.cleartext);
        state.cert_digest = Some(digest);
        let group = &self.config.group;
        let certs = self
            .servers
            .iter()
            .map(|srv| Certify {
                round,
                server: srv.index as ServerId,
                signature: srv.signing.sign(group, rngs.server_rng(srv.index), &digest),
            })
            .collect();
        self.metrics
            .phase_certify
            .observe_duration(phase_start.elapsed());
        certs
    }

    /// Verify the certification signatures against the group's server
    /// signing keys; the round is certified iff every commitment bound and
    /// every *distinct* roster server contributed a valid signature.
    /// Duplicate `Certify` messages from one server cannot stand in for a
    /// missing server's, and injected invalid signatures are dropped rather
    /// than vetoing a round whose roster signatures are all present.
    pub fn deliver_certificates(
        &self,
        state: &mut RoundState,
        msgs: Vec<Certify>,
        origin: MessageOrigin,
    ) {
        assert_eq!(
            state.phase,
            RoundPhase::Certification,
            "certificates delivered out of phase"
        );
        let round = state.layout.round;
        let digest = state
            .cert_digest
            .unwrap_or_else(|| certification_digest(round, &state.composite, &state.cleartext));
        let group = &self.config.group;
        let mut signed = std::collections::BTreeSet::new();
        for msg in &msgs {
            if !origin.allows_server(msg.server) || msg.round != round {
                continue;
            }
            if let Some(pk) = self.config.server_sign_keys.get(msg.server as usize) {
                if schnorr::verify(group, pk, &digest, &msg.signature) {
                    signed.insert(msg.server);
                }
            }
        }
        state.certified = state.commits_ok && signed.len() == self.servers.len();
    }

    /// Queue filed accusations for blame resolution.  The pseudonym
    /// signatures are verified (batched) when the accusations are resolved
    /// at the end of the round, so this ingest only enqueues.
    ///
    /// Unlike the other ingests this one takes no origin: accusations are
    /// deliberately *anonymous* — authenticated by the unlinkable pseudonym
    /// signature inside the message, never by the connection that carried
    /// it (binding them to a roster connection would deanonymize the
    /// victim).
    pub fn deliver_accusations(&mut self, msgs: Vec<AccusationFiled>) {
        self.metrics.accusations_filed.add(msgs.len() as u64);
        for msg in msgs {
            self.pending_accusations
                .push((msg.accusation, msg.signature));
        }
    }

    /// **Finalize.**  Record the round for the blame horizon, apply the
    /// output to the shared slot schedule, let victims search for witness
    /// bits and file accusations, and resolve blame.
    pub fn finalize_round<S: RngSource>(
        &mut self,
        mut state: RoundState,
        rngs: &mut S,
    ) -> RoundResult {
        let phase_start = Instant::now();
        let round = state.layout.round;
        let group = self.config.group.clone();

        // Keep the round record for potential blame: the stored maps share
        // the submission `Arc`s, so no ciphertext is copied.
        let mut all_client_cts: BTreeMap<ClientId, Arc<[u8]>> = BTreeMap::new();
        for subs in state.per_server.values() {
            for (c, ct) in subs {
                all_client_cts.insert(*c, ct.clone());
            }
        }
        self.round_records.insert(
            round,
            RoundRecord {
                layout: state.layout.clone(),
                composite: state.composite.clone(),
                assignment: std::mem::take(&mut state.assignment),
                client_ciphertexts: all_client_cts,
                server_ciphertexts: state.server_cts.clone(),
            },
        );
        // Bounded blame horizon: evict records older than the window so the
        // evidence store cannot grow without bound; accusations naming an
        // evicted round no longer resolve.
        let horizon = self.config.blame_horizon.max(1);
        let keep_from = (round + 1).saturating_sub(horizon);
        self.round_records = self.round_records.split_off(&keep_from);

        // Output phase: every node digests the cleartext.
        let output = self
            .schedule
            .apply_round_output(&state.layout, &state.cleartext);
        self.participation = state.composite.len();
        let required = participation_threshold(self.config.alpha, self.participation);

        // Disruption detection: victims look for witness bits and file
        // signed accusations — as `AccusationFiled` messages, the same
        // structure a real transport would route through the accusation
        // shuffle.
        let mut filed = Vec::new();
        for (i, record) in &state.records {
            if record.round != round {
                continue;
            }
            let observed =
                &state.cleartext[record.slot_offset..record.slot_offset + record.slot_wire.len()];
            if let Some(acc) = accusation::find_witness(
                round,
                self.clients[*i].dcnet.slot(),
                record.slot_offset,
                &record.slot_wire,
                observed,
            ) {
                let signature =
                    self.clients[*i]
                        .pseudonym
                        .sign(&group, rngs.client_rng(*i), &acc.to_bytes());
                filed.push(AccusationFiled {
                    accusation: acc,
                    signature,
                });
            }
        }
        self.deliver_accusations(filed);

        let expelled_now = self.resolve_accusations(&group);
        state.phase = RoundPhase::Complete;

        if state.certified {
            self.metrics.rounds_certified.inc();
        } else {
            self.metrics.rounds_uncertified.inc();
        }
        let messages = output.messages();
        self.metrics.messages_revealed.add(messages.len() as u64);
        self.metrics.expulsions.add(expelled_now.len() as u64);
        self.metrics
            .phase_finalize
            .observe_duration(phase_start.elapsed());

        RoundResult {
            round,
            messages,
            participation: self.participation,
            required_participation: required,
            corrupted_slots: output.corrupted(),
            expelled: expelled_now,
            certified: state.certified,
            cleartext: state.cleartext,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(clients: usize, servers: usize) -> (Session, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xFA2E);
        let group = GroupBuilder::new(clients, servers)
            .with_shuffle_soundness(4)
            .build();
        let session = Session::new(&group, &mut rng).unwrap();
        (session, rng)
    }

    /// Drive one round's phases, letting `tamper` rewrite each message batch
    /// before delivery; returns the finalized result.
    fn run_tampered(
        session: &mut Session,
        rng: &mut StdRng,
        tamper_submits: impl FnOnce(&mut Vec<ClientSubmit>),
        tamper_commits: impl FnOnce(&mut Vec<ServerCommit>),
        tamper_reveals: impl FnOnce(&mut Vec<ServerReveal>),
        tamper_certs: impl FnOnce(&mut Vec<Certify>),
    ) -> RoundResult {
        let actions = vec![crate::session::ClientAction::Idle; session.config().num_clients()];
        run_tampered_with(
            session,
            rng,
            &actions,
            tamper_submits,
            tamper_commits,
            tamper_reveals,
            tamper_certs,
        )
    }

    /// `run_tampered` with caller-chosen client actions.
    #[allow(clippy::too_many_arguments)]
    fn run_tampered_with(
        session: &mut Session,
        rng: &mut StdRng,
        actions: &[crate::session::ClientAction],
        tamper_submits: impl FnOnce(&mut Vec<ClientSubmit>),
        tamper_commits: impl FnOnce(&mut Vec<ServerCommit>),
        tamper_reveals: impl FnOnce(&mut Vec<ServerReveal>),
        tamper_certs: impl FnOnce(&mut Vec<Certify>),
    ) -> RoundResult {
        let mut rngs = crate::round::SharedRng(rng);
        let mut state = session.begin_round();
        let mut submits = session.client_phase(&mut state, actions, &mut rngs);
        tamper_submits(&mut submits);
        session.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let mut commits = session.server_commit_phase(&mut state);
        tamper_commits(&mut commits);
        session.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let mut reveals = Session::server_reveal_phase(&mut state);
        tamper_reveals(&mut reveals);
        session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        let mut certs = session.certify_phase(&mut state, &mut rngs);
        tamper_certs(&mut certs);
        session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        session.finalize_round(state, &mut rngs)
    }

    #[test]
    fn untampered_phases_certify() {
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(&mut session, &mut rng, |_| {}, |_| {}, |_| {}, |_| {});
        assert!(r.certified);
        assert_eq!(r.participation, 4);
    }

    #[test]
    fn spoofed_upstream_submission_is_rejected() {
        // A submission addressed to a phantom (or merely wrong) server must
        // be dropped: otherwise its client enters the composite list while
        // its ciphertext never combines, poisoning the whole round.
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |submits| {
                submits[0].upstream = 999;
                submits[1].upstream = (submits[1].client as usize % 2) as u32 ^ 1;
            },
            |_| {},
            |_| {},
            |_| {},
        );
        // The two malformed submissions are excluded; the round stays
        // internally consistent and certifies with the remaining clients.
        assert!(r.certified);
        assert_eq!(r.participation, 2);
    }

    #[test]
    fn wrong_length_submission_is_rejected() {
        let (mut session, mut rng) = session(3, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |submits| {
                let mut short = submits[0].ciphertext.to_vec();
                short.pop();
                submits[0].ciphertext = short.into();
            },
            |_| {},
            |_| {},
            |_| {},
        );
        assert!(r.certified);
        assert_eq!(r.participation, 2);
    }

    #[test]
    fn missing_reveal_cannot_certify() {
        // A dropped ServerReveal leaves that server's pads uncancelled; the
        // combined output is keystream garbage and must not certify.
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |_| {},
            |_| {},
            |reveals| {
                reveals.pop();
            },
            |_| {},
        );
        assert!(!r.certified);
    }

    #[test]
    fn tampered_reveal_cannot_certify() {
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |_| {},
            |_| {},
            |reveals| {
                let mut ct = reveals[0].ciphertext.to_vec();
                ct[0] ^= 1;
                reveals[0].ciphertext = ct.into();
            },
            |_| {},
        );
        assert!(!r.certified);
    }

    #[test]
    fn duplicate_certify_cannot_replace_a_missing_server() {
        // Two valid signatures from server 0 must not count as "every server
        // signed": the anytrust guarantee needs each server's own signature.
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |_| {},
            |_| {},
            |_| {},
            |certs| {
                let dup = certs[0].clone();
                certs[1] = dup;
            },
        );
        assert!(!r.certified);
    }

    #[test]
    fn phantom_server_cannot_replace_missing_reveal() {
        // A phantom (non-roster) commit+reveal pair, injected alongside a
        // dropped roster reveal, must not let the round certify: commits_ok
        // requires a binding reveal from every *roster* server by id, and
        // phantom ids are rejected at both ingests.
        let (mut session, mut rng) = session(4, 2);
        let actions = vec![crate::session::ClientAction::Idle; 4];
        let mut rngs = SharedRng(&mut rng);
        let mut state = session.begin_round();
        let submits = session.client_phase(&mut state, &actions, &mut rngs);
        session.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let mut commits = session.server_commit_phase(&mut state);
        let round = state.round();
        let phantom: ServerId = 999;
        let garbage: Arc<[u8]> = vec![0xA5u8; state.layout.total_len].into();
        commits.push(ServerCommit {
            round,
            server: phantom,
            commitment: server::commitment(round, phantom, &garbage),
        });
        session.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let mut reveals = Session::server_reveal_phase(&mut state);
        reveals.pop(); // drop one roster server's reveal...
        reveals.push(ServerReveal {
            round,
            server: phantom,
            ciphertext: garbage, // ...and offer the phantom's in its place
        });
        session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        let certs = session.certify_phase(&mut state, &mut rngs);
        session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        let r = session.finalize_round(state, &mut rngs);
        assert!(!r.certified);
    }

    #[test]
    fn conflicting_duplicate_commit_cannot_veto() {
        // The first commitment per server is binding: a conflicting
        // duplicate injected after the genuine broadcast must not overwrite
        // it (which would make the genuine reveal fail the binding check and
        // veto an otherwise-complete round).
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |_| {},
            |commits| {
                let mut forged = commits[0].clone();
                forged.commitment = [0xEE; 32];
                commits.push(forged);
            },
            |_| {},
            |_| {},
        );
        assert!(r.certified);
        assert_eq!(r.participation, 4);
    }

    #[test]
    fn injected_duplicate_submission_cannot_replace_honest() {
        // Submissions are unauthenticated until the transport lands;
        // first-write-wins means an injected duplicate for a roster client
        // cannot displace the honest ciphertext that arrived first, so the
        // round output is byte-identical to the untampered run.
        let (mut session_a, mut rng_a) = session(4, 2);
        let baseline = run_tampered(&mut session_a, &mut rng_a, |_| {}, |_| {}, |_| {}, |_| {});
        let (mut session_b, mut rng_b) = session(4, 2);
        let r = run_tampered(
            &mut session_b,
            &mut rng_b,
            |submits| {
                let mut forged = submits[0].clone();
                let mut ct = forged.ciphertext.to_vec();
                for b in &mut ct {
                    *b ^= 0xFF;
                }
                forged.ciphertext = ct.into();
                submits.push(forged);
            },
            |_| {},
            |_| {},
            |_| {},
        );
        assert!(r.certified);
        assert_eq!(r.participation, 4);
        assert_eq!(r.cleartext, baseline.cleartext);
    }

    #[test]
    fn spoofed_submission_from_wrong_origin_is_rejected_even_when_first() {
        // The PR 5 hole, now closed at the right layer: first-write-wins
        // alone cannot reject a spoofed ClientSubmit that *beats* the honest
        // one to the ingest.  With authenticated origins it does not matter
        // who wins the race — a connection authenticated as client 1 cannot
        // deliver a submission claiming client 0, so the forgery is dropped
        // and the honest ciphertext (arriving second!) is accepted.
        let (mut session_a, mut rng_a) = session(4, 2);
        let baseline = run_tampered(&mut session_a, &mut rng_a, |_| {}, |_| {}, |_| {}, |_| {});

        let (mut session_b, mut rng_b) = session(4, 2);
        let actions = vec![crate::session::ClientAction::Idle; 4];
        let mut rngs = SharedRng(&mut rng_b);
        let mut state = session_b.begin_round();
        let submits = session_b.client_phase(&mut state, &actions, &mut rngs);
        // Client 1's connection forges client 0's submission and delivers
        // it FIRST.
        let mut forged = submits[0].clone();
        let mut ct = forged.ciphertext.to_vec();
        for b in &mut ct {
            *b ^= 0xFF;
        }
        forged.ciphertext = ct.into();
        session_b.deliver_submissions(&mut state, vec![forged], MessageOrigin::Client(1));
        // The honest clients deliver afterwards, each over its own
        // authenticated connection.
        for submit in submits {
            let origin = MessageOrigin::Client(submit.client);
            session_b.deliver_submissions(&mut state, vec![submit], origin);
        }
        let commits = session_b.server_commit_phase(&mut state);
        session_b.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let reveals = Session::server_reveal_phase(&mut state);
        session_b.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        let certs = session_b.certify_phase(&mut state, &mut rngs);
        session_b.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        let r = session_b.finalize_round(state, &mut rngs);
        assert!(r.certified);
        assert_eq!(r.participation, 4);
        assert_eq!(
            r.cleartext, baseline.cleartext,
            "forged first-arriving submission must not displace the honest one"
        );
    }

    #[test]
    fn client_origin_cannot_speak_for_servers() {
        // A connection authenticated as a client delivers a batch containing
        // server 0's (otherwise valid!) commit: the origin check drops it,
        // so server 0's genuine reveal later finds no commitment and the
        // round cannot certify — the forgery is inert rather than binding.
        let (mut session, mut rng) = session(4, 2);
        let actions = vec![crate::session::ClientAction::Idle; 4];
        let mut rngs = SharedRng(&mut rng);
        let mut state = session.begin_round();
        let submits = session.client_phase(&mut state, &actions, &mut rngs);
        session.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let commits = session.server_commit_phase(&mut state);
        // The whole (valid!) commit batch arrives via a connection
        // authenticated as client 2: every commit is dropped, so no reveal
        // can later bind.
        session.deliver_commits(&mut state, commits, MessageOrigin::Client(2));
        assert!(
            state.commitments.is_empty(),
            "client-origin commits must not bind"
        );
        let reveals = Session::server_reveal_phase(&mut state);
        session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        let certs = session.certify_phase(&mut state, &mut rngs);
        session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        let r = session.finalize_round(state, &mut rngs);
        assert!(!r.certified);
    }

    #[test]
    fn wrong_server_origin_cannot_plant_a_reveal() {
        // Server 1's connection replays server 0's genuine reveal under its
        // own authenticated origin: dropped, so the round is missing server
        // 0's ciphertext and cannot certify.
        let (mut session, mut rng) = session(4, 2);
        let actions = vec![crate::session::ClientAction::Idle; 4];
        let mut rngs = SharedRng(&mut rng);
        let mut state = session.begin_round();
        let submits = session.client_phase(&mut state, &actions, &mut rngs);
        session.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let commits = session.server_commit_phase(&mut state);
        session.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let reveals = Session::server_reveal_phase(&mut state);
        // Every reveal — including server 0's genuine one — is delivered
        // over server 1's authenticated connection: only server 1's own
        // passes the origin check, so server 0's ciphertext stays missing.
        session.deliver_reveals(&mut state, reveals, MessageOrigin::Server(1));
        assert!(state.server_cts.contains_key(&1));
        assert!(!state.server_cts.contains_key(&0));
        let certs = session.certify_phase(&mut state, &mut rngs);
        session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        let r = session.finalize_round(state, &mut rngs);
        assert!(!r.certified);
    }

    #[test]
    #[should_panic(expected = "commitments delivered out of phase")]
    fn deliver_commits_out_of_phase_panics() {
        // Delivering commitments before the commit exchange ran would skip
        // the commit phase silently; the engine panics instead, like every
        // other phase function.
        let (session, _rng) = session(3, 2);
        let mut state = session.begin_round();
        session.deliver_commits(&mut state, Vec::new(), MessageOrigin::Local);
    }

    #[test]
    fn forged_certify_signature_cannot_certify() {
        let (mut session, mut rng) = session(4, 2);
        let r = run_tampered(
            &mut session,
            &mut rng,
            |_| {},
            |_| {},
            |_| {},
            |certs| {
                certs[1].server = 0; // server 1's signature under server 0's key
            },
        );
        assert!(!r.certified);
    }
}
