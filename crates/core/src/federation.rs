//! The federation coordinator: many per-group round engines behind one
//! Maglev-hashed client placement, rebalanced only at pipeline boundaries.
//!
//! One DC-net group is one anonymity set *and* one serialized server
//! pipeline; to scale past a few thousand clients the federation shards the
//! population across G independent groups.  Placement is the
//! [`MaglevTable`] from `dissent-net`: a client id hashes to a slot, the
//! slot names a group, and group removal remaps only the removed group's
//! clients.
//!
//! Membership changes — client joins/leaves and group add/remove — are
//! *queued* and applied only between batches, reusing the PR 5 pipeline
//! boundary semantics: a batch's slot layout is frozen when it opens, so an
//! in-flight window is never mutated.  When a group's roster changes, that
//! group's engine is rebuilt deterministically from
//! `(federation seed, label, epoch, roster)` — see [`build_group_engine`] —
//! while untouched groups keep their live sessions.  The rebuild derivation
//! is public precisely so tests can prove the federated output stream is
//! byte-identical to running each group standalone with the post-rebalance
//! roster.
//!
//! Certified per-round outputs from all groups are folded into one
//! federated stream of [`FederatedRecord`]s carrying per-group provenance
//! (label, group index, epoch, batch).

use crate::config::GroupBuilder;
use crate::round::PerEntityRng;
use crate::session::{ClientAction, RoundResult, Session, SessionError};
use crate::PipelinedSession;
use dissent_crypto::sha256::sha256_tagged;
use dissent_net::federation::MaglevTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Tunables shared by every group of a federation.
#[derive(Clone, Debug)]
pub struct FederationParams {
    /// Federation base seed; every group derivation domain-separates it.
    pub seed: u64,
    /// Servers provisioned per group.
    pub servers_per_group: usize,
    /// Pipeline window W each group runs with.
    pub window: usize,
    /// Soundness parameter for the per-group key shuffles.
    pub shuffle_soundness: usize,
    /// Blame horizon (must be ≥ `window`).
    pub blame_horizon: u64,
    /// Maglev table size (prime); small primes keep tests fast.
    pub maglev_slots: usize,
}

impl Default for FederationParams {
    fn default() -> Self {
        FederationParams {
            seed: 0xFED,
            servers_per_group: 2,
            window: 2,
            shuffle_soundness: 8,
            blame_horizon: 8,
            maglev_slots: dissent_net::federation::MAGLEV_SLOTS,
        }
    }
}

/// One certified round output with its federation provenance.
#[derive(Clone, Debug)]
pub struct FederatedRecord {
    /// Label of the group that produced the round.
    pub group: String,
    /// The group's index in the placement table at emission time.
    pub group_index: usize,
    /// The group's rebuild epoch (bumped on every roster change).
    pub epoch: u64,
    /// Which federation batch this round belonged to.
    pub batch: u64,
    /// The group-local round result (cleartext, certification, expulsions).
    pub result: RoundResult,
}

/// A queued membership change, applied at the next pipeline boundary.
#[derive(Clone, Debug)]
enum RosterChange {
    Join(u64),
    Leave(u64),
    AddGroup(String),
    RemoveGroup(String),
}

/// The per-group engine plus the bookkeeping needed to rebuild it.
struct GroupRuntime {
    label: String,
    epoch: u64,
    roster: Vec<u64>,
    /// `None` while the roster is empty — an idle shard.
    engine: Option<GroupEngine>,
    /// Batches run since the last rebuild (standalone-replay tests resume
    /// from the rebuild point).
    batches_run: u64,
}

/// A live engine: the pipelined session and its entity RNG streams.
pub struct GroupEngine {
    /// The group's batch-pipelined round engine.
    pub pipe: PipelinedSession,
    /// Deterministic per-entity randomness, advanced batch by batch.
    pub rngs: PerEntityRng,
}

/// A read-only snapshot of one group's rebuild state, for standalone
/// replay: build the engine with [`build_group_engine`] from this and rerun
/// the last `batches_run` batches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupStatus {
    /// Group label.
    pub label: String,
    /// Rebuild epoch.
    pub epoch: u64,
    /// Global client ids in the group, in roster (slot-assignment) order.
    pub roster: Vec<u64>,
    /// Batches run since the engine was (re)built.
    pub batches_run: u64,
}

/// Domain-separated sub-seed for one group derivation.
fn derive_seed(tag: &[u8], params_seed: u64, label: &str, epoch: u64, roster: &[u64]) -> u64 {
    let mut roster_bytes = Vec::with_capacity(roster.len() * 8);
    for id in roster {
        roster_bytes.extend_from_slice(&id.to_be_bytes());
    }
    let digest = sha256_tagged(&[
        b"dissent-federation-engine",
        tag,
        &params_seed.to_be_bytes(),
        label.as_bytes(),
        &epoch.to_be_bytes(),
        &roster_bytes,
    ]);
    u64::from_be_bytes(digest[..8].try_into().expect("sha256 yields 32 bytes"))
}

/// Deterministically build one group's engine from its rebuild coordinates.
///
/// This is the *entire* state a rebuilt group starts from: the generated
/// group (keys, slot config) and the key shuffle both run from seeds
/// domain-separated over `(federation seed, label, epoch, roster)`, so the
/// federation's rebuild and a standalone reconstruction from the same
/// coordinates are byte-identical engines.
pub fn build_group_engine(
    params: &FederationParams,
    label: &str,
    epoch: u64,
    roster: &[u64],
) -> Result<GroupEngine, SessionError> {
    let group_seed = derive_seed(b"group", params.seed, label, epoch, roster);
    let shuffle_seed = derive_seed(b"shuffle", params.seed, label, epoch, roster);
    let entity_seed = derive_seed(b"entity", params.seed, label, epoch, roster);
    let generated = GroupBuilder::new(roster.len(), params.servers_per_group)
        .with_shuffle_soundness(params.shuffle_soundness)
        .with_blame_horizon(params.blame_horizon)
        .with_seed(group_seed)
        .build();
    let mut shuffle_rng = StdRng::seed_from_u64(shuffle_seed);
    let session = Session::new(&generated, &mut shuffle_rng)?;
    let pipe = PipelinedSession::new(session, params.window)?;
    let rngs = PerEntityRng::new(entity_seed, roster.len(), params.servers_per_group);
    Ok(GroupEngine { pipe, rngs })
}

/// The federation coordinator: owns the placement table and every group
/// engine, applies roster churn at pipeline boundaries, and merges the
/// groups' certified outputs into one provenance-tagged stream.
pub struct Federation {
    params: FederationParams,
    table: MaglevTable,
    members: BTreeSet<u64>,
    groups: Vec<GroupRuntime>,
    pending: Vec<RosterChange>,
    batches: u64,
}

impl Federation {
    /// Build a federation of `group_labels` with `initial_members` placed
    /// by the Maglev table and every non-empty group's engine constructed
    /// at epoch 0.
    pub fn new(
        params: FederationParams,
        group_labels: &[String],
        initial_members: &[u64],
    ) -> Result<Federation, SessionError> {
        let table = MaglevTable::new(group_labels, params.maglev_slots);
        let members: BTreeSet<u64> = initial_members.iter().copied().collect();
        let mut fed = Federation {
            params,
            table,
            members,
            groups: Vec::new(),
            pending: Vec::new(),
            batches: 0,
        };
        for g in 0..fed.table.num_groups() {
            let label = fed.table.label(g).to_string();
            let roster = fed.roster_of(g);
            let engine = if roster.is_empty() {
                None
            } else {
                Some(build_group_engine(&fed.params, &label, 0, &roster)?)
            };
            fed.groups.push(GroupRuntime {
                label,
                epoch: 0,
                roster,
                engine,
                batches_run: 0,
            });
        }
        Ok(fed)
    }

    /// Global client ids currently placed in group `g`, roster-ordered.
    fn roster_of(&self, g: usize) -> Vec<u64> {
        self.members
            .iter()
            .copied()
            .filter(|&c| self.table.lookup(c) == g)
            .collect()
    }

    /// Queue a client join; placed at the next pipeline boundary.
    pub fn queue_join(&mut self, client: u64) {
        self.pending.push(RosterChange::Join(client));
    }

    /// Queue a client departure; removed at the next pipeline boundary.
    pub fn queue_leave(&mut self, client: u64) {
        self.pending.push(RosterChange::Leave(client));
    }

    /// Queue a new group; the table rebuild happens at the next boundary.
    pub fn queue_add_group(&mut self, label: &str) {
        self.pending.push(RosterChange::AddGroup(label.to_string()));
    }

    /// Queue a group removal; only that group's clients remap, at the next
    /// boundary.
    pub fn queue_remove_group(&mut self, label: &str) {
        self.pending
            .push(RosterChange::RemoveGroup(label.to_string()));
    }

    /// Whether membership changes are waiting for the next boundary.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Current member set.
    pub fn members(&self) -> &BTreeSet<u64> {
        &self.members
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.table.num_groups()
    }

    /// Which group (by label) a client id is currently placed in.
    pub fn placement(&self, client: u64) -> &str {
        self.table.label(self.table.lookup(client))
    }

    /// Snapshot of one group's rebuild coordinates, by label.
    pub fn group_status(&self, label: &str) -> Option<GroupStatus> {
        self.groups
            .iter()
            .find(|g| g.label == label)
            .map(|g| GroupStatus {
                label: g.label.clone(),
                epoch: g.epoch,
                roster: g.roster.clone(),
                batches_run: g.batches_run,
            })
    }

    /// Snapshots of every group, in table order.
    pub fn statuses(&self) -> Vec<GroupStatus> {
        self.groups
            .iter()
            .map(|g| GroupStatus {
                label: g.label.clone(),
                epoch: g.epoch,
                roster: g.roster.clone(),
                batches_run: g.batches_run,
            })
            .collect()
    }

    /// Apply every queued change at this pipeline boundary: update the
    /// table and member set, then rebuild exactly the groups whose rosters
    /// changed (epoch bump), leaving untouched groups' live engines alone.
    fn apply_pending(&mut self) -> Result<(), SessionError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        for change in std::mem::take(&mut self.pending) {
            match change {
                RosterChange::Join(c) => {
                    self.members.insert(c);
                }
                RosterChange::Leave(c) => {
                    self.members.remove(&c);
                }
                RosterChange::AddGroup(label) => self.table.add_group(&label),
                RosterChange::RemoveGroup(label) => self.table.remove_group(&label),
            }
        }
        // Re-key the runtime list to the table's (possibly changed) group
        // list, then rebuild every group whose roster differs from its
        // engine's.  Epochs survive group-index shifts because they are
        // keyed by label.
        let mut old: Vec<GroupRuntime> = std::mem::take(&mut self.groups);
        for g in 0..self.table.num_groups() {
            let label = self.table.label(g).to_string();
            let roster = self.roster_of(g);
            let prev = old
                .iter()
                .position(|r| r.label == label)
                .map(|i| old.swap_remove(i));
            let runtime = match prev {
                Some(prev) if prev.roster == roster => prev,
                Some(prev) => {
                    let epoch = prev.epoch + 1;
                    let engine = if roster.is_empty() {
                        None
                    } else {
                        Some(build_group_engine(&self.params, &label, epoch, &roster)?)
                    };
                    GroupRuntime {
                        label,
                        epoch,
                        roster,
                        engine,
                        batches_run: 0,
                    }
                }
                None => {
                    let engine = if roster.is_empty() {
                        None
                    } else {
                        Some(build_group_engine(&self.params, &label, 0, &roster)?)
                    };
                    GroupRuntime {
                        label,
                        epoch: 0,
                        roster,
                        engine,
                        batches_run: 0,
                    }
                }
            };
            self.groups.push(runtime);
        }
        Ok(())
    }

    /// The per-round client actions a roster runs for one batch: senders
    /// transmit in the batch's first round, everyone idles the rest of the
    /// window.  Public so standalone-replay tests drive the exact same
    /// actions through a reconstructed engine.
    pub fn actions_for(
        roster: &[u64],
        sends: &[(u64, Vec<u8>)],
        window: usize,
    ) -> Vec<Vec<ClientAction>> {
        let first: Vec<ClientAction> = roster
            .iter()
            .map(|id| {
                sends
                    .iter()
                    .find(|(s, _)| s == id)
                    .map(|(_, m)| ClientAction::Send(m.clone()))
                    .unwrap_or(ClientAction::Idle)
            })
            .collect();
        let mut rounds = vec![first];
        for _ in 1..window {
            rounds.push(vec![ClientAction::Idle; roster.len()]);
        }
        rounds
    }

    /// Run one federated batch: apply queued churn at the boundary, then
    /// drive every non-empty group through a window of rounds.  `sends`
    /// maps global client ids to the message they transmit in the batch's
    /// first round (ids not currently members are ignored).  Returns the
    /// merged output stream, ordered by (group index, round).
    pub fn run_batch(
        &mut self,
        sends: &[(u64, Vec<u8>)],
    ) -> Result<Vec<FederatedRecord>, SessionError> {
        self.apply_pending()?;
        let batch = self.batches;
        self.batches += 1;
        let window = self.params.window;
        let mut stream = Vec::new();
        for (g, runtime) in self.groups.iter_mut().enumerate() {
            let Some(engine) = runtime.engine.as_mut() else {
                continue;
            };
            let actions = Self::actions_for(&runtime.roster, sends, window);
            let results = engine.pipe.run_batch(&actions, &mut engine.rngs);
            runtime.batches_run += 1;
            for result in results {
                stream.push(FederatedRecord {
                    group: runtime.label.clone(),
                    group_index: g,
                    epoch: runtime.epoch,
                    batch,
                    result,
                });
            }
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FederationParams {
        FederationParams {
            seed: 0xFED10,
            servers_per_group: 2,
            window: 2,
            shuffle_soundness: 2,
            blame_horizon: 4,
            maglev_slots: 251,
        }
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|g| format!("shard-{g}")).collect()
    }

    #[test]
    fn federated_stream_equals_union_of_standalone_groups_under_churn() {
        // The acceptance property: run a federation through churn applied
        // at batch boundaries, then prove the federated output stream is
        // exactly the union of standalone per-group runs reconstructed
        // from each group's public rebuild coordinates.
        let members: Vec<u64> = (0..9).collect();
        let mut fed = Federation::new(params(), &labels(3), &members).unwrap();

        let sends0: Vec<(u64, Vec<u8>)> =
            members.iter().map(|&c| (c, vec![0xA0 + c as u8])).collect();
        let out0 = fed.run_batch(&sends0).unwrap();
        assert!(!out0.is_empty());
        assert!(out0.iter().all(|r| r.result.certified));

        // Churn between batches: one leave, two joins.
        fed.queue_leave(4);
        fed.queue_join(20);
        fed.queue_join(21);
        let sends1: Vec<(u64, Vec<u8>)> = fed
            .members()
            .iter()
            .map(|&c| (c, vec![0xB0 ^ c as u8]))
            .collect();
        // Note: members() still reflects the pre-boundary set; churn lands
        // inside run_batch.  Send for the post-churn set instead.
        let mut sends1 = sends1;
        sends1.retain(|(c, _)| *c != 4);
        sends1.push((20, vec![0x20]));
        sends1.push((21, vec![0x21]));
        let out1 = fed.run_batch(&sends1).unwrap();
        assert!(out1.iter().all(|r| r.result.certified));
        assert!(!fed.members().contains(&4));
        assert!(fed.members().contains(&20));

        let out2 = fed.run_batch(&[]).unwrap();

        // Standalone reconstruction per group: rebuild from the rebuild
        // coordinates and replay the batches run since.
        let p = params();
        for status in fed.statuses() {
            if status.roster.is_empty() {
                continue;
            }
            let mut engine =
                build_group_engine(&p, &status.label, status.epoch, &status.roster).unwrap();
            // Which federation batches ran since this group's rebuild?
            // Batches are numbered 0, 1, 2; the group ran the last
            // `batches_run` of them.
            let all_sends = [&sends0[..], &sends1[..], &[][..]];
            let start = all_sends.len() - status.batches_run as usize;
            let mut standalone: Vec<RoundResult> = Vec::new();
            for sends in &all_sends[start..] {
                let actions = Federation::actions_for(&status.roster, sends, p.window);
                standalone.extend(engine.pipe.run_batch(&actions, &mut engine.rngs));
            }
            let federated: Vec<&RoundResult> = out0
                .iter()
                .chain(out1.iter())
                .chain(out2.iter())
                .filter(|r| r.group == status.label && r.epoch == status.epoch)
                .map(|r| &r.result)
                .collect();
            assert_eq!(standalone.len(), federated.len(), "{}", status.label);
            for (s, f) in standalone.iter().zip(federated) {
                assert_eq!(s.cleartext, f.cleartext, "group {}", status.label);
                assert_eq!(s.certified, f.certified);
                assert_eq!(s.round, f.round);
            }
        }
    }

    #[test]
    fn rebalance_waits_for_the_pipeline_boundary() {
        let members: Vec<u64> = (0..6).collect();
        let mut fed = Federation::new(params(), &labels(2), &members).unwrap();
        fed.queue_join(40);
        assert!(fed.has_pending());
        // Nothing changed yet: the join is queued, not applied.
        assert_eq!(fed.members().len(), 6);
        fed.run_batch(&[]).unwrap();
        assert!(!fed.has_pending());
        assert_eq!(fed.members().len(), 7);
    }

    #[test]
    fn untouched_groups_keep_their_engines_across_churn() {
        let members: Vec<u64> = (0..8).collect();
        let mut fed = Federation::new(params(), &labels(2), &members).unwrap();
        // Find a member and churn it; the *other* group must keep epoch 0
        // and its batches_run counter (the engine was not rebuilt).
        fed.run_batch(&[]).unwrap();
        let victim = *fed.members().iter().next().unwrap();
        let victim_group = fed.placement(victim).to_string();
        let other = fed
            .statuses()
            .into_iter()
            .find(|s| s.label != victim_group)
            .unwrap();
        assert!(!other.roster.is_empty(), "need both groups populated");
        fed.queue_leave(victim);
        fed.run_batch(&[]).unwrap();
        let churned = fed.group_status(&victim_group).unwrap();
        let untouched = fed.group_status(&other.label).unwrap();
        assert_eq!(churned.epoch, 1, "churned group rebuilds");
        assert_eq!(churned.batches_run, 1);
        assert_eq!(untouched.epoch, 0, "untouched group keeps its engine");
        assert_eq!(untouched.batches_run, 2);
    }

    #[test]
    fn group_removal_remaps_only_that_groups_clients() {
        let members: Vec<u64> = (0..12).collect();
        let mut fed = Federation::new(params(), &labels(3), &members).unwrap();
        let placements: Vec<(u64, String)> = members
            .iter()
            .map(|&c| (c, fed.placement(c).to_string()))
            .collect();
        let removed = fed.statuses()[1].label.clone();
        fed.queue_remove_group(&removed);
        fed.run_batch(&[]).unwrap();
        assert_eq!(fed.num_groups(), 2);
        for (c, old) in placements {
            if old == removed {
                assert_ne!(fed.placement(c), removed);
            } else {
                assert_eq!(fed.placement(c), old, "client {c} must not move");
            }
        }
    }

    #[test]
    fn engine_rebuild_is_deterministic() {
        let p = params();
        let roster: Vec<u64> = vec![3, 7, 11, 40];
        let mut a = build_group_engine(&p, "shard-x", 5, &roster).unwrap();
        let mut b = build_group_engine(&p, "shard-x", 5, &roster).unwrap();
        let sends = vec![(7u64, vec![1, 2, 3])];
        let actions = Federation::actions_for(&roster, &sends, p.window);
        let ra = a.pipe.run_batch(&actions, &mut a.rngs);
        let rb = b.pipe.run_batch(&actions, &mut b.rngs);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.cleartext, y.cleartext);
        }
        // A different epoch derives a different engine (fresh keys).
        let c = build_group_engine(&p, "shard-x", 6, &roster).unwrap();
        assert_ne!(
            c.pipe.session().config().group_id(),
            a.pipe.session().config().group_id(),
            "epoch must domain-separate the group keys"
        );
    }
}
