//! # dissent-core
//!
//! The Dissent protocol (OSDI 2012) assembled from its substrates:
//!
//! * [`config`] — group definitions (static key lists, α, policies) with a
//!   self-certifying identifier, plus deterministic group generation for
//!   simulations.
//! * [`policy`] — submission-window closure policies and the participation
//!   threshold α (§3.7, §5.1).
//! * [`session`] — an in-memory session running the real cryptography: key
//!   shuffle scheduling, DC-net rounds (Algorithms 1 & 2), churn handling,
//!   accusations and disruptor expulsion.
//! * [`messages`] — the typed protocol messages (`ClientSubmit`,
//!   `ServerCommit`, `ServerReveal`, `Certify`, `AccusationFiled`) with
//!   canonical wire forms.
//! * [`round`] — the round state machine: each protocol phase as a separate
//!   function advancing per-round state, driven by the typed messages.
//! * [`pipeline`] — the pipelined driver keeping a window of W rounds in
//!   flight (§3.6), with layouts frozen per batch and expulsions applied at
//!   pipeline boundaries.
//! * [`node`] — the same engine behind real sockets: a server process
//!   authenticating client connections with the `dissent-net` handshake and
//!   a client loop submitting over the framed transport.
//! * [`timing`] — the round-timing simulator that reproduces the shapes of
//!   Figures 6–9 over the `dissent-net` testbed models.
//! * [`instrument`] — the engine's metric handles (per-phase latency
//!   histograms, outcome counters) shared by all three drivers and exposed
//!   through `dissent-metrics` registries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod federation;
pub mod instrument;
pub mod messages;
pub mod node;
pub mod pipeline;
pub mod policy;
pub mod round;
pub mod session;
pub mod timing;

pub use config::{GeneratedGroup, GroupBuilder, GroupConfig};
pub use federation::{
    build_group_engine, FederatedRecord, Federation, FederationParams, GroupEngine, GroupStatus,
};
pub use instrument::SessionMetrics;
pub use messages::{
    AccusationFiled, Certify, ClientSubmit, MessageOrigin, ProtocolMessage, ServerCommit,
    ServerReveal,
};
pub use node::{run_client, ClientOutcome, NodeError, RosterSpec, ServerNode, ServerSummary};
pub use pipeline::PipelinedSession;
pub use policy::{participation_threshold, RoundCompletion, WindowOutcome, WindowPolicy};
pub use round::{PerEntityRng, RngSource, RoundPhase, RoundState, SharedRng};
pub use session::{ClientAction, RoundResult, Session, SessionError};
pub use timing::{
    simulate_full_protocol, simulate_round, simulate_rounds, FullProtocolTiming, RoundTiming,
    Scenario, Workload,
};
