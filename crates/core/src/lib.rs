//! # dissent-core
//!
//! The Dissent protocol (OSDI 2012) assembled from its substrates:
//!
//! * [`config`] — group definitions (static key lists, α, policies) with a
//!   self-certifying identifier, plus deterministic group generation for
//!   simulations.
//! * [`policy`] — submission-window closure policies and the participation
//!   threshold α (§3.7, §5.1).
//! * [`session`] — an in-memory session running the real cryptography: key
//!   shuffle scheduling, DC-net rounds (Algorithms 1 & 2), churn handling,
//!   accusations and disruptor expulsion.
//! * [`timing`] — the round-timing simulator that reproduces the shapes of
//!   Figures 6–9 over the `dissent-net` testbed models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod policy;
pub mod session;
pub mod timing;

pub use config::{GeneratedGroup, GroupBuilder, GroupConfig};
pub use policy::{participation_threshold, RoundCompletion, WindowOutcome, WindowPolicy};
pub use session::{ClientAction, RoundResult, Session, SessionError};
pub use timing::{
    simulate_full_protocol, simulate_round, simulate_rounds, FullProtocolTiming, RoundTiming,
    Scenario, Workload,
};
