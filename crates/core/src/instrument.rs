//! The round engine's instruments: one struct of pre-registered handles
//! shared by every driver (lock-step [`crate::session::Session::run_round`],
//! the pipelined driver in [`crate::pipeline`], and the socket nodes in
//! [`crate::node`]).
//!
//! Recording sites sit on the round hot path, so every handle is an atomic
//! cell from `dissent-metrics`: no locks, no allocation after registration
//! (enforced by the `lock-in-hot-path` dissent-lint rule over
//! `core/round.rs`, `core/pipeline.rs` and the `dcnet` crate).  A default
//! [`SessionMetrics`] is *detached* — it records but renders nowhere — so
//! the engine is instrumented unconditionally and only pays for exposition
//! when a caller binds a [`Registry`].

use dissent_metrics::{Counter, Gauge, Histogram, Registry};

/// Pre-registered handles for the round engine.  See
/// [`SessionMetrics::registered`] for the exposed names.
#[derive(Clone)]
pub struct SessionMetrics {
    /// Client submission-building time per round.
    pub phase_client: Histogram,
    /// Server inventory/pad-expansion/commit time per round.
    pub phase_commit: Histogram,
    /// Server reveal + commitment-check time per round.
    pub phase_reveal: Histogram,
    /// Cleartext combine + certification signing time per round.
    pub phase_certify: Histogram,
    /// Finalize time (blame bookkeeping, schedule advance) per round.
    pub phase_finalize: Histogram,
    /// Rounds finalized with every server signature verifying.
    pub rounds_certified: Counter,
    /// Rounds finalized without full certification.
    pub rounds_uncertified: Counter,
    /// Anonymous slot messages revealed by finalized rounds.
    pub messages_revealed: Counter,
    /// Accusations queued for blame resolution.
    pub accusations_filed: Counter,
    /// Clients expelled by resolved accusations.
    pub expulsions: Counter,
    /// Pipelined batches driven to completion.
    pub pipeline_batches: Counter,
    /// Rounds currently in flight (pipeline window; 1 in lock-step).
    pub rounds_in_flight: Gauge,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        SessionMetrics {
            phase_client: Histogram::detached_latency(),
            phase_commit: Histogram::detached_latency(),
            phase_reveal: Histogram::detached_latency(),
            phase_certify: Histogram::detached_latency(),
            phase_finalize: Histogram::detached_latency(),
            rounds_certified: Counter::detached(),
            rounds_uncertified: Counter::detached(),
            messages_revealed: Counter::detached(),
            accusations_filed: Counter::detached(),
            expulsions: Counter::detached(),
            pipeline_batches: Counter::detached(),
            rounds_in_flight: Gauge::detached(),
        }
    }
}

impl SessionMetrics {
    /// Handles registered on `registry` under the stable catalog:
    ///
    /// * `dissent_round_phase_seconds{phase="client"|"commit"|"reveal"|"certify"|"finalize"}`
    /// * `dissent_rounds_total{outcome="certified"|"uncertified"}`
    /// * `dissent_round_messages_total`
    /// * `dissent_accusations_total`, `dissent_expulsions_total`
    /// * `dissent_pipeline_batches_total`, `dissent_rounds_in_flight`
    pub fn registered(registry: &Registry) -> Self {
        let phase = "dissent_round_phase_seconds";
        let phase_help = "Wall-clock time spent in each round phase.";
        let rounds = "dissent_rounds_total";
        let rounds_help = "Rounds finalized by outcome.";
        SessionMetrics {
            phase_client: registry.latency_histogram_with(
                phase,
                phase_help,
                &[("phase", "client")],
            ),
            phase_commit: registry.latency_histogram_with(
                phase,
                phase_help,
                &[("phase", "commit")],
            ),
            phase_reveal: registry.latency_histogram_with(
                phase,
                phase_help,
                &[("phase", "reveal")],
            ),
            phase_certify: registry.latency_histogram_with(
                phase,
                phase_help,
                &[("phase", "certify")],
            ),
            phase_finalize: registry.latency_histogram_with(
                phase,
                phase_help,
                &[("phase", "finalize")],
            ),
            rounds_certified: registry.counter_with(
                rounds,
                rounds_help,
                &[("outcome", "certified")],
            ),
            rounds_uncertified: registry.counter_with(
                rounds,
                rounds_help,
                &[("outcome", "uncertified")],
            ),
            messages_revealed: registry.counter(
                "dissent_round_messages_total",
                "Anonymous slot messages revealed by finalized rounds.",
            ),
            accusations_filed: registry.counter(
                "dissent_accusations_total",
                "Accusations queued for blame resolution.",
            ),
            expulsions: registry.counter(
                "dissent_expulsions_total",
                "Clients expelled by resolved accusations.",
            ),
            pipeline_batches: registry.counter(
                "dissent_pipeline_batches_total",
                "Pipelined batches driven to completion.",
            ),
            rounds_in_flight: registry.gauge(
                "dissent_rounds_in_flight",
                "Rounds currently in flight (pipeline window).",
            ),
        }
    }
}
