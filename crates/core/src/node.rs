//! Real-socket nodes: the session engine behind an authenticated framed
//! TCP transport.
//!
//! Everything below `crate::session` is transport-agnostic — the simulators
//! drive the phase state machine in-process.  This module puts the same
//! engine behind real sockets:
//!
//! * [`RosterSpec`] — a tiny plain-text description (`key = value` lines)
//!   of a group every node derives *identically*: the
//!   [`GroupBuilder`](crate::config::GroupBuilder) seed fixes all long-term
//!   keys, and the session RNG is derived from the same seed, so separate
//!   OS processes running [`RosterSpec::session`] hold bit-identical
//!   shared-secret state.  Only simulations distribute private keys this
//!   way; a deployment would hand each node its own identity.
//! * [`ServerNode`] — one process hosting the anytrust server set.  Client
//!   connections are authenticated by the challenge–response handshake in
//!   `dissent_net::auth`; every inbound `ClientSubmit` is checked against
//!   the connection's authenticated identity *before* it reaches the round
//!   engine, and delivered with a per-connection
//!   [`MessageOrigin`](crate::messages::MessageOrigin) so the engine
//!   re-checks it.  This closes the spoofed-submission hole: first-write-wins
//!   ingestion alone cannot reject a forged submission that arrives first.
//! * [`run_client`] — a client process: connect, prove identity, then for
//!   each `RoundOpen` compute this client's own DC-net ciphertext (all other
//!   roster clients are `Offline` from this process's point of view) and
//!   submit it; `Cleartext` frames advance the local slot schedule in
//!   lock-step with the servers via
//!   [`Session::apply_certified_cleartext`].
//!
//! The handshake nonces and signature blinding draw from an RNG seeded by
//! wall-clock time and the process id — adequate for a research testbed,
//! *not* an OS entropy source; the vendored `rand` shim is deliberately
//! deterministic and offline.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use dissent_crypto::sha256::sha256_tagged;
use dissent_net::{AuthError, Frame, FramedConn, Peer, RosterKeys, TransportError};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{GeneratedGroup, GroupBuilder};
use crate::messages::{MessageOrigin, ProtocolMessage};
use crate::round::SharedRng;
use crate::session::{ClientAction, Session, SessionError};
use dissent_crypto::Group;

/// Errors from the node layer.
#[derive(Debug)]
pub enum NodeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The authentication handshake failed.
    Auth(AuthError),
    /// A frame could not be read or written.
    Transport(TransportError),
    /// The session engine rejected something.
    Session(SessionError),
    /// The roster file could not be parsed.
    Roster(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "io: {e}"),
            NodeError::Auth(e) => write!(f, "auth: {e}"),
            NodeError::Transport(e) => write!(f, "transport: {e}"),
            NodeError::Session(e) => write!(f, "session: {e}"),
            NodeError::Roster(m) => write!(f, "roster: {m}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<io::Error> for NodeError {
    fn from(e: io::Error) -> Self {
        NodeError::Io(e)
    }
}
impl From<AuthError> for NodeError {
    fn from(e: AuthError) -> Self {
        NodeError::Auth(e)
    }
}
impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}
impl From<SessionError> for NodeError {
    fn from(e: SessionError) -> Self {
        NodeError::Session(e)
    }
}

/// A plain-text group description every node derives identically.
///
/// Format: one `key = value` per line; `#` starts a comment.  Recognised
/// keys: `clients` and `servers` (required), `seed`, `group`
/// (`testing-256` or `rfc3526-2048`), `alpha`, `soundness`.
#[derive(Clone, Debug, PartialEq)]
pub struct RosterSpec {
    /// Number of roster clients.
    pub clients: usize,
    /// Number of anytrust servers.
    pub servers: usize,
    /// Seed all long-term keys and the session RNG derive from.
    pub seed: u64,
    /// Group name (`testing-256` or `rfc3526-2048`).
    pub group: String,
    /// Participation threshold α.
    pub alpha: f64,
    /// Shuffle soundness parameter.
    pub soundness: usize,
}

impl RosterSpec {
    /// A spec with testbed defaults for the given roster size.
    pub fn new(clients: usize, servers: usize) -> RosterSpec {
        RosterSpec {
            clients,
            servers,
            seed: 7,
            group: "testing-256".into(),
            alpha: 0.75,
            soundness: 4,
        }
    }

    /// Parse the plain-text roster format.
    pub fn parse(text: &str) -> Result<RosterSpec, NodeError> {
        let mut clients = None;
        let mut servers = None;
        let mut spec = RosterSpec::new(0, 0);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |what: &str| NodeError::Roster(format!("line {}: {what}: {raw:?}", lineno + 1));
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "clients" => {
                    clients = Some(value.parse().map_err(|_| bad("bad count"))?);
                }
                "servers" => {
                    servers = Some(value.parse().map_err(|_| bad("bad count"))?);
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("bad seed"))?,
                "alpha" => spec.alpha = value.parse().map_err(|_| bad("bad alpha"))?,
                "soundness" => {
                    spec.soundness = value.parse().map_err(|_| bad("bad soundness"))?;
                }
                "group" => match value {
                    "testing-256" | "rfc3526-2048" => spec.group = value.into(),
                    _ => return Err(bad("unknown group")),
                },
                _ => return Err(bad("unknown key")),
            }
        }
        spec.clients = clients.ok_or_else(|| NodeError::Roster("missing `clients`".into()))?;
        spec.servers = servers.ok_or_else(|| NodeError::Roster("missing `servers`".into()))?;
        if spec.clients == 0 || spec.servers == 0 {
            return Err(NodeError::Roster(
                "a roster needs at least one client and one server".into(),
            ));
        }
        Ok(spec)
    }

    /// Render back to the plain-text format [`RosterSpec::parse`] accepts.
    pub fn to_text(&self) -> String {
        format!(
            "clients = {}\nservers = {}\nseed = {}\ngroup = {}\nalpha = {}\nsoundness = {}\n",
            self.clients, self.servers, self.seed, self.group, self.alpha, self.soundness
        )
    }

    fn algebraic_group(&self) -> Group {
        match self.group.as_str() {
            "rfc3526-2048" => Group::rfc3526_2048(),
            _ => Group::testing_256(),
        }
    }

    /// Derive the full group (all identities) from the spec.
    pub fn generate(&self) -> GeneratedGroup {
        GroupBuilder::new(self.clients, self.servers)
            .with_group(self.algebraic_group())
            .with_alpha(self.alpha)
            .with_shuffle_soundness(self.soundness)
            .with_seed(self.seed)
            .build()
    }

    /// Build the session every node runs.  The RNG is derived from the
    /// roster seed, so every process ends up with bit-identical session
    /// state (pad secrets, slot schedule) — the property that lets clients
    /// and servers compute compatible ciphertexts without any key exchange
    /// over the wire.
    pub fn session(&self, generated: &GeneratedGroup) -> Result<Session, NodeError> {
        let digest = sha256_tagged(&[b"dissent-node-session", &self.seed.to_be_bytes()]);
        let mut rng = StdRng::from_seed(digest);
        Ok(Session::new(generated, &mut rng)?)
    }

    /// The public verification material connections authenticate against.
    pub fn roster_keys(&self, generated: &GeneratedGroup) -> RosterKeys {
        RosterKeys {
            group: generated.config.group.clone(),
            fingerprint: generated.config.group_id(),
            client_keys: generated.config.client_sign_keys.clone(),
            server_keys: generated.config.server_sign_keys.clone(),
        }
    }
}

/// An RNG for handshake nonces and signature blinding, seeded from
/// wall-clock time, the process id and a caller tag.  Testbed-grade only:
/// the vendored `rand` has no OS entropy source.
pub fn entropy_rng(tag: &[u8]) -> StdRng {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let digest = sha256_tagged(&[
        b"dissent-node-entropy",
        tag,
        &now.as_nanos().to_be_bytes(),
        &std::process::id().to_be_bytes(),
    ]);
    StdRng::from_seed(digest)
}

/// What one [`ServerNode::run`] observed, for tests and operators.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Rounds driven to completion.
    pub rounds: u64,
    /// Rounds whose output every server certified.
    pub certified_rounds: u64,
    /// Frames dropped *before the round engine* because the message claimed
    /// an identity other than the one the connection authenticated as.
    pub rejected_spoofs: u64,
    /// Connections that failed the challenge–response handshake.
    pub handshake_failures: u64,
    /// Authenticated connections that dropped (EOF, truncated frame, …).
    pub disconnects: u64,
    /// Anonymous messages revealed, as `(round, slot, bytes)`.
    pub messages: Vec<(u64, usize, Vec<u8>)>,
}

/// Events the per-connection threads report to the round loop.
enum NetEvent {
    Connected(Peer, FramedConn<TcpStream>),
    Frame(Peer, Frame),
    Disconnected(Peer),
    HandshakeFailed,
}

/// One process hosting the anytrust server set behind a TCP listener.
///
/// The M servers run in-process (their commit/reveal/certify exchanges are
/// delivered with [`MessageOrigin::Local`]); clients are real socket peers.
pub struct ServerNode {
    listener: TcpListener,
    spec: RosterSpec,
    /// How long to wait for the roster's clients to connect before starting
    /// round 0 regardless.
    pub connect_timeout: Duration,
    /// How long one round may wait for submissions from connected clients.
    pub round_timeout: Duration,
}

impl ServerNode {
    /// Bind the listener (use port 0 for an OS-assigned port).
    pub fn bind(spec: RosterSpec, addr: &str) -> Result<ServerNode, NodeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(ServerNode {
            listener,
            spec,
            connect_timeout: Duration::from_secs(10),
            round_timeout: Duration::from_secs(10),
        })
    }

    /// The bound address (needed when binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NodeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accept and authenticate connections, then drive `rounds` rounds,
    /// broadcasting `RoundOpen` / `Cleartext` frames and ingesting
    /// `ClientSubmit`s per authenticated origin.
    pub fn run(self, rounds: u64) -> Result<ServerSummary, NodeError> {
        let generated = self.spec.generate();
        let mut session = self.spec.session(&generated)?;
        let keys = Arc::new(self.spec.roster_keys(&generated));
        let num_clients = self.spec.clients;

        let (tx, rx) = mpsc::channel::<NetEvent>();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(self.listener, keys, tx, stop.clone());

        let mut summary = ServerSummary::default();
        // Authenticated client connections we can write to, by client index.
        let mut writers: BTreeMap<u32, FramedConn<TcpStream>> = BTreeMap::new();

        // Admission: wait until every roster slot is accounted for (an
        // authenticated connection, a failed handshake, or a disconnect) or
        // the grace period runs out, then start with whoever made it.
        let deadline = Instant::now() + self.connect_timeout;
        while (writers.len() as u64) + summary.handshake_failures + summary.disconnects
            < num_clients as u64
        {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(event) => {
                    handle_idle_event(event, &mut writers, &mut summary);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut rng = StdRng::from_seed(sha256_tagged(&[
            b"dissent-node-server-rng",
            &self.spec.seed.to_be_bytes(),
        ]));
        let mut rngs = SharedRng(&mut rng);

        for _ in 0..rounds {
            let round = session.next_round();
            let mut state = session.begin_round();
            broadcast(&mut writers, &Frame::RoundOpen { round }, &mut summary);

            // Collect one submission (or a disconnect) per connected client.
            let mut heard: BTreeSet<u32> = BTreeSet::new();
            let deadline = Instant::now() + self.round_timeout;
            while !writers.keys().all(|id| heard.contains(id)) {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let event = match rx.recv_timeout(left) {
                    Ok(event) => event,
                    Err(mpsc::RecvTimeoutError::Timeout) => break,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                match event {
                    NetEvent::Connected(peer, mut conn) => {
                        // A late client can still catch this round.
                        if conn.send(&Frame::RoundOpen { round }).is_ok() {
                            if let Peer::Client(id) = peer {
                                writers.insert(id, conn);
                            }
                        }
                    }
                    NetEvent::Disconnected(peer) => {
                        if let Peer::Client(id) = peer {
                            writers.remove(&id);
                            heard.remove(&id);
                        }
                        summary.disconnects += 1;
                    }
                    NetEvent::HandshakeFailed => summary.handshake_failures += 1,
                    NetEvent::Frame(peer, Frame::Protocol { payload }) => {
                        let Peer::Client(id) = peer else {
                            // No server peers exist in this topology; any
                            // claim to be one is a spoof attempt.
                            summary.rejected_spoofs += 1;
                            continue;
                        };
                        heard.insert(id);
                        let msg =
                            match ProtocolMessage::from_bytes(&payload, &session.config().group) {
                                Ok(msg) => msg,
                                // Malformed payloads are dropped; the frame
                                // layer already bounded their size.
                                Err(_) => continue,
                            };
                        match msg {
                            ProtocolMessage::ClientSubmit(submit) => {
                                // The transport-level check the ISSUE is
                                // about: the submission's claimed client
                                // must be the connection's authenticated
                                // identity.  Rejected here, before the
                                // round engine — and the engine re-checks
                                // via the origin we pass.
                                if submit.client != id {
                                    summary.rejected_spoofs += 1;
                                    continue;
                                }
                                session.deliver_submissions(
                                    &mut state,
                                    vec![submit],
                                    MessageOrigin::Client(id),
                                );
                            }
                            // A client connection has no business sending
                            // server-phase or accusation traffic here.
                            _ => summary.rejected_spoofs += 1,
                        }
                    }
                    NetEvent::Frame(_, _) => {}
                }
            }

            // Server phases run in-process: Local origin.
            let commits = session.server_commit_phase(&mut state);
            session.deliver_commits(&mut state, commits, MessageOrigin::Local);
            let reveals = Session::server_reveal_phase(&mut state);
            session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
            let certs = session.certify_phase(&mut state, &mut rngs);
            session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
            let result = session.finalize_round(state, &mut rngs);

            summary.rounds += 1;
            if result.certified {
                summary.certified_rounds += 1;
            }
            summary.messages.extend(
                result
                    .messages
                    .iter()
                    .map(|(slot, m)| (round, *slot, m.clone())),
            );
            broadcast(
                &mut writers,
                &Frame::Cleartext {
                    round,
                    certified: result.certified,
                    payload: result.cleartext,
                },
                &mut summary,
            );
        }

        broadcast(&mut writers, &Frame::Goodbye, &mut summary);
        stop.store(true, Ordering::SeqCst);
        let _ = acceptor.join();
        Ok(summary)
    }
}

/// Accept loop: non-blocking accepts polled against the stop flag; each
/// connection gets its own handshake + reader thread.
fn spawn_acceptor(
    listener: TcpListener,
    keys: Arc<RosterKeys>,
    tx: mpsc::Sender<NetEvent>,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let keys = keys.clone();
                    let tx = tx.clone();
                    thread::spawn(move || serve_connection(stream, &keys, &tx));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    })
}

/// Handshake then pump frames into the event channel until EOF or error.
fn serve_connection(stream: TcpStream, keys: &RosterKeys, tx: &mpsc::Sender<NetEvent>) {
    let _ = stream.set_nodelay(true);
    let mut conn = FramedConn::new(stream);
    let mut rng = entropy_rng(b"server-handshake");
    let peer = match keys.verifier_handshake(&mut conn, &mut rng) {
        Ok(peer) => peer,
        Err(_) => {
            let _ = tx.send(NetEvent::HandshakeFailed);
            return;
        }
    };
    let Ok(writer) = conn.try_clone() else {
        let _ = tx.send(NetEvent::HandshakeFailed);
        return;
    };
    if tx.send(NetEvent::Connected(peer, writer)).is_err() {
        return;
    }
    loop {
        match conn.recv() {
            Ok(Some(Frame::Goodbye)) | Ok(None) | Err(_) => {
                let _ = tx.send(NetEvent::Disconnected(peer));
                return;
            }
            Ok(Some(frame)) => {
                if tx.send(NetEvent::Frame(peer, frame)).is_err() {
                    return;
                }
            }
        }
    }
}

/// Process connection-level events while no round is collecting.
fn handle_idle_event(
    event: NetEvent,
    writers: &mut BTreeMap<u32, FramedConn<TcpStream>>,
    summary: &mut ServerSummary,
) {
    match event {
        NetEvent::Connected(Peer::Client(id), conn) => {
            writers.insert(id, conn);
        }
        NetEvent::Connected(Peer::Server(_), _) => {}
        NetEvent::Disconnected(Peer::Client(id)) => {
            writers.remove(&id);
            summary.disconnects += 1;
        }
        NetEvent::Disconnected(Peer::Server(_)) => summary.disconnects += 1,
        NetEvent::HandshakeFailed => summary.handshake_failures += 1,
        // Frames before the first RoundOpen have nowhere to go.
        NetEvent::Frame(_, _) => {}
    }
}

/// Send a frame to every connected client, dropping writers that fail.
fn broadcast(
    writers: &mut BTreeMap<u32, FramedConn<TcpStream>>,
    frame: &Frame,
    summary: &mut ServerSummary,
) {
    let dead: Vec<u32> = writers
        .iter_mut()
        .filter_map(|(id, conn)| conn.send(frame).is_err().then_some(*id))
        .collect();
    for id in dead {
        writers.remove(&id);
        summary.disconnects += 1;
    }
}

/// What one [`run_client`] observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientOutcome {
    /// `Cleartext` frames received.
    pub rounds_seen: u64,
    /// Of those, how many the servers certified.
    pub certified_rounds: u64,
    /// Anonymous messages revealed, as `(round, slot, bytes)`.
    pub delivered: Vec<(u64, usize, Vec<u8>)>,
}

/// Connect to a [`ServerNode`], authenticate as roster client `index`, and
/// participate until the server says `Goodbye`.
///
/// `posts` are queued as [`ClientAction::Send`]s, one per round, then the
/// client idles (its slot still carries cover traffic).  All *other* roster
/// clients are `Offline` from this process's point of view — each runs in
/// its own process and submits its own ciphertext.
pub fn run_client(
    spec: &RosterSpec,
    addr: &str,
    index: usize,
    posts: Vec<Vec<u8>>,
) -> Result<ClientOutcome, NodeError> {
    let generated = self_check_index(spec, index)?;
    let mut session = spec.session(&generated)?;
    let keys = spec.roster_keys(&generated);
    let signing = generated.clients[index].signing.clone();

    let stream = connect_with_retry(addr, Duration::from_secs(5))?;
    let _ = stream.set_nodelay(true);
    let mut conn = FramedConn::new(stream);
    let mut hs_rng = entropy_rng(format!("client-{index}").as_bytes());
    let claimed = u32::try_from(index)
        .map_err(|_| NodeError::Roster(format!("client index {index} exceeds u32")))?;
    keys.prover_handshake(&mut conn, Peer::Client(claimed), &signing, &mut hs_rng)?;

    // Per-round randomness never has to agree with any other process, only
    // the long-term session state does.
    let mut round_rng = entropy_rng(format!("client-rounds-{index}").as_bytes());
    let mut rngs = SharedRng(&mut round_rng);
    let mut posts: VecDeque<Vec<u8>> = posts.into();
    let mut outcome = ClientOutcome::default();

    loop {
        match conn.recv()? {
            Some(Frame::RoundOpen { round }) => {
                if round != session.next_round() {
                    // We joined late or missed a cleartext; we cannot build
                    // a ciphertext for a layout we do not have.
                    continue;
                }
                let mut actions = vec![ClientAction::Offline; spec.clients];
                actions[index] = match posts.pop_front() {
                    Some(post) => ClientAction::Send(post),
                    None => ClientAction::Idle,
                };
                let mut state = session.begin_round();
                let submits = session.client_phase(&mut state, &actions, &mut rngs);
                for submit in submits {
                    let payload =
                        ProtocolMessage::ClientSubmit(submit).to_bytes(&session.config().group);
                    conn.send(&Frame::Protocol { payload })?;
                }
            }
            Some(Frame::Cleartext {
                round,
                certified,
                payload,
            }) => {
                outcome.rounds_seen += 1;
                if certified {
                    outcome.certified_rounds += 1;
                }
                if round == session.next_round() {
                    let revealed = session.apply_certified_cleartext(round, &payload)?;
                    outcome
                        .delivered
                        .extend(revealed.into_iter().map(|(slot, m)| (round, slot, m)));
                }
            }
            Some(Frame::Goodbye) | None => break,
            Some(_) => {}
        }
    }
    Ok(outcome)
}

fn self_check_index(spec: &RosterSpec, index: usize) -> Result<GeneratedGroup, NodeError> {
    if index >= spec.clients {
        return Err(NodeError::Roster(format!(
            "client index {index} out of range for a {}-client roster",
            spec.clients
        )));
    }
    Ok(spec.generate())
}

/// Dial with retries so a client started before its server still connects.
pub fn connect_with_retry(addr: &str, patience: Duration) -> Result<TcpStream, NodeError> {
    let deadline = Instant::now() + patience;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(NodeError::Io(e));
                }
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_round_trips_through_text() {
        let spec = RosterSpec {
            clients: 4,
            servers: 2,
            seed: 99,
            group: "testing-256".into(),
            alpha: 0.5,
            soundness: 6,
        };
        assert_eq!(RosterSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn roster_parser_rejects_garbage() {
        assert!(RosterSpec::parse("clients = 4").is_err()); // missing servers
        assert!(RosterSpec::parse("clients = 4\nservers = 0\n").is_err());
        assert!(RosterSpec::parse("clients = 4\nservers = 1\nwat = 3\n").is_err());
        assert!(RosterSpec::parse("clients = 4\nservers = 1\ngroup = moon\n").is_err());
        assert!(RosterSpec::parse("clients four\nservers = 1\n").is_err());
        // Comments and blank lines are fine.
        let spec = RosterSpec::parse("# testbed\nclients = 2 # pair\n\nservers = 1\n").unwrap();
        assert_eq!((spec.clients, spec.servers), (2, 1));
    }

    #[test]
    fn two_processes_would_derive_identical_sessions() {
        let spec = RosterSpec::new(3, 2);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.config.group_id(), b.config.group_id());
        let sa = spec.session(&a).unwrap();
        let sb = spec.session(&b).unwrap();
        // The observable projection: identical pseudonym key orderings and
        // slot permutations.
        assert_eq!(sa.pseudonym_keys(), sb.pseudonym_keys());
        assert_eq!(
            (0..3).map(|c| sa.slot_of_client(c)).collect::<Vec<_>>(),
            (0..3).map(|c| sb.slot_of_client(c)).collect::<Vec<_>>()
        );
    }
}
