//! Real-socket nodes: the session engine behind an authenticated framed
//! TCP transport.
//!
//! Everything below `crate::session` is transport-agnostic — the simulators
//! drive the phase state machine in-process.  This module puts the same
//! engine behind real sockets:
//!
//! * [`RosterSpec`] — a tiny plain-text description (`key = value` lines)
//!   of a group every node derives *identically*: the
//!   [`GroupBuilder`](crate::config::GroupBuilder) seed fixes all long-term
//!   keys, and the session RNG is derived from the same seed, so separate
//!   OS processes running [`RosterSpec::session`] hold bit-identical
//!   shared-secret state.  Only simulations distribute private keys this
//!   way; a deployment would hand each node its own identity.
//! * [`ServerNode`] — one process hosting the anytrust server set.  Client
//!   connections are authenticated by the challenge–response handshake in
//!   `dissent_net::auth`; every inbound `ClientSubmit` is checked against
//!   the connection's authenticated identity *before* it reaches the round
//!   engine, and delivered with a per-connection
//!   [`MessageOrigin`](crate::messages::MessageOrigin) so the engine
//!   re-checks it.  This closes the spoofed-submission hole: first-write-wins
//!   ingestion alone cannot reject a forged submission that arrives first.
//! * [`run_client`] — a client process: connect, prove identity, then for
//!   each `RoundOpen` compute this client's own DC-net ciphertext (all other
//!   roster clients are `Offline` from this process's point of view) and
//!   submit it; `Cleartext` frames advance the local slot schedule in
//!   lock-step with the servers via
//!   [`Session::apply_certified_cleartext`].
//!
//! The handshake nonces and signature blinding draw from an RNG seeded by
//! wall-clock time and the process id — adequate for a research testbed,
//! *not* an OS entropy source; the vendored `rand` shim is deliberately
//! deterministic and offline.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use dissent_crypto::sha256::sha256_tagged;
use dissent_metrics::{Counter, Registry};
use dissent_net::{
    AuthError, AuthMetrics, Frame, FramedConn, Peer, RosterKeys, TransportError, TransportMetrics,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{GeneratedGroup, GroupBuilder};
use crate::messages::{MessageOrigin, ProtocolMessage};
use crate::round::SharedRng;
use crate::session::{ClientAction, Session, SessionError};
use dissent_crypto::Group;

/// Errors from the node layer.
#[derive(Debug)]
pub enum NodeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The authentication handshake failed.
    Auth(AuthError),
    /// A frame could not be read or written.
    Transport(TransportError),
    /// The session engine rejected something.
    Session(SessionError),
    /// The roster file could not be parsed.
    Roster(String),
    /// The server's stream is ahead of this client's schedule and the
    /// replay buffer no longer covers the gap: the client cannot rebuild
    /// the slot layouts it missed, so continuing would stall forever.
    OutOfSync {
        /// The round this client's schedule expects next.
        expected: u64,
        /// The round the server actually sent.
        got: u64,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "io: {e}"),
            NodeError::Auth(e) => write!(f, "auth: {e}"),
            NodeError::Transport(e) => write!(f, "transport: {e}"),
            NodeError::Session(e) => write!(f, "session: {e}"),
            NodeError::Roster(m) => write!(f, "roster: {m}"),
            NodeError::OutOfSync { expected, got } => write!(
                f,
                "out of sync: schedule expects round {expected}, server sent {got}"
            ),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<io::Error> for NodeError {
    fn from(e: io::Error) -> Self {
        NodeError::Io(e)
    }
}
impl From<AuthError> for NodeError {
    fn from(e: AuthError) -> Self {
        NodeError::Auth(e)
    }
}
impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}
impl From<SessionError> for NodeError {
    fn from(e: SessionError) -> Self {
        NodeError::Session(e)
    }
}

/// A plain-text group description every node derives identically.
///
/// Format: one `key = value` per line; `#` starts a comment.  Recognised
/// keys: `clients` and `servers` (required), `seed`, `group`
/// (`testing-256` or `rfc3526-2048`), `alpha`, `soundness`.
#[derive(Clone, Debug, PartialEq)]
pub struct RosterSpec {
    /// Number of roster clients.
    pub clients: usize,
    /// Number of anytrust servers.
    pub servers: usize,
    /// Seed all long-term keys and the session RNG derive from.
    pub seed: u64,
    /// Group name (`testing-256` or `rfc3526-2048`).
    pub group: String,
    /// Participation threshold α.
    pub alpha: f64,
    /// Shuffle soundness parameter.
    pub soundness: usize,
}

impl RosterSpec {
    /// A spec with testbed defaults for the given roster size.
    pub fn new(clients: usize, servers: usize) -> RosterSpec {
        RosterSpec {
            clients,
            servers,
            seed: 7,
            group: "testing-256".into(),
            alpha: 0.75,
            soundness: 4,
        }
    }

    /// Parse the plain-text roster format.
    pub fn parse(text: &str) -> Result<RosterSpec, NodeError> {
        let mut clients = None;
        let mut servers = None;
        let mut spec = RosterSpec::new(0, 0);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |what: &str| NodeError::Roster(format!("line {}: {what}: {raw:?}", lineno + 1));
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "clients" => {
                    clients = Some(value.parse().map_err(|_| bad("bad count"))?);
                }
                "servers" => {
                    servers = Some(value.parse().map_err(|_| bad("bad count"))?);
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("bad seed"))?,
                "alpha" => spec.alpha = value.parse().map_err(|_| bad("bad alpha"))?,
                "soundness" => {
                    spec.soundness = value.parse().map_err(|_| bad("bad soundness"))?;
                }
                "group" => match value {
                    "testing-256" | "rfc3526-2048" => spec.group = value.into(),
                    _ => return Err(bad("unknown group")),
                },
                _ => return Err(bad("unknown key")),
            }
        }
        spec.clients = clients.ok_or_else(|| NodeError::Roster("missing `clients`".into()))?;
        spec.servers = servers.ok_or_else(|| NodeError::Roster("missing `servers`".into()))?;
        if spec.clients == 0 || spec.servers == 0 {
            return Err(NodeError::Roster(
                "a roster needs at least one client and one server".into(),
            ));
        }
        Ok(spec)
    }

    /// Render back to the plain-text format [`RosterSpec::parse`] accepts.
    pub fn to_text(&self) -> String {
        format!(
            "clients = {}\nservers = {}\nseed = {}\ngroup = {}\nalpha = {}\nsoundness = {}\n",
            self.clients, self.servers, self.seed, self.group, self.alpha, self.soundness
        )
    }

    fn algebraic_group(&self) -> Group {
        match self.group.as_str() {
            "rfc3526-2048" => Group::rfc3526_2048(),
            _ => Group::testing_256(),
        }
    }

    /// Derive the full group (all identities) from the spec.
    pub fn generate(&self) -> GeneratedGroup {
        GroupBuilder::new(self.clients, self.servers)
            .with_group(self.algebraic_group())
            .with_alpha(self.alpha)
            .with_shuffle_soundness(self.soundness)
            .with_seed(self.seed)
            .build()
    }

    /// Build the session every node runs.  The RNG is derived from the
    /// roster seed, so every process ends up with bit-identical session
    /// state (pad secrets, slot schedule) — the property that lets clients
    /// and servers compute compatible ciphertexts without any key exchange
    /// over the wire.
    pub fn session(&self, generated: &GeneratedGroup) -> Result<Session, NodeError> {
        let digest = sha256_tagged(&[b"dissent-node-session", &self.seed.to_be_bytes()]);
        let mut rng = StdRng::from_seed(digest);
        Ok(Session::new(generated, &mut rng)?)
    }

    /// The public verification material connections authenticate against.
    pub fn roster_keys(&self, generated: &GeneratedGroup) -> RosterKeys {
        RosterKeys {
            group: generated.config.group.clone(),
            fingerprint: generated.config.group_id(),
            client_keys: generated.config.client_sign_keys.clone(),
            server_keys: generated.config.server_sign_keys.clone(),
        }
    }
}

/// An RNG for handshake nonces and signature blinding, seeded from
/// wall-clock time, the process id and a caller tag.  Testbed-grade only:
/// the vendored `rand` has no OS entropy source.
pub fn entropy_rng(tag: &[u8]) -> StdRng {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let digest = sha256_tagged(&[
        b"dissent-node-entropy",
        tag,
        &now.as_nanos().to_be_bytes(),
        &std::process::id().to_be_bytes(),
    ]);
    StdRng::from_seed(digest)
}

/// What one [`ServerNode::run`] observed, for tests and operators.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Rounds driven to completion.
    pub rounds: u64,
    /// Rounds whose output every server certified.
    pub certified_rounds: u64,
    /// Frames dropped *before the round engine* because the message claimed
    /// an identity other than the one the connection authenticated as.
    pub rejected_spoofs: u64,
    /// Connections that failed the challenge–response handshake.
    pub handshake_failures: u64,
    /// Authenticated connections that dropped (EOF, truncated frame, …).
    pub disconnects: u64,
    /// Anonymous messages revealed, as `(round, slot, bytes)`.
    pub messages: Vec<(u64, usize, Vec<u8>)>,
}

/// Events the per-connection threads report to the round loop.
///
/// The `u64` on `Connected`/`Disconnected` is a per-connection generation
/// token: events from different connection threads interleave arbitrarily
/// on the channel, so a reconnecting client's `Connected` can arrive
/// *before* the `Disconnected` of its old link — without the token, the
/// stale disconnect would evict the fresh connection's writer and the
/// client would never hear from the server again.
enum NetEvent {
    Connected(Peer, u64, FramedConn<TcpStream>),
    Frame(Peer, Frame),
    Disconnected(Peer, u64),
    HandshakeFailed,
}

/// One process hosting the anytrust server set behind a TCP listener.
///
/// The M servers run in-process (their commit/reveal/certify exchanges are
/// delivered with [`MessageOrigin::Local`]); clients are real socket peers.
pub struct ServerNode {
    listener: TcpListener,
    spec: RosterSpec,
    registry: Arc<Registry>,
    /// How long to wait for the roster's clients to connect before starting
    /// round 0 regardless.
    pub connect_timeout: Duration,
    /// How long one round may wait for submissions from connected clients.
    pub round_timeout: Duration,
}

/// How many finalized `(round, certified, cleartext)` triples the server
/// keeps for [`Frame::Resume`] replay.  A reconnecting client that missed
/// more rounds than this cannot resync and exits with
/// [`NodeError::OutOfSync`].
const RESUME_BUFFER: usize = 8;

impl ServerNode {
    /// Bind the listener (use port 0 for an OS-assigned port).
    pub fn bind(spec: RosterSpec, addr: &str) -> Result<ServerNode, NodeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(ServerNode {
            listener,
            spec,
            registry: Arc::new(Registry::new()),
            connect_timeout: Duration::from_secs(10),
            round_timeout: Duration::from_secs(10),
        })
    }

    /// The bound address (needed when binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NodeError> {
        Ok(self.listener.local_addr()?)
    }

    /// This node's metric registry.  Everything [`ServerNode::run`] counts —
    /// per-phase round timings, transport frames and bytes, handshake
    /// outcomes, spoof rejections — renders from here; the `--metrics-addr`
    /// exporter serves this registry, and [`ServerSummary`] is a read-out of
    /// it.  Per-node (not global) so tests never share counters.
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Accept and authenticate connections, then drive `rounds` rounds,
    /// broadcasting `RoundOpen` / `Cleartext` frames and ingesting
    /// `ClientSubmit`s per authenticated origin.
    pub fn run(self, rounds: u64) -> Result<ServerSummary, NodeError> {
        let generated = self.spec.generate();
        let mut session = self.spec.session(&generated)?;
        let keys = Arc::new(self.spec.roster_keys(&generated));
        let num_clients = self.spec.clients;

        // Everything observable lives in the per-node registry; the summary
        // is assembled from it after the last round.
        let registry = self.registry.clone();
        session.bind_metrics(&registry);
        let transport = TransportMetrics::registered(&registry);
        let auth = AuthMetrics::registered(&registry);
        let spoofs = registry.counter(
            "dissent_spoof_rejections_total",
            "Frames dropped before the round engine because the claimed identity \
             did not match the connection's authenticated identity.",
        );
        let handshake_failures = registry.counter(
            "dissent_handshake_failures_total",
            "Connections that never produced an authenticated peer.",
        );
        let disconnects = registry.counter(
            "dissent_disconnects_total",
            "Authenticated connections that dropped (EOF, truncated frame, failed send).",
        );
        let resumes = registry.counter(
            "dissent_resume_requests_total",
            "Resume frames received from (re)connecting clients.",
        );

        let (tx, rx) = mpsc::channel::<NetEvent>();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(
            self.listener,
            keys,
            tx,
            stop.clone(),
            transport.clone(),
            auth.clone(),
        );

        let mut summary = ServerSummary::default();
        // Authenticated client connections we can write to, by client index,
        // each carrying its generation token (see [`NetEvent`]).
        let mut writers: BTreeMap<u32, (u64, FramedConn<TcpStream>)> = BTreeMap::new();
        // Finalized rounds kept for `Resume` replay.
        let mut recent: VecDeque<(u64, bool, Vec<u8>)> = VecDeque::new();

        // Admission: wait until every roster slot is accounted for (an
        // authenticated connection, a failed handshake, or a disconnect) or
        // the grace period runs out, then start with whoever made it.
        let deadline = Instant::now() + self.connect_timeout;
        while (writers.len() as u64) + handshake_failures.get() + disconnects.get()
            < num_clients as u64
        {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(event) => {
                    handle_idle_event(
                        event,
                        &mut writers,
                        &handshake_failures,
                        &disconnects,
                        &resumes,
                    );
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut rng = StdRng::from_seed(sha256_tagged(&[
            b"dissent-node-server-rng",
            &self.spec.seed.to_be_bytes(),
        ]));
        let mut rngs = SharedRng(&mut rng);

        for _ in 0..rounds {
            let round = session.next_round();
            let mut state = session.begin_round();
            broadcast(&mut writers, &Frame::RoundOpen { round }, &disconnects);

            // Collect one submission (or a disconnect) per connected client.
            let mut heard: BTreeSet<u32> = BTreeSet::new();
            let deadline = Instant::now() + self.round_timeout;
            while !writers.keys().all(|id| heard.contains(id)) {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let event = match rx.recv_timeout(left) {
                    Ok(event) => event,
                    Err(mpsc::RecvTimeoutError::Timeout) => break,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                match event {
                    NetEvent::Connected(peer, token, mut conn) => {
                        // A late client can still catch this round.
                        if conn.send(&Frame::RoundOpen { round }).is_ok() {
                            if let Peer::Client(id) = peer {
                                writers.insert(id, (token, conn));
                            }
                        }
                    }
                    NetEvent::Disconnected(peer, token) => {
                        if let Peer::Client(id) = peer {
                            // Only the *current* generation's disconnect may
                            // evict the writer; a stale one (the client has
                            // already reconnected) must not.
                            if writers.get(&id).is_some_and(|(t, _)| *t == token) {
                                writers.remove(&id);
                                heard.remove(&id);
                            }
                        }
                        disconnects.inc();
                    }
                    NetEvent::HandshakeFailed => handshake_failures.inc(),
                    NetEvent::Frame(peer, Frame::Resume { next_round }) => {
                        // A (re)connecting client telling us where its
                        // schedule stands: replay the buffered cleartexts it
                        // missed, in round order, on its own connection.
                        let Peer::Client(id) = peer else {
                            spoofs.inc();
                            continue;
                        };
                        resumes.inc();
                        let mut dead = false;
                        if let Some((_, conn)) = writers.get_mut(&id) {
                            for (r, was_certified, payload) in
                                recent.iter().filter(|(r, _, _)| *r >= next_round)
                            {
                                let frame = Frame::Cleartext {
                                    round: *r,
                                    certified: *was_certified,
                                    payload: payload.clone(),
                                };
                                if conn.send(&frame).is_err() {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                        if dead {
                            writers.remove(&id);
                            disconnects.inc();
                        }
                    }
                    NetEvent::Frame(peer, Frame::Protocol { payload }) => {
                        let Peer::Client(id) = peer else {
                            // No server peers exist in this topology; any
                            // claim to be one is a spoof attempt.
                            spoofs.inc();
                            continue;
                        };
                        heard.insert(id);
                        let msg =
                            match ProtocolMessage::from_bytes(&payload, &session.config().group) {
                                Ok(msg) => msg,
                                // Malformed payloads are dropped; the frame
                                // layer already bounded their size.
                                Err(_) => continue,
                            };
                        match msg {
                            ProtocolMessage::ClientSubmit(submit) => {
                                // The transport-level check the ISSUE is
                                // about: the submission's claimed client
                                // must be the connection's authenticated
                                // identity.  Rejected here, before the
                                // round engine — and the engine re-checks
                                // via the origin we pass.
                                if submit.client != id {
                                    spoofs.inc();
                                    continue;
                                }
                                session.deliver_submissions(
                                    &mut state,
                                    vec![submit],
                                    MessageOrigin::Client(id),
                                );
                            }
                            // A client connection has no business sending
                            // server-phase or accusation traffic here.
                            _ => spoofs.inc(),
                        }
                    }
                    NetEvent::Frame(_, _) => {}
                }
            }

            // Server phases run in-process: Local origin.
            let commits = session.server_commit_phase(&mut state);
            session.deliver_commits(&mut state, commits, MessageOrigin::Local);
            let reveals = Session::server_reveal_phase(&mut state);
            session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
            let certs = session.certify_phase(&mut state, &mut rngs);
            session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
            let result = session.finalize_round(state, &mut rngs);

            summary.messages.extend(
                result
                    .messages
                    .iter()
                    .map(|(slot, m)| (round, *slot, m.clone())),
            );
            recent.push_back((round, result.certified, result.cleartext.clone()));
            while recent.len() > RESUME_BUFFER {
                recent.pop_front();
            }
            broadcast(
                &mut writers,
                &Frame::Cleartext {
                    round,
                    certified: result.certified,
                    payload: result.cleartext,
                },
                &disconnects,
            );
        }

        broadcast(&mut writers, &Frame::Goodbye, &disconnects);
        stop.store(true, Ordering::SeqCst);
        let _ = acceptor.join();

        // The summary is a registry read-out: the engine's round counters
        // plus this node's connection counters, one source of truth.
        let engine = session.metrics();
        summary.rounds = engine.rounds_certified.get() + engine.rounds_uncertified.get();
        summary.certified_rounds = engine.rounds_certified.get();
        summary.rejected_spoofs = spoofs.get();
        summary.handshake_failures = handshake_failures.get();
        summary.disconnects = disconnects.get();
        Ok(summary)
    }
}

/// Accept loop: non-blocking accepts polled against the stop flag; each
/// connection gets its own handshake + reader thread.
fn spawn_acceptor(
    listener: TcpListener,
    keys: Arc<RosterKeys>,
    tx: mpsc::Sender<NetEvent>,
    stop: Arc<AtomicBool>,
    transport: TransportMetrics,
    auth: AuthMetrics,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        let mut next_token = 0u64;
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let keys = keys.clone();
                    let tx = tx.clone();
                    let transport = transport.clone();
                    let auth = auth.clone();
                    let token = next_token;
                    next_token += 1;
                    thread::spawn(move || {
                        serve_connection(stream, token, &keys, &tx, transport, &auth)
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    })
}

/// Handshake then pump frames into the event channel until EOF or error.
fn serve_connection(
    stream: TcpStream,
    token: u64,
    keys: &RosterKeys,
    tx: &mpsc::Sender<NetEvent>,
    transport: TransportMetrics,
    auth: &AuthMetrics,
) {
    let _ = stream.set_nodelay(true);
    let mut conn = FramedConn::with_metrics(stream, transport);
    let mut rng = entropy_rng(b"server-handshake");
    let peer = match keys.verifier_handshake_metered(&mut conn, &mut rng, auth) {
        Ok(peer) => peer,
        Err(_) => {
            let _ = tx.send(NetEvent::HandshakeFailed);
            return;
        }
    };
    let Ok(writer) = conn.try_clone() else {
        let _ = tx.send(NetEvent::HandshakeFailed);
        return;
    };
    if tx.send(NetEvent::Connected(peer, token, writer)).is_err() {
        return;
    }
    loop {
        match conn.recv() {
            Ok(Some(Frame::Goodbye)) | Ok(None) | Err(_) => {
                let _ = tx.send(NetEvent::Disconnected(peer, token));
                return;
            }
            Ok(Some(frame)) => {
                if tx.send(NetEvent::Frame(peer, frame)).is_err() {
                    return;
                }
            }
        }
    }
}

/// Process connection-level events while no round is collecting.
fn handle_idle_event(
    event: NetEvent,
    writers: &mut BTreeMap<u32, (u64, FramedConn<TcpStream>)>,
    handshake_failures: &Counter,
    disconnects: &Counter,
    resumes: &Counter,
) {
    match event {
        NetEvent::Connected(Peer::Client(id), token, conn) => {
            writers.insert(id, (token, conn));
        }
        NetEvent::Connected(Peer::Server(_), _, _) => {}
        NetEvent::Disconnected(Peer::Client(id), token) => {
            if writers.get(&id).is_some_and(|(t, _)| *t == token) {
                writers.remove(&id);
            }
            disconnects.inc();
        }
        NetEvent::Disconnected(Peer::Server(_), _) => disconnects.inc(),
        NetEvent::HandshakeFailed => handshake_failures.inc(),
        // Nothing is buffered before round 0, so a Resume here is counted
        // and otherwise a no-op (the client is already at round 0).
        NetEvent::Frame(_, Frame::Resume { .. }) => resumes.inc(),
        // Other frames before the first RoundOpen have nowhere to go.
        NetEvent::Frame(_, _) => {}
    }
}

/// Send a frame to every connected client, dropping writers that fail.
fn broadcast(
    writers: &mut BTreeMap<u32, (u64, FramedConn<TcpStream>)>,
    frame: &Frame,
    disconnects: &Counter,
) {
    let dead: Vec<u32> = writers
        .iter_mut()
        .filter_map(|(id, (_, conn))| conn.send(frame).is_err().then_some(*id))
        .collect();
    for id in dead {
        writers.remove(&id);
        disconnects.inc();
    }
}

/// What one [`run_client`] observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientOutcome {
    /// `Cleartext` frames received.
    pub rounds_seen: u64,
    /// Of those, how many the servers certified.
    pub certified_rounds: u64,
    /// Times the server link dropped without a `Goodbye` and the client
    /// re-dialed, re-authenticated, and resynced via [`Frame::Resume`].
    pub reconnects: u64,
    /// Anonymous messages revealed, as `(round, slot, bytes)`.
    pub delivered: Vec<(u64, usize, Vec<u8>)>,
}

/// Connect to a [`ServerNode`], authenticate as roster client `index`, and
/// participate until the server says `Goodbye`.
///
/// `posts` are queued as [`ClientAction::Send`]s, one per round, then the
/// client idles (its slot still carries cover traffic).  All *other* roster
/// clients are `Offline` from this process's point of view — each runs in
/// its own process and submits its own ciphertext.
pub fn run_client(
    spec: &RosterSpec,
    addr: &str,
    index: usize,
    posts: Vec<Vec<u8>>,
) -> Result<ClientOutcome, NodeError> {
    let generated = self_check_index(spec, index)?;
    let mut session = spec.session(&generated)?;
    let keys = spec.roster_keys(&generated);
    let signing = generated.clients[index].signing.clone();
    let claimed = u32::try_from(index)
        .map_err(|_| NodeError::Roster(format!("client index {index} exceeds u32")))?;

    // A link that keeps dying is a dead server, not a flaky one.
    const MAX_RECONNECTS: u64 = 8;

    let mut conn = dial_and_auth(addr, index, &keys, &signing, claimed, session.next_round())?;

    // Per-round randomness never has to agree with any other process, only
    // the long-term session state does.
    let mut round_rng = entropy_rng(format!("client-rounds-{index}").as_bytes());
    let mut rngs = SharedRng(&mut round_rng);
    let mut posts: VecDeque<Vec<u8>> = posts.into();
    let mut outcome = ClientOutcome::default();

    loop {
        let frame = match conn.recv() {
            Ok(Some(frame)) => frame,
            // EOF or a broken link *without* a Goodbye: the server may well
            // still be running — re-dial, re-authenticate, and ask it to
            // replay the cleartexts we missed.  Only a clean Goodbye (below)
            // ends the session deliberately.
            Ok(None) | Err(_) => {
                if outcome.reconnects >= MAX_RECONNECTS {
                    return Err(NodeError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server link lost and reconnect budget exhausted",
                    )));
                }
                outcome.reconnects += 1;
                conn = dial_and_auth(addr, index, &keys, &signing, claimed, session.next_round())?;
                continue;
            }
        };
        match frame {
            Frame::RoundOpen { round } => {
                if round != session.next_round() {
                    // Mid-resync: we cannot build a ciphertext for a layout
                    // we do not have yet.  Sit this round out; the replayed
                    // cleartexts advance the schedule to the next one.
                    continue;
                }
                let mut actions = vec![ClientAction::Offline; spec.clients];
                actions[index] = match posts.pop_front() {
                    Some(post) => ClientAction::Send(post),
                    None => ClientAction::Idle,
                };
                let mut state = session.begin_round();
                let submits = session.client_phase(&mut state, &actions, &mut rngs);
                for submit in submits {
                    let payload =
                        ProtocolMessage::ClientSubmit(submit).to_bytes(&session.config().group);
                    conn.send(&Frame::Protocol { payload })?;
                }
            }
            Frame::Cleartext {
                round,
                certified,
                payload,
            } => {
                if round > session.next_round() {
                    // The replay buffer no longer covers our gap; every
                    // future layout would be built on a schedule we cannot
                    // reconstruct.  Exit distinctly instead of stalling.
                    return Err(NodeError::OutOfSync {
                        expected: session.next_round(),
                        got: round,
                    });
                }
                if round < session.next_round() {
                    // Stale replay overlap; already applied.
                    continue;
                }
                outcome.rounds_seen += 1;
                if certified {
                    outcome.certified_rounds += 1;
                }
                let revealed = session.apply_certified_cleartext(round, &payload)?;
                outcome
                    .delivered
                    .extend(revealed.into_iter().map(|(slot, m)| (round, slot, m)));
            }
            Frame::Goodbye => break,
            _ => {}
        }
    }
    Ok(outcome)
}

/// Dial, prove identity, and announce where this client's schedule stands
/// (the server replays buffered cleartexts from `next_round` on).
fn dial_and_auth(
    addr: &str,
    index: usize,
    keys: &RosterKeys,
    signing: &dissent_crypto::schnorr::SigningKeyPair,
    claimed: u32,
    next_round: u64,
) -> Result<FramedConn<TcpStream>, NodeError> {
    let stream = connect_with_retry(addr, Duration::from_secs(5))?;
    let _ = stream.set_nodelay(true);
    let mut conn = FramedConn::new(stream);
    let mut hs_rng = entropy_rng(format!("client-{index}").as_bytes());
    keys.prover_handshake(&mut conn, Peer::Client(claimed), signing, &mut hs_rng)?;
    conn.send(&Frame::Resume { next_round })?;
    Ok(conn)
}

fn self_check_index(spec: &RosterSpec, index: usize) -> Result<GeneratedGroup, NodeError> {
    if index >= spec.clients {
        return Err(NodeError::Roster(format!(
            "client index {index} out of range for a {}-client roster",
            spec.clients
        )));
    }
    Ok(spec.generate())
}

/// Dial with retries so a client started before its server still connects.
///
/// Failed attempts back off exponentially ([`next_backoff`]), and every
/// sleep is clamped to the time remaining before the deadline, so the call
/// returns within `patience` (plus at most one in-flight connect attempt)
/// instead of overshooting by a whole retry interval.
pub fn connect_with_retry(addr: &str, patience: Duration) -> Result<TcpStream, NodeError> {
    let deadline = Instant::now() + patience;
    let mut backoff = INITIAL_BACKOFF;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(NodeError::Io(e));
                };
                if left.is_zero() {
                    return Err(NodeError::Io(e));
                }
                thread::sleep(backoff.min(left));
                backoff = next_backoff(backoff);
            }
        }
    }
}

/// First retry delay for [`connect_with_retry`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(10);

/// Longest retry delay for [`connect_with_retry`].
const MAX_BACKOFF: Duration = Duration::from_millis(640);

/// The dial backoff schedule: double the delay, capped at [`MAX_BACKOFF`].
fn next_backoff(current: Duration) -> Duration {
    (current * 2).min(MAX_BACKOFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_round_trips_through_text() {
        let spec = RosterSpec {
            clients: 4,
            servers: 2,
            seed: 99,
            group: "testing-256".into(),
            alpha: 0.5,
            soundness: 6,
        };
        assert_eq!(RosterSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn roster_parser_rejects_garbage() {
        assert!(RosterSpec::parse("clients = 4").is_err()); // missing servers
        assert!(RosterSpec::parse("clients = 4\nservers = 0\n").is_err());
        assert!(RosterSpec::parse("clients = 4\nservers = 1\nwat = 3\n").is_err());
        assert!(RosterSpec::parse("clients = 4\nservers = 1\ngroup = moon\n").is_err());
        assert!(RosterSpec::parse("clients four\nservers = 1\n").is_err());
        // Comments and blank lines are fine.
        let spec = RosterSpec::parse("# testbed\nclients = 2 # pair\n\nservers = 1\n").unwrap();
        assert_eq!((spec.clients, spec.servers), (2, 1));
    }

    #[test]
    fn backoff_doubles_from_10ms_and_caps_at_640ms() {
        let mut d = INITIAL_BACKOFF;
        let mut seen = Vec::new();
        for _ in 0..9 {
            seen.push(d.as_millis());
            d = next_backoff(d);
        }
        assert_eq!(seen, vec![10, 20, 40, 80, 160, 320, 640, 640, 640]);
    }

    /// The retry loop must respect its deadline: dialing a port nothing
    /// listens on for a 250 ms patience returns within patience plus one
    /// connect attempt and a scheduler slop, never a whole extra interval.
    #[test]
    fn connect_with_retry_never_exceeds_patience() {
        // Bind-then-drop gives a local port that actively refuses.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let patience = Duration::from_millis(250);
        let start = Instant::now();
        let result = connect_with_retry(&addr, patience);
        let elapsed = start.elapsed();
        assert!(matches!(result, Err(NodeError::Io(_))), "port must refuse");
        assert!(
            elapsed < patience + Duration::from_millis(500),
            "retry overshot its deadline: {elapsed:?}"
        );
        // And it did not give up early either.
        assert!(elapsed >= patience, "gave up before patience: {elapsed:?}");
    }

    #[test]
    fn out_of_sync_error_is_distinct() {
        let e = NodeError::OutOfSync {
            expected: 3,
            got: 12,
        };
        let text = e.to_string();
        assert!(text.contains("out of sync"), "{text}");
        assert!(text.contains('3') && text.contains("12"), "{text}");
    }

    #[test]
    fn two_processes_would_derive_identical_sessions() {
        let spec = RosterSpec::new(3, 2);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.config.group_id(), b.config.group_id());
        let sa = spec.session(&a).unwrap();
        let sb = spec.session(&b).unwrap();
        // The observable projection: identical pseudonym key orderings and
        // slot permutations.
        assert_eq!(sa.pseudonym_keys(), sb.pseudonym_keys());
        assert_eq!(
            (0..3).map(|c| sa.slot_of_client(c)).collect::<Vec<_>>(),
            (0..3).map(|c| sb.slot_of_client(c)).collect::<Vec<_>>()
        );
    }
}
