//! An in-memory Dissent session with real cryptography.
//!
//! This module wires the pieces together exactly as the paper's protocol
//! outline (§3.3) describes:
//!
//! 1. **Scheduling** — every client generates a pseudonym keypair and
//!    submits the public half to a verifiable key shuffle run by the
//!    servers; the permuted output defines the slot order, and each client
//!    learns only its own slot.
//! 2. **Rounds** — clients build DC-net ciphertexts from the pads they
//!    share with each server and hand them to their upstream server; the
//!    servers run inventory → commitment → combining → certification and
//!    push the signed cleartext back.
//! 3. **Accusations** — a client whose slot was disrupted finds a witness
//!    bit, signs an accusation with its pseudonym key, and the servers run
//!    the blame protocol to identify and expel the disruptor.
//!
//! The session executes all of this with the real primitives from
//! `dissent-crypto`, `dissent-shuffle` and `dissent-dcnet`, but in a single
//! process and without network delays — it is the *functional* half of the
//! reproduction, used by the examples and integration tests.  The *timing*
//! half (Figures 6–9) lives in [`crate::timing`], which replays the same
//! protocol steps against the discrete-event network models.
//!
//! One simplification relative to the paper: the accusation here is
//! delivered to the servers directly (already signed by the unlinkable
//! pseudonym key) rather than through a second message shuffle.  The
//! disruption-resistant message shuffle itself is implemented and tested in
//! `dissent-shuffle::protocol`, and its cost is charged in the timing
//! simulator; routing the session's accusations through it would only
//! change *how* the bytes travel, not what is verified.

use crate::config::{GeneratedGroup, GroupConfig};
use crate::instrument::SessionMetrics;
use crate::messages::MessageOrigin;
use crate::round::SharedRng;
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::ElGamal;
use dissent_crypto::group::{Element, Group};
use dissent_crypto::schnorr::{self, SigningKeyPair};
use dissent_dcnet::accusation::{build_server_reveal, evaluate_blame, Accusation, BlameOutcome};
use dissent_dcnet::client::{ClientDcnet, Submission};
use dissent_dcnet::pad::SharedSecret;
use dissent_dcnet::server::{combine, ClientId, ServerId};
use dissent_dcnet::slots::{RoundLayout, SlotPayload, SlotSchedule};
use dissent_metrics::Registry;
use dissent_shuffle::protocol::{run_shuffle, submit_element};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Errors a session can produce.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionError {
    /// The key shuffle failed (a server's pass was rejected).
    ShuffleFailed(String),
    /// A client could not locate its pseudonym key in the shuffle output.
    SlotAssignmentFailed,
    /// The configuration is inconsistent (e.g. zero servers).
    BadConfig(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ShuffleFailed(e) => write!(f, "key shuffle failed: {e}"),
            SessionError::SlotAssignmentFailed => write!(f, "slot assignment failed"),
            SessionError::BadConfig(e) => write!(f, "bad configuration: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// What one client does in one round, from the application's point of view.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientAction {
    /// The client is offline this round (no ciphertext submitted).
    Offline,
    /// Online but silent: pure cover traffic.
    Idle,
    /// Deliver this message anonymously as soon as possible.  If the
    /// client's slot is closed it first sets its request bit; the message is
    /// buffered until the slot opens and is large enough.
    Send(Vec<u8>),
    /// Maliciously disrupt the given slot by XORing noise over it.
    Disrupt {
        /// The victim's slot index.
        victim_slot: usize,
    },
}

/// Result of one completed round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundResult {
    /// The round number.
    pub round: u64,
    /// Messages revealed this round, as (slot, bytes) pairs.
    pub messages: Vec<(usize, Vec<u8>)>,
    /// Number of clients whose ciphertexts were included.
    pub participation: usize,
    /// The α threshold that applied to this round.
    pub required_participation: usize,
    /// Slots observed as corrupted.
    pub corrupted_slots: Vec<usize>,
    /// Clients expelled as a result of accusations resolved this round.
    pub expelled: Vec<ClientId>,
    /// Whether every server signature over the output verified.
    pub certified: bool,
    /// The combined round cleartext every node digests (request-bit region
    /// followed by the open slots).  Exposed so equivalence tests can compare
    /// engines bit-for-bit and applications can reprocess raw slots.
    pub cleartext: Vec<u8>,
}

pub(crate) struct ClientState {
    pub(crate) dcnet: ClientDcnet,
    pub(crate) pseudonym: SigningKeyPair,
    /// Messages waiting for the slot to open (or grow) — a queue, so posts
    /// submitted in quick succession are never dropped.
    pending: std::collections::VecDeque<Vec<u8>>,
    requested: bool,
}

pub(crate) struct ServerState {
    pub(crate) index: usize,
    pub(crate) signing: SigningKeyPair,
    pub(crate) client_secrets: BTreeMap<ClientId, SharedSecret>,
}

/// A record of one round the servers keep for potential later blame.  The
/// ciphertext maps share the submission `Arc`s — keeping a record never
/// copies a ciphertext — and records older than the configured blame
/// horizon are evicted when a round completes.
pub(crate) struct RoundRecord {
    pub(crate) layout: RoundLayout,
    pub(crate) composite: Vec<ClientId>,
    pub(crate) assignment: BTreeMap<ClientId, ServerId>,
    pub(crate) client_ciphertexts: BTreeMap<ClientId, Arc<[u8]>>,
    pub(crate) server_ciphertexts: BTreeMap<ServerId, Arc<[u8]>>,
}

/// An in-memory Dissent session.
pub struct Session {
    pub(crate) config: GroupConfig,
    pub(crate) clients: Vec<ClientState>,
    pub(crate) servers: Vec<ServerState>,
    pub(crate) schedule: SlotSchedule,
    /// slot → client index (the secret permutation; held here only so tests
    /// and the blame path can resolve it, never exposed to other clients).
    slot_owner: Vec<usize>,
    pseudonym_keys: Vec<Element>,
    pub(crate) expelled: BTreeSet<ClientId>,
    pub(crate) participation: usize,
    pub(crate) round_records: BTreeMap<u64, RoundRecord>,
    pub(crate) pending_accusations: Vec<(Accusation, dissent_crypto::schnorr::Signature)>,
    /// Engine instruments — detached by default, rebound with
    /// [`Session::bind_metrics`] to render through a registry.
    pub(crate) metrics: SessionMetrics,
}

impl Session {
    /// Set up a session: derive all pairwise secrets and run the key shuffle.
    pub fn new<R: RngCore + ?Sized>(
        generated: &GeneratedGroup,
        rng: &mut R,
    ) -> Result<Session, SessionError> {
        let config = generated.config.clone();
        if config.num_servers() == 0 || config.num_clients() == 0 {
            return Err(SessionError::BadConfig(
                "a group needs at least one server and one client".into(),
            ));
        }
        let group = &config.group;
        let group_id = config.group_id();

        // 1. Pseudonym keys and the scheduling key shuffle.
        let pseudonyms: Vec<SigningKeyPair> = (0..config.num_clients())
            .map(|_| SigningKeyPair::generate(group, rng))
            .collect();
        let elgamal = ElGamal::new(group.clone());
        let server_dh: Vec<DhKeyPair> = generated.servers.iter().map(|s| s.dh.clone()).collect();
        let server_keys: Vec<Element> = config.server_dh_keys.clone();
        let submissions = pseudonyms
            .iter()
            .map(|p| submit_element(&elgamal, &server_keys, p.public(), rng))
            .collect();
        let transcript = run_shuffle(
            group,
            &server_dh,
            submissions,
            config.shuffle_soundness,
            &group_id,
            rng,
        )
        .map_err(|e| SessionError::ShuffleFailed(e.to_string()))?;
        let pseudonym_keys = transcript.output.clone();

        // Each client locates its own pseudonym key in the shuffled output;
        // the resulting slot_owner table exists only for bookkeeping.
        let mut slot_owner = vec![usize::MAX; config.num_clients()];
        for (client_idx, p) in pseudonyms.iter().enumerate() {
            let slot = pseudonym_keys
                .iter()
                .position(|k| k == p.public())
                .ok_or(SessionError::SlotAssignmentFailed)?;
            slot_owner[slot] = client_idx;
        }

        // 2. Pairwise shared secrets K_ij.
        let mut clients = Vec::with_capacity(config.num_clients());
        for (i, identity) in generated.clients.iter().enumerate() {
            let secrets: Vec<SharedSecret> = generated
                .servers
                .iter()
                .map(|s| identity.dh.shared_secret(group, s.dh.public(), &group_id))
                .collect();
            let slot = slot_owner
                .iter()
                .position(|&c| c == i)
                .ok_or(SessionError::SlotAssignmentFailed)?;
            clients.push(ClientState {
                dcnet: ClientDcnet::new(slot, secrets),
                pseudonym: pseudonyms[i].clone(),
                pending: std::collections::VecDeque::new(),
                requested: false,
            });
        }
        let servers = generated
            .servers
            .iter()
            .map(|s| {
                let client_secrets = generated
                    .clients
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        (
                            i as ClientId,
                            s.dh.shared_secret(group, c.dh.public(), &group_id),
                        )
                    })
                    .collect();
                ServerState {
                    index: s.index,
                    signing: s.signing.clone(),
                    client_secrets,
                }
            })
            .collect();

        let schedule = SlotSchedule::new(config.num_clients(), config.slot_config.clone());
        let participation = config.num_clients();
        Ok(Session {
            config,
            clients,
            servers,
            schedule,
            slot_owner,
            pseudonym_keys,
            expelled: BTreeSet::new(),
            participation,
            round_records: BTreeMap::new(),
            pending_accusations: Vec::new(),
            metrics: SessionMetrics::default(),
        })
    }

    /// Re-register this session's instruments on `registry`, so everything
    /// the engine records from here on renders through that registry's
    /// prometheus exposition (see [`SessionMetrics::registered`] for the
    /// catalog).  Recording itself is unconditional either way.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        self.metrics = SessionMetrics::registered(registry);
    }

    /// The engine's instrument handles (shared atomic cells).
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The public group configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// The slot owned by a client (diagnostic/test accessor — in the real
    /// system only the client itself knows this).
    pub fn slot_of_client(&self, client: usize) -> usize {
        self.clients[client].dcnet.slot()
    }

    /// The client owning a slot (diagnostic/test accessor).
    pub fn client_of_slot(&self, slot: usize) -> usize {
        self.slot_owner[slot]
    }

    /// The shuffled pseudonym public keys, in slot order.
    pub fn pseudonym_keys(&self) -> &[Element] {
        &self.pseudonym_keys
    }

    /// Clients expelled so far.
    pub fn expelled(&self) -> &BTreeSet<ClientId> {
        &self.expelled
    }

    /// The most recent participation count (paper §3.7).
    pub fn participation(&self) -> usize {
        self.participation
    }

    /// The round number the next call to [`Session::run_round`] will execute.
    pub fn next_round(&self) -> u64 {
        self.schedule.round()
    }

    pub(crate) fn build_submission<R: RngCore + ?Sized>(
        &mut self,
        client_idx: usize,
        action: &ClientAction,
        layout: &RoundLayout,
        rng: &mut R,
    ) -> Option<Submission> {
        let slot_cfg = self.config.slot_config.clone();
        let state = &mut self.clients[client_idx];
        let slot = state.dcnet.slot();
        match action {
            ClientAction::Offline => None,
            ClientAction::Disrupt { .. } => Some(Submission::null()),
            ClientAction::Idle | ClientAction::Send(_) => {
                if let ClientAction::Send(msg) = action {
                    state.pending.push_back(msg.clone());
                }
                let slot_open = layout.slots[slot].is_some();
                if let Some(msg) = state.pending.front().cloned() {
                    if slot_open {
                        let range = layout.slots[slot].unwrap();
                        let needed = slot_cfg.len_for_message(msg.len());
                        if needed <= range.len {
                            state.pending.pop_front();
                            state.requested = false;
                            // Keep the slot sized for the next queued message
                            // (or the default if the queue is now empty).
                            let next_len = state
                                .pending
                                .front()
                                .map(|m| slot_cfg.len_for_message(m.len()))
                                .unwrap_or(slot_cfg.default_open_len)
                                as u32;
                            return Some(Submission::message(SlotPayload {
                                next_len,
                                shuffle_request: 0,
                                message: msg,
                            }));
                        }
                        // Slot too small: grow it for the next round.
                        return Some(Submission::message(SlotPayload {
                            next_len: needed as u32,
                            shuffle_request: 0,
                            message: Vec::new(),
                        }));
                    }
                    // Slot closed: set (or re-randomize) the request bit.
                    let request = if state.requested {
                        // Randomized retry against request-bit squashing (§3.8).
                        rng.next_u32() & 1 == 1
                    } else {
                        true
                    };
                    state.requested = true;
                    return Some(if request {
                        Submission::open_request()
                    } else {
                        Submission::null()
                    });
                }
                Some(Submission::null())
            }
        }
    }

    /// Run one DC-net round in lock-step.
    ///
    /// `actions[i]` describes client `i`'s behaviour.  Expelled clients are
    /// treated as offline regardless of their action.
    ///
    /// This is a thin driver over the phase state machine in
    /// [`crate::round`]: client submissions, server commit/reveal,
    /// certification and finalization run back-to-back for a single round,
    /// threading the caller's RNG through every operation in protocol order
    /// — bit-identical to the pre-refactor monolithic engine (locked by the
    /// golden digests in `tests/pipeline_equivalence.rs`).  The pipelined
    /// driver in [`crate::pipeline`] runs the same phases with a window of
    /// rounds in flight.
    pub fn run_round<R: RngCore + ?Sized>(
        &mut self,
        actions: &[ClientAction],
        rng: &mut R,
    ) -> RoundResult {
        let mut rngs = SharedRng(rng);
        let mut state = self.begin_round();
        let submits = self.client_phase(&mut state, actions, &mut rngs);
        self.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let commits = self.server_commit_phase(&mut state);
        self.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let reveal_start = std::time::Instant::now();
        let reveals = Session::server_reveal_phase(&mut state);
        self.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        self.metrics
            .phase_reveal
            .observe_duration(reveal_start.elapsed());
        let certs = self.certify_phase(&mut state, &mut rngs);
        self.deliver_certificates(&mut state, certs, MessageOrigin::Local);
        self.finalize_round(state, &mut rngs)
    }

    /// Apply a *certified* round cleartext received over the transport to
    /// this node's copy of the slot schedule, advancing it exactly as the
    /// servers' finalize does.  Client processes call this when the
    /// `Cleartext` frame for the schedule's current round arrives; because
    /// every node applies the identical bytes, all schedules stay in
    /// lock-step without any further coordination.  Returns the `(slot,
    /// message)` pairs revealed this round.
    pub fn apply_certified_cleartext(
        &mut self,
        round: u64,
        cleartext: &[u8],
    ) -> Result<Vec<(usize, Vec<u8>)>, SessionError> {
        let layout = self.schedule.layout();
        if layout.round != round {
            return Err(SessionError::BadConfig(format!(
                "cleartext is for round {round} but the schedule is at round {}",
                layout.round
            )));
        }
        if cleartext.len() != layout.total_len {
            return Err(SessionError::BadConfig(format!(
                "cleartext is {} bytes but round {round}'s layout needs {}",
                cleartext.len(),
                layout.total_len
            )));
        }
        let output = self.schedule.apply_round_output(&layout, cleartext);
        Ok(output.messages())
    }

    /// Resolve every pending accusation, returning the clients expelled.
    ///
    /// All pseudonym signatures are screened in one batched verification;
    /// only if the batch rejects (some signature is forged) does the path
    /// fall back to per-signature checks, so a disruptor cannot force
    /// per-accusation cost on the servers just by filing many valid
    /// accusations.
    pub(crate) fn resolve_accusations(&mut self, group: &Group) -> Vec<ClientId> {
        let mut expelled_now = Vec::new();
        let accusations = std::mem::take(&mut self.pending_accusations);
        let messages: Vec<Vec<u8>> = accusations.iter().map(|(acc, _)| acc.to_bytes()).collect();
        let mut sig_ok = vec![false; accusations.len()];
        let mut batch = Vec::new();
        let mut batch_idx = Vec::new();
        for (i, ((acc, sig), message)) in accusations.iter().zip(&messages).enumerate() {
            if let Some(pseudonym) = self.pseudonym_keys.get(acc.slot) {
                batch.push(schnorr::BatchItem {
                    public: pseudonym,
                    message,
                    signature: sig,
                });
                batch_idx.push(i);
            }
        }
        if schnorr::batch_verify(group, &batch) {
            for &i in &batch_idx {
                sig_ok[i] = true;
            }
        } else {
            for (item, &i) in batch.iter().zip(&batch_idx) {
                sig_ok[i] = schnorr::verify(group, item.public, item.message, item.signature);
            }
        }
        for ((acc, _), ok) in accusations.iter().zip(sig_ok) {
            if !ok {
                continue;
            }
            if let Some(culprit) = self.process_accusation(acc) {
                if self.expelled.insert(culprit) {
                    expelled_now.push(culprit);
                }
            }
        }
        expelled_now
    }

    /// Process an accusation whose pseudonym signature has already been
    /// verified (batched with the round's other accusations by the caller):
    /// collect every server's bit reveals, evaluate blame, and return the
    /// culprit to expel (if the accusation traces to a client).
    ///
    /// Accusations naming a round older than the configured blame horizon
    /// are rejected — the evidence has been evicted (paper's bounded-blame
    /// window), so the accusation cannot resolve to anyone.
    fn process_accusation(&self, acc: &Accusation) -> Option<ClientId> {
        let record = self.round_records.get(&acc.round)?;
        if acc.bit >= record.layout.total_len * 8 {
            return None;
        }
        // Every server reveals its bits for the witness position.  The
        // `own` maps share the recorded ciphertext `Arc`s — the blame path
        // never copies a ciphertext.
        let reveals: BTreeMap<ServerId, _> = self
            .servers
            .iter()
            .map(|srv| {
                let own: BTreeMap<ClientId, Arc<[u8]>> = record
                    .client_ciphertexts
                    .iter()
                    .filter(|(c, _)| record.assignment.get(c) == Some(&(srv.index as ServerId)))
                    .map(|(c, ct)| (*c, ct.clone()))
                    .collect();
                (
                    srv.index as ServerId,
                    build_server_reveal(
                        acc.round,
                        record.layout.total_len,
                        acc.bit,
                        &record.composite,
                        &srv.client_secrets,
                        &own,
                        record.server_ciphertexts[&(srv.index as ServerId)].as_ref(),
                    ),
                )
            })
            .collect();
        let observed_bit = dissent_dcnet::pad::get_bit(
            &combine(record.layout.total_len, &record.server_ciphertexts),
            acc.bit,
        );
        match evaluate_blame(
            &record.composite,
            &record.assignment,
            &reveals,
            observed_bit,
        ) {
            BlameOutcome::ClientsAccused(clients) => clients.into_iter().next(),
            // Honest servers never trip cases (a)/(b) in this in-memory
            // session; a consistent outcome means the accusation did not
            // trace to anyone.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(clients: usize, servers: usize) -> (Session, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5E55);
        let group = GroupBuilder::new(clients, servers)
            .with_shuffle_soundness(4)
            .build();
        let session = Session::new(&group, &mut rng).unwrap();
        (session, rng)
    }

    fn idle(n: usize) -> Vec<ClientAction> {
        vec![ClientAction::Idle; n]
    }

    #[test]
    fn setup_assigns_every_client_a_unique_slot() {
        let (session, _) = session(6, 2);
        let mut slots: Vec<usize> = (0..6).map(|c| session.slot_of_client(c)).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..6).collect::<Vec<_>>());
        for slot in 0..6 {
            assert_eq!(session.slot_of_client(session.client_of_slot(slot)), slot);
        }
    }

    #[test]
    fn message_is_delivered_after_request_round() {
        let (mut session, mut rng) = session(4, 2);
        let mut actions = idle(4);
        actions[2] = ClientAction::Send(b"first post".to_vec());
        // Round 0: the slot is closed, so the client requests it.
        let r0 = session.run_round(&actions, &mut rng);
        assert!(r0.messages.is_empty());
        assert!(r0.certified);
        // Round 1: the slot is open and the buffered message goes out.
        let r1 = session.run_round(&idle(4), &mut rng);
        assert_eq!(r1.messages.len(), 1);
        assert_eq!(r1.messages[0].1, b"first post".to_vec());
        assert_eq!(r1.messages[0].0, session.slot_of_client(2));
    }

    #[test]
    fn offline_clients_reduce_participation_but_round_completes() {
        let (mut session, mut rng) = session(5, 2);
        let mut actions = idle(5);
        actions[0] = ClientAction::Offline;
        actions[3] = ClientAction::Offline;
        let r = session.run_round(&actions, &mut rng);
        assert_eq!(r.participation, 3);
        assert!(r.certified);
    }

    #[test]
    fn disruptor_is_identified_and_expelled() {
        let (mut session, mut rng) = session(5, 2);
        // Round 0: victim (client 1) requests its slot.
        let mut actions = idle(5);
        actions[1] = ClientAction::Send(b"sensitive message".to_vec());
        session.run_round(&actions, &mut rng);

        // Round 1: the victim transmits; client 4 disrupts the victim's slot.
        let victim_slot = session.slot_of_client(1);
        let mut actions = idle(5);
        actions[4] = ClientAction::Disrupt { victim_slot };
        let r1 = session.run_round(&actions, &mut rng);
        // The slot is corrupted this round (with overwhelming probability a
        // random XOR breaks the checksum).
        assert!(r1.corrupted_slots.contains(&victim_slot) || !r1.messages.is_empty());

        // The victim found a witness bit and the blame process expelled the
        // disruptor either in this round or after the next one (if every
        // flipped bit happened to be 1→0 the victim retries).
        let mut expelled: Vec<ClientId> = r1.expelled;
        let mut guard = 0;
        while expelled.is_empty() && guard < 4 {
            let mut actions = idle(5);
            actions[4] = ClientAction::Disrupt { victim_slot };
            let r = session.run_round(&actions, &mut rng);
            expelled = r.expelled;
            guard += 1;
        }
        assert_eq!(expelled, vec![4]);
        assert!(session.expelled().contains(&4));
    }

    #[test]
    fn expelled_client_no_longer_participates() {
        let (mut session, mut rng) = session(4, 2);
        session.expelled.insert(3);
        let r = session.run_round(&idle(4), &mut rng);
        assert_eq!(r.participation, 3);
    }

    #[test]
    fn output_is_identical_regardless_of_which_client_sends() {
        // Anonymity sanity check: the round output reveals the message in
        // the sender's slot, and nothing in the output or server state maps
        // a slot back to a client except through the slot_owner table the
        // test holds.  Here we check the weaker functional property that two
        // different senders produce outputs that differ only in slot position.
        let (mut s1, mut rng1) = session(4, 2);
        let (mut s2, mut rng2) = session(4, 2);
        let mut a1 = idle(4);
        a1[0] = ClientAction::Send(b"hello".to_vec());
        let mut a2 = idle(4);
        a2[3] = ClientAction::Send(b"hello".to_vec());
        s1.run_round(&a1, &mut rng1);
        s2.run_round(&a2, &mut rng2);
        let r1 = s1.run_round(&idle(4), &mut rng1);
        let r2 = s2.run_round(&idle(4), &mut rng2);
        assert_eq!(r1.messages.len(), 1);
        assert_eq!(r2.messages.len(), 1);
        assert_eq!(r1.messages[0].1, r2.messages[0].1);
    }

    #[test]
    fn participation_threshold_tracks_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        let group = GroupBuilder::new(10, 2)
            .with_shuffle_soundness(4)
            .with_alpha(0.8)
            .build();
        let mut session = Session::new(&group, &mut rng).unwrap();
        let r = session.run_round(&idle(10), &mut rng);
        assert_eq!(r.participation, 10);
        assert_eq!(r.required_participation, 8);
        // Next round: 4 clients vanish → participation 6, threshold was 8.
        let mut actions = idle(10);
        for a in actions.iter_mut().take(4) {
            *a = ClientAction::Offline;
        }
        let r = session.run_round(&actions, &mut rng);
        assert_eq!(r.participation, 6);
    }

    #[test]
    fn blame_records_respect_the_horizon() {
        let mut rng = StdRng::seed_from_u64(3);
        let group = GroupBuilder::new(4, 2)
            .with_shuffle_soundness(4)
            .with_blame_horizon(3)
            .build();
        let mut session = Session::new(&group, &mut rng).unwrap();
        for _ in 0..6 {
            session.run_round(&idle(4), &mut rng);
        }
        // Only the last `horizon` rounds of evidence remain.
        let kept: Vec<u64> = session.round_records.keys().copied().collect();
        assert_eq!(kept, vec![3, 4, 5]);
        // An accusation naming an evicted round cannot resolve to anyone.
        let stale = Accusation {
            round: 0,
            slot: 0,
            bit: 0,
        };
        assert_eq!(session.process_accusation(&stale), None);
        // One naming a retained round still evaluates (consistent here, so
        // no culprit — but the evidence was found).
        let fresh = Accusation {
            round: 5,
            slot: 0,
            bit: 0,
        };
        assert_eq!(session.process_accusation(&fresh), None);
        assert!(session.round_records.contains_key(&5));
    }

    #[test]
    fn zero_server_group_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = GroupBuilder::new(2, 0).build();
        assert!(matches!(
            Session::new(&group, &mut rng),
            Err(SessionError::BadConfig(_))
        ));
    }
}
