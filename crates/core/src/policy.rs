//! Submission-window closure policies and the participation threshold α.
//!
//! §5.1 of the paper: "Dissent's servers prevent slow nodes from impeding
//! the protocol's overall progress by imposing a ciphertext submission
//! window."  The window-closure policies themselves ([`WindowPolicy`],
//! [`WindowOutcome`]) live in `dissent-net::policy` so the event-driven
//! simulator can route its closure events through them directly; they are
//! re-exported here unchanged.  This module keeps the §3.7 α threshold: a
//! round only completes once at least α·P clients have submitted, where P
//! is the previous round's participation count.

use serde::{Deserialize, Serialize};

pub use dissent_net::policy::{WindowOutcome, WindowPolicy};

/// The participation threshold of §3.7: given the previous round's
/// participation count `prev` and the threshold `alpha`, how many clients
/// must submit before the servers may complete the round.
pub fn participation_threshold(alpha: f64, prev: usize) -> usize {
    ((prev as f64) * alpha.clamp(0.0, 1.0)).ceil() as usize
}

/// Decide whether a round may complete (§3.7): either the α threshold is met
/// by the included clients, or the hard timeout has fired (in which case the
/// round is reported failed and a fresh participation count published).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundCompletion {
    /// The round completes normally with this participation count.
    Completed(usize),
    /// Fewer than α·P clients submitted before the hard timeout: the round
    /// is reported failed.
    Failed {
        /// How many clients had submitted when the hard timeout fired.
        submitted: usize,
    },
}

/// Evaluate the α rule for one round.
pub fn evaluate_round(
    alpha: f64,
    prev_participation: usize,
    included: usize,
    hit_hard_deadline: bool,
) -> RoundCompletion {
    let needed = participation_threshold(alpha, prev_participation);
    if included >= needed {
        RoundCompletion::Completed(included)
    } else if hit_hard_deadline {
        RoundCompletion::Failed {
            submitted: included,
        }
    } else {
        // The caller keeps waiting; report the round as not yet complete by
        // treating it as failed-with-current-count only on the hard timeout.
        RoundCompletion::Failed {
            submitted: included,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dissent_net::SECOND;

    #[test]
    fn participation_threshold_rounds_up() {
        assert_eq!(participation_threshold(0.95, 100), 95);
        assert_eq!(participation_threshold(0.95, 101), 96);
        assert_eq!(participation_threshold(0.0, 100), 0);
        assert_eq!(participation_threshold(1.0, 7), 7);
        assert_eq!(participation_threshold(2.0, 10), 10); // clamped
    }

    #[test]
    fn alpha_rule_completes_or_fails() {
        assert_eq!(
            evaluate_round(0.9, 100, 95, false),
            RoundCompletion::Completed(95)
        );
        assert_eq!(
            evaluate_round(0.9, 100, 50, true),
            RoundCompletion::Failed { submitted: 50 }
        );
        // Exactly at the threshold completes.
        assert_eq!(
            evaluate_round(0.5, 10, 5, false),
            RoundCompletion::Completed(5)
        );
    }

    #[test]
    fn reexported_policy_is_the_net_implementation() {
        // The re-export keeps the historic `dissent_core::policy` paths
        // working; the analytic `apply` and the simulator consume the same
        // type.
        let policy = WindowPolicy::default();
        assert_eq!(policy.hard_deadline(), Some(120 * SECOND));
        let outcome = policy.apply(&[SECOND, 2 * SECOND], 2);
        assert_eq!(outcome.included, 2);
    }
}
