//! The pipelined round driver (paper §3.6, Figure 8).
//!
//! Round latency (client links, stragglers) must not gate round throughput,
//! so clients keep ciphertexts for a window of W future rounds in flight.
//! [`PipelinedSession`] drives the phase state machine of [`crate::round`]
//! batch-wise:
//!
//! * At a **pipeline boundary** the slot schedule's current state is frozen
//!   into layouts for the next W rounds — every in-flight round uses the
//!   same slot sizes.  Slot-size changes (grow/shrink/open/close) requested
//!   by round outputs, and expulsions decided by blame, take effect at the
//!   *next* boundary.
//! * Clients precompute and submit ciphertexts for all W rounds
//!   back-to-back; the servers then run commit → reveal → certify for each
//!   round in order, and the outputs are finalized in round order.
//! * Blame evidence is retained for the configured horizon, so an
//!   accusation about a round W−1 deep in the pipeline still traces the
//!   disruptor.
//!
//! With `W = 1` every boundary falls between consecutive rounds, which makes
//! the driver *bit-identical* to the lock-step [`Session::run_round`] path —
//! proven against pre-refactor golden digests in
//! `tests/pipeline_equivalence.rs`.  For `W > 1` the per-entity RNG streams
//! of [`crate::round::PerEntityRng`] keep every client's and server's byte
//! stream independent of how the phases interleave, so steady-state batches
//! reproduce the lock-step outputs bit-for-bit as well.

use crate::messages::MessageOrigin;
use crate::round::{RngSource, RoundState};
use crate::session::{ClientAction, RoundResult, Session, SessionError};

/// A session driven with a window of W rounds in flight.
pub struct PipelinedSession {
    session: Session,
    window: usize,
}

impl PipelinedSession {
    /// Wrap a session in a pipelined driver with the given window.
    ///
    /// Fails if the window is zero or exceeds the session's blame horizon
    /// (accusations about the oldest in-flight round must still resolve).
    pub fn new(session: Session, window: usize) -> Result<PipelinedSession, SessionError> {
        if window == 0 {
            return Err(SessionError::BadConfig(
                "pipeline window must be at least 1".into(),
            ));
        }
        if window as u64 > session.config().blame_horizon {
            return Err(SessionError::BadConfig(format!(
                "pipeline window {window} exceeds the blame horizon {}",
                session.config().blame_horizon
            )));
        }
        Ok(PipelinedSession { session, window })
    }

    /// The pipeline window W.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Re-register the wrapped session's instruments on `registry`.
    pub fn bind_metrics(&mut self, registry: &dissent_metrics::Registry) {
        self.session.bind_metrics(registry);
    }

    /// Unwrap the driver, returning the session at the current boundary.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The round number the next batch will start at.
    pub fn next_round(&self) -> u64 {
        self.session.next_round()
    }

    /// Run one batch of up to `window` rounds in flight.
    ///
    /// `actions_per_round[k][i]` is client `i`'s action in the k-th round of
    /// the batch.  Returns one [`RoundResult`] per round, in round order.
    pub fn run_batch<S: RngSource>(
        &mut self,
        actions_per_round: &[Vec<ClientAction>],
        rngs: &mut S,
    ) -> Vec<RoundResult> {
        assert!(
            !actions_per_round.is_empty() && actions_per_round.len() <= self.window,
            "a batch carries between 1 and W={} rounds",
            self.window
        );
        // Pipeline boundary: freeze the schedule's current slot layout for
        // every round of the batch.
        let base = self.session.schedule.layout();
        let mut states: Vec<RoundState> = (0..actions_per_round.len())
            .map(|k| {
                let mut layout = base.clone();
                layout.round = base.round + k as u64;
                RoundState::new(layout)
            })
            .collect();

        // Clients precompute and submit ciphertexts for the whole window.
        for (state, actions) in states.iter_mut().zip(actions_per_round) {
            let submits = self.session.client_phase(state, actions, rngs);
            self.session
                .deliver_submissions(state, submits, MessageOrigin::Local);
        }

        // Servers drain the in-flight rounds in order: commit → reveal →
        // certify per round.
        self.session
            .metrics
            .rounds_in_flight
            .set(states.len() as i64);
        for state in states.iter_mut() {
            let commits = self.session.server_commit_phase(state);
            self.session
                .deliver_commits(state, commits, MessageOrigin::Local);
            let reveal_start = std::time::Instant::now();
            let reveals = Session::server_reveal_phase(state);
            self.session
                .deliver_reveals(state, reveals, MessageOrigin::Local);
            self.session
                .metrics
                .phase_reveal
                .observe_duration(reveal_start.elapsed());
            let certs = self.session.certify_phase(state, rngs);
            self.session
                .deliver_certificates(state, certs, MessageOrigin::Local);
        }

        // Finalize in round order: outputs feed the schedule (taking effect
        // at the next boundary, since this batch's layouts are frozen),
        // victims file accusations, blame resolves, expulsions apply to the
        // next batch.
        let results: Vec<RoundResult> = states
            .into_iter()
            .map(|state| self.session.finalize_round(state, rngs))
            .collect();
        self.session.metrics.pipeline_batches.inc();
        self.session.metrics.rounds_in_flight.set(0);
        results
    }

    /// Run a script of rounds, batching `window` rounds at a time.
    pub fn run_rounds<S: RngSource>(
        &mut self,
        actions_per_round: &[Vec<ClientAction>],
        rngs: &mut S,
    ) -> Vec<RoundResult> {
        let mut out = Vec::with_capacity(actions_per_round.len());
        for chunk in actions_per_round.chunks(self.window) {
            out.extend(self.run_batch(chunk, rngs));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupBuilder;
    use crate::round::PerEntityRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(clients: usize, servers: usize, horizon: u64) -> Session {
        let mut rng = StdRng::seed_from_u64(0x1990);
        let group = GroupBuilder::new(clients, servers)
            .with_shuffle_soundness(4)
            .with_blame_horizon(horizon)
            .build();
        Session::new(&group, &mut rng).unwrap()
    }

    #[test]
    fn invalid_windows_are_rejected() {
        assert!(matches!(
            PipelinedSession::new(session(3, 2, 8), 0),
            Err(SessionError::BadConfig(_))
        ));
        assert!(matches!(
            PipelinedSession::new(session(3, 2, 2), 3),
            Err(SessionError::BadConfig(_))
        ));
        assert!(PipelinedSession::new(session(3, 2, 2), 2).is_ok());
    }

    #[test]
    fn pipelined_batch_delivers_messages() {
        let mut pipe = PipelinedSession::new(session(4, 2, 8), 2).unwrap();
        let mut rngs = PerEntityRng::new(7, 4, 2);
        let idle = || vec![ClientAction::Idle; 4];
        // Batch 1: client 2 requests its slot in round 0; the slot opens at
        // the next boundary, so the message leaves in batch 2.
        let mut a0 = idle();
        a0[2] = ClientAction::Send(b"pipelined post".to_vec());
        let results = pipe.run_batch(&[a0, idle()], &mut rngs);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.certified));
        let results = pipe.run_batch(&[idle(), idle()], &mut rngs);
        let delivered: Vec<_> = results
            .iter()
            .flat_map(|r| r.messages.iter().map(|(_, m)| m.clone()))
            .collect();
        assert!(delivered.contains(&b"pipelined post".to_vec()));
    }

    #[test]
    fn layouts_are_frozen_within_a_batch() {
        let mut pipe = PipelinedSession::new(session(3, 2, 8), 4).unwrap();
        let mut rngs = PerEntityRng::new(8, 3, 2);
        let idle = || vec![ClientAction::Idle; 3];
        // Round 0 requests a slot; rounds 1..3 of the same batch still run
        // the frozen (all-closed) layout, so nothing can be delivered before
        // the boundary.
        let mut a0 = idle();
        a0[0] = ClientAction::Send(b"x".to_vec());
        let results = pipe.run_batch(&[a0, idle(), idle(), idle()], &mut rngs);
        assert!(results.iter().all(|r| r.messages.is_empty()));
        let lens: Vec<usize> = results.iter().map(|r| r.cleartext.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "frozen layouts");
        // After the boundary the slot is open and the message drains.
        let results = pipe.run_batch(&[idle(), idle()], &mut rngs);
        assert!(results.iter().any(|r| !r.messages.is_empty()));
    }
}
