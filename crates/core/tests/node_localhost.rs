//! End-to-end: a 1-server/4-client group over real localhost TCP sockets,
//! using the node API in-process (the `dissent-server` / `dissent-client`
//! binaries wrap exactly these entry points; the root-level
//! `localhost_e2e` test exercises them as real OS processes).

use std::thread;
use std::time::Duration;

use dissent_core::node::{run_client, RosterSpec, ServerNode};

fn testbed_spec() -> RosterSpec {
    let mut spec = RosterSpec::new(4, 1);
    spec.seed = 0xE2E;
    spec.alpha = 0.5;
    spec
}

#[test]
fn four_clients_complete_rounds_over_localhost() {
    let spec = testbed_spec();
    let mut server = ServerNode::bind(spec.clone(), "127.0.0.1:0").unwrap();
    server.connect_timeout = Duration::from_secs(10);
    server.round_timeout = Duration::from_secs(10);
    let addr = server.local_addr().unwrap().to_string();

    const ROUNDS: u64 = 5;
    let server_thread = thread::spawn(move || server.run(ROUNDS).unwrap());

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let spec = spec.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                // Client 2 posts a message; a slot must first be requested
                // and opened, so it surfaces a couple of rounds in.
                let posts = if i == 2 {
                    vec![b"dissent over real sockets".to_vec()]
                } else {
                    vec![]
                };
                run_client(&spec, &addr, i, posts).unwrap()
            })
        })
        .collect();

    let summary = server_thread.join().unwrap();
    let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    // The acceptance bar: at least 3 certified rounds through the real
    // transport, with zero spoofs or auth failures among honest nodes.
    assert_eq!(summary.rounds, ROUNDS);
    assert!(
        summary.certified_rounds >= 3,
        "only {} certified rounds: {summary:?}",
        summary.certified_rounds
    );
    assert_eq!(summary.rejected_spoofs, 0);
    assert_eq!(summary.handshake_failures, 0);

    // Client 2's post comes out of the anonymity set on the server...
    assert!(
        summary
            .messages
            .iter()
            .any(|(_, _, m)| m == b"dissent over real sockets"),
        "post never surfaced: {summary:?}"
    );
    // ...and every client's lock-step schedule reveals the same bytes.
    for outcome in &outcomes {
        assert!(outcome.certified_rounds >= 3, "client saw {outcome:?}");
        assert!(
            outcome
                .delivered
                .iter()
                .any(|(_, _, m)| m == b"dissent over real sockets"),
            "client never saw the post: {outcome:?}"
        );
    }
}
