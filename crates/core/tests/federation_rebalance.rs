//! Rebalance determinism (ISSUE 10 satellite): applying a churn script
//! through the federation layer at pipeline boundaries yields byte-identical
//! per-group cleartexts to running each group standalone with the
//! post-rebalance roster — and the federated output stream is exactly the
//! union of the standalone per-group streams.
//!
//! Every proptest case drives a random script of joins and leaves, applied
//! only between batches, then reconstructs each group's engine from its
//! public rebuild coordinates (`build_group_engine` over federation seed,
//! label, epoch, roster) and replays the batches run since the rebuild.

use dissent_core::{build_group_engine, Federation, FederationParams, RoundResult};
use proptest::prelude::*;

const PHASES: usize = 3;

fn params() -> FederationParams {
    FederationParams {
        seed: 0xFEDB,
        servers_per_group: 2,
        window: 2,
        shuffle_soundness: 2,
        blame_horizon: 4,
        maglev_slots: 251,
    }
}

fn run_script(member_mask: u16, join_ct: &[u8], leave_pick: &[u8], payload: u8) {
    let mut members: Vec<u64> = (0..16).filter(|b| member_mask & (1 << b) != 0).collect();
    if members.len() < 2 {
        members.extend([30, 31]);
    }
    let labels = vec!["alpha".to_string(), "beta".to_string()];
    let p = params();
    let mut fed = Federation::new(p.clone(), &labels, &members).unwrap();

    let mut sends_history: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
    let mut records = Vec::new();
    for phase in 0..PHASES {
        // Queue churn for this boundary: up to two joins and two leaves,
        // driven by the proptest bytes.
        for k in 0..2 {
            if join_ct[phase * 2 + k] % 2 == 1 {
                fed.queue_join(100 + (phase * 10 + k) as u64);
            }
        }
        let current: Vec<u64> = fed.members().iter().copied().collect();
        for k in 0..2 {
            let pick = leave_pick[phase * 2 + k];
            if pick % 2 == 1 && !current.is_empty() {
                fed.queue_leave(current[(pick as usize / 2) % current.len()]);
            }
        }
        // Everyone who could possibly be a member after the boundary gets a
        // message queued; `run_batch` only uses sends for actual roster
        // members.
        let mut sends: Vec<(u64, Vec<u8>)> = fed
            .members()
            .iter()
            .map(|&c| (c, vec![payload ^ c as u8, phase as u8]))
            .collect();
        for k in 0..2 {
            let id = 100 + (phase * 10 + k) as u64;
            sends.push((id, vec![payload ^ id as u8, phase as u8]));
        }
        records.extend(fed.run_batch(&sends).unwrap());
        sends_history.push(sends);
    }

    // Every certified record, grouped later by (label, epoch).
    assert!(records.iter().all(|r| r.result.certified));
    check_union(&fed, &p, &sends_history, &records);
}

/// Prove the federated output stream equals the union of standalone
/// per-group runs: rebuild every group from its public coordinates, replay
/// the batches run since its last rebalance, and demand byte-identical
/// cleartexts in the same order.
fn check_union(
    fed: &Federation,
    p: &FederationParams,
    sends_history: &[Vec<(u64, Vec<u8>)>],
    records: &[dissent_core::FederatedRecord],
) {
    for status in fed.statuses() {
        if status.roster.is_empty() {
            continue;
        }
        let mut engine =
            build_group_engine(p, &status.label, status.epoch, &status.roster).unwrap();
        let start = sends_history.len() - status.batches_run as usize;
        let mut standalone: Vec<RoundResult> = Vec::new();
        for sends in &sends_history[start..] {
            let actions = Federation::actions_for(&status.roster, sends, p.window);
            standalone.extend(engine.pipe.run_batch(&actions, &mut engine.rngs));
        }
        let federated: Vec<&RoundResult> = records
            .iter()
            .filter(|r| r.group == status.label && r.epoch == status.epoch)
            .map(|r| &r.result)
            .collect();
        // Union equality: the federated stream carries exactly the rounds
        // the standalone run produces — same count, same order, and
        // byte-identical cleartexts.
        assert_eq!(
            standalone.len(),
            federated.len(),
            "group {} epoch {}",
            status.label,
            status.epoch
        );
        for (s, f) in standalone.iter().zip(federated) {
            assert_eq!(s.round, f.round);
            assert_eq!(
                s.cleartext, f.cleartext,
                "group {} round {} cleartext diverged",
                status.label, s.round
            );
            assert_eq!(s.certified, f.certified);
            assert_eq!(s.messages, f.messages);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn churn_scripts_are_boundary_deterministic(
        member_mask in any::<u16>(),
        join_ct in proptest::collection::vec(any::<u8>(), 6..7),
        leave_pick in proptest::collection::vec(any::<u8>(), 6..7),
        payload in any::<u8>(),
    ) {
        run_script(member_mask, &join_ct, &leave_pick, payload);
    }
}

/// A deterministic pinned script on top of the random ones: a whole group
/// removed mid-stream (only its clients remap — Maglev minimality), with
/// the union property checked the same way.
#[test]
fn group_removal_script_is_boundary_deterministic() {
    let members: Vec<u64> = (0..14).collect();
    let labels: Vec<String> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let p = params();
    let mut fed = Federation::new(p.clone(), &labels, &members).unwrap();
    let mut sends_history = Vec::new();
    let mut records = Vec::new();
    let sends: Vec<(u64, Vec<u8>)> = members.iter().map(|&c| (c, vec![0x5A ^ c as u8])).collect();
    records.extend(fed.run_batch(&sends).unwrap());
    sends_history.push(sends);
    // Remove a group and churn two clients at the same boundary.
    let placements: Vec<(u64, String)> = members
        .iter()
        .map(|&c| (c, fed.placement(c).to_string()))
        .collect();
    fed.queue_remove_group("beta");
    fed.queue_leave(2);
    fed.queue_join(77);
    let sends: Vec<(u64, Vec<u8>)> = fed
        .members()
        .iter()
        .chain([77].iter())
        .filter(|&&c| c != 2)
        .map(|&c| (c, vec![0xC3 ^ c as u8]))
        .collect();
    records.extend(fed.run_batch(&sends).unwrap());
    sends_history.push(sends);
    assert_eq!(fed.num_groups(), 2);
    // Maglev minimality end to end: survivors' clients stayed put.
    for (c, old) in placements {
        if c == 2 {
            continue;
        }
        if old != "beta" {
            assert_eq!(fed.placement(c), old, "client {c} must not move");
        } else {
            assert_ne!(fed.placement(c), "beta");
        }
    }
    records.extend(fed.run_batch(&[]).unwrap());
    sends_history.push(Vec::new());
    assert!(records.iter().all(|r| r.result.certified));
    check_union(&fed, &p, &sends_history, &records);
}
