//! Fuzzing the canonical wire codecs: random byte mutations of valid
//! `ProtocolMessage` encodings (and pure garbage) must never panic the
//! decoder, and everything the decoder *accepts* must re-encode/decode to a
//! fixed point — so a hostile transport peer can neither crash a node nor
//! smuggle a message whose meaning shifts when relayed.
//!
//! The corpus is harvested from a real mini-session, so every message type
//! that actually crosses the socket (submit, commit, reveal, certify) is
//! fuzzed with genuine field widths for the testing group.

use std::sync::OnceLock;

use dissent_core::{
    ClientAction, GroupBuilder, MessageOrigin, PerEntityRng, ProtocolMessage, Session,
};
use dissent_crypto::Group;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus() -> &'static (Group, Vec<Vec<u8>>) {
    static CORPUS: OnceLock<(Group, Vec<Vec<u8>>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let generated = GroupBuilder::new(3, 2)
            .with_shuffle_soundness(2)
            .with_seed(0xF422)
            .build();
        let group = generated.config.group.clone();
        let mut rng = StdRng::seed_from_u64(0xF422);
        let mut session = Session::new(&generated, &mut rng).unwrap();
        let mut rngs = PerEntityRng::new(0xF422, 3, 2);

        let mut encodings = Vec::new();
        // Two rounds so a slot request and an open-slot payload both occur.
        for round in 0..2 {
            let mut actions = vec![ClientAction::Idle; 3];
            if round == 0 {
                actions[1] = ClientAction::Send(b"fuzz corpus payload".to_vec());
            }
            let mut state = session.begin_round();
            let submits = session.client_phase(&mut state, &actions, &mut rngs);
            encodings.extend(
                submits
                    .iter()
                    .map(|s| ProtocolMessage::ClientSubmit(s.clone()).to_bytes(&group)),
            );
            session.deliver_submissions(&mut state, submits, MessageOrigin::Local);
            let commits = session.server_commit_phase(&mut state);
            encodings.extend(
                commits
                    .iter()
                    .map(|c| ProtocolMessage::ServerCommit(c.clone()).to_bytes(&group)),
            );
            session.deliver_commits(&mut state, commits, MessageOrigin::Local);
            let reveals = Session::server_reveal_phase(&mut state);
            encodings.extend(
                reveals
                    .iter()
                    .map(|r| ProtocolMessage::ServerReveal(r.clone()).to_bytes(&group)),
            );
            session.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
            let certs = session.certify_phase(&mut state, &mut rngs);
            encodings.extend(
                certs
                    .iter()
                    .map(|c| ProtocolMessage::Certify(c.clone()).to_bytes(&group)),
            );
            session.deliver_certificates(&mut state, certs, MessageOrigin::Local);
            session.finalize_round(state, &mut rngs);
        }
        assert!(encodings.len() >= 10, "corpus too small");
        (group, encodings)
    })
}

/// Valid encodings decode, and re-encode byte-exactly.
#[test]
fn valid_encodings_round_trip_byte_exactly() {
    let (group, encodings) = corpus();
    for bytes in encodings {
        let msg = ProtocolMessage::from_bytes(bytes, group).expect("corpus must decode");
        assert_eq!(&msg.to_bytes(group), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Arbitrary byte soup never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (group, _) = corpus();
        let _ = ProtocolMessage::from_bytes(&bytes, group);
    }

    // Mutations of valid encodings never panic, and anything still
    // accepted is a decode/encode fixed point.  (Byte-exactness is not
    // required of *mutants*: scalar fields decode modulo the group order,
    // so a non-canonical residue can legally alias a canonical one.)
    #[test]
    fn mutated_encodings_never_panic_and_accepts_are_stable(
        pick in any::<u64>(),
        kind in 0u8..4,
        pos in any::<u64>(),
        patch in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let (group, encodings) = corpus();
        let mut bytes = encodings[(pick % encodings.len() as u64) as usize].clone();
        let pos = (pos % bytes.len() as u64) as usize;
        match kind {
            // Overwrite a window.
            0 => {
                for (i, b) in patch.iter().enumerate() {
                    if let Some(slot) = bytes.get_mut(pos + i) {
                        *slot ^= b;
                    }
                }
            }
            // Truncate.
            1 => bytes.truncate(pos),
            // Insert garbage mid-stream.
            2 => {
                let tail = bytes.split_off(pos);
                bytes.extend_from_slice(&patch);
                bytes.extend_from_slice(&tail);
            }
            // Append trailing garbage (canonical decoders must reject it).
            _ => bytes.extend_from_slice(&patch),
        }
        if let Ok(msg) = ProtocolMessage::from_bytes(&bytes, group) {
            let reencoded = msg.to_bytes(group);
            let reparsed = ProtocolMessage::from_bytes(&reencoded, group);
            prop_assert_eq!(reparsed.ok(), Some(msg));
        }
    }
}
