//! Structured fuzzing of the `messages.rs` decoders *driven against the
//! round ingests* (ROADMAP item 5 headroom): mutated and garbage frames,
//! after passing (or failing) the wire decoder, are delivered into a live
//! round's `deliver_*` phase ingests.  Three properties are pinned:
//!
//! 1. nothing panics — not the decoder, not the ingests;
//! 2. adversarial frames never mutate `RoundState`: a round fed
//!    genuine + mutant batches is fingerprint-identical to a clean twin,
//!    and mutants delivered alone on a connection authenticated as the
//!    wrong entity are indistinguishable from an empty batch;
//! 3. the round still certifies — garbage cannot poison certification.
//!
//! The corpus is harvested from a deterministic twin session with the same
//! shape and seeds as the fuzz target, so mutants carry genuine field
//! widths and (often) the *current* round number — exercising the
//! interesting drop paths (duplicate submissions, wrong upstream,
//! commitment mismatches, bad signatures), not just length checks.

use std::sync::{Mutex, OnceLock};

use dissent_core::round::RoundState;
use dissent_core::{
    ClientAction, GroupBuilder, MessageOrigin, PerEntityRng, ProtocolMessage, Session,
};
use dissent_crypto::Group;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLIENTS: usize = 3;
const SERVERS: usize = 2;
const SEED: u64 = 0xF0752;

struct Rig {
    group: Group,
    corpus: Vec<Vec<u8>>,
    session: Session,
    rngs: PerEntityRng,
}

fn build_session() -> (Group, Session) {
    let generated = GroupBuilder::new(CLIENTS, SERVERS)
        .with_shuffle_soundness(2)
        .with_seed(SEED)
        .build();
    let group = generated.config.group.clone();
    let mut rng = StdRng::seed_from_u64(SEED);
    let session = Session::new(&generated, &mut rng).unwrap();
    (group, session)
}

fn rig() -> &'static Mutex<Rig> {
    static RIG: OnceLock<Mutex<Rig>> = OnceLock::new();
    RIG.get_or_init(|| {
        // Twin session: harvest every message kind's encoding for round 0,
        // without advancing the fuzz target past round 0.
        let (group, mut twin) = build_session();
        let mut twin_rngs = PerEntityRng::new(SEED, CLIENTS, SERVERS);
        let mut corpus = Vec::new();
        let mut actions = vec![ClientAction::Idle; CLIENTS];
        actions[1] = ClientAction::Send(b"fuzz ingest payload".to_vec());
        let mut state = twin.begin_round();
        let submits = twin.client_phase(&mut state, &actions, &mut twin_rngs);
        corpus.extend(
            submits
                .iter()
                .map(|m| ProtocolMessage::ClientSubmit(m.clone()).to_bytes(&group)),
        );
        twin.deliver_submissions(&mut state, submits, MessageOrigin::Local);
        let commits = twin.server_commit_phase(&mut state);
        corpus.extend(
            commits
                .iter()
                .map(|m| ProtocolMessage::ServerCommit(m.clone()).to_bytes(&group)),
        );
        twin.deliver_commits(&mut state, commits, MessageOrigin::Local);
        let reveals = Session::server_reveal_phase(&mut state);
        corpus.extend(
            reveals
                .iter()
                .map(|m| ProtocolMessage::ServerReveal(m.clone()).to_bytes(&group)),
        );
        twin.deliver_reveals(&mut state, reveals, MessageOrigin::Local);
        let certs = twin.certify_phase(&mut state, &mut twin_rngs);
        corpus.extend(
            certs
                .iter()
                .map(|m| ProtocolMessage::Certify(m.clone()).to_bytes(&group)),
        );
        assert!(corpus.len() >= 2 * SERVERS + CLIENTS, "corpus too small");

        let (_, session) = build_session();
        let rngs = PerEntityRng::new(SEED, CLIENTS, SERVERS);
        Mutex::new(Rig {
            group,
            corpus,
            session,
            rngs,
        })
    })
}

/// One proptest-driven mutation of a corpus frame (the `proptest_wire`
/// mutation kinds: window XOR, truncate, insert, append).
fn mutate(corpus: &[Vec<u8>], pick: u64, kind: u8, pos: u64, patch: &[u8]) -> Vec<u8> {
    let mut bytes = corpus[(pick % corpus.len() as u64) as usize].clone();
    let pos = (pos % bytes.len() as u64) as usize;
    match kind {
        0 => {
            for (i, b) in patch.iter().enumerate() {
                if let Some(slot) = bytes.get_mut(pos + i) {
                    *slot ^= b;
                }
            }
        }
        1 => bytes.truncate(pos),
        2 => {
            let tail = bytes.split_off(pos);
            bytes.extend_from_slice(patch);
            bytes.extend_from_slice(&tail);
        }
        _ => bytes.extend_from_slice(patch),
    }
    bytes
}

/// Everything the mutated frames decoded to, sorted per ingest.
#[derive(Default)]
struct Decoded {
    submits: Vec<dissent_core::ClientSubmit>,
    commits: Vec<dissent_core::ServerCommit>,
    reveals: Vec<dissent_core::ServerReveal>,
    certs: Vec<dissent_core::Certify>,
}

fn decode_all(group: &Group, frames: &[Vec<u8>]) -> Decoded {
    let mut out = Decoded::default();
    for frame in frames {
        match ProtocolMessage::from_bytes(frame, group) {
            Ok(ProtocolMessage::ClientSubmit(m)) => out.submits.push(m),
            Ok(ProtocolMessage::ServerCommit(m)) => out.commits.push(m),
            Ok(ProtocolMessage::ServerReveal(m)) => out.reveals.push(m),
            Ok(ProtocolMessage::Certify(m)) => out.certs.push(m),
            Ok(ProtocolMessage::AccusationFiled(_)) | Err(_) => {}
        }
    }
    out
}

/// Deliver `mutants ++ []` on a connection authenticated as the wrong
/// entity and `[]` on a local one; both must leave the state identical.
fn assert_gated<T>(
    pre: &RoundState,
    deliver: impl Fn(&mut RoundState, Vec<T>, MessageOrigin),
    mutants: Vec<T>,
    wrong_entity: MessageOrigin,
) {
    let mut gated = pre.clone();
    deliver(&mut gated, mutants, wrong_entity);
    let mut empty = pre.clone();
    deliver(&mut empty, Vec::new(), MessageOrigin::Local);
    assert_eq!(
        gated.fingerprint(),
        empty.fingerprint(),
        "mutants on a wrong-entity connection must act like an empty batch"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Drive one full round, injecting a batch of mutated frames into every
    // phase ingest alongside the genuine messages, plus wrong-entity and
    // pure-garbage deliveries against forked states.
    #[test]
    fn adversarial_frames_never_panic_never_mutate_state_and_round_certifies(
        picks in proptest::collection::vec(any::<u64>(), 1..8),
        kinds in proptest::collection::vec(any::<u8>(), 8..9),
        poses in proptest::collection::vec(any::<u64>(), 8..9),
        patch in proptest::collection::vec(any::<u8>(), 1..16),
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            1..4,
        ),
    ) {
        let mut rig = rig().lock().unwrap();
        let Rig { group, corpus, session, rngs } = &mut *rig;
        let frames: Vec<Vec<u8>> = picks
            .iter()
            .enumerate()
            .map(|(i, pick)| mutate(corpus, *pick, kinds[i] % 4, poses[i], &patch))
            .chain(garbage.iter().cloned())
            .collect();
        let adv = decode_all(group, &frames);

        let actions = vec![ClientAction::Idle; CLIENTS];
        let mut state = session.begin_round();
        let genuine = session.client_phase(&mut state, &actions, rngs);

        // Submission ingest.
        assert_gated(
            &state,
            |s, m, o| session.deliver_submissions(s, m, o),
            adv.submits.clone(),
            MessageOrigin::Server(0),
        );
        let mut dirty = state.clone();
        session.deliver_submissions(&mut state, genuine.clone(), MessageOrigin::Local);
        let mut batch = genuine;
        batch.extend(adv.submits.iter().cloned());
        session.deliver_submissions(&mut dirty, batch, MessageOrigin::Local);
        prop_assert_eq!(state.fingerprint(), dirty.fingerprint());

        // Commit ingest (single delivery per phase: mutants ride the batch).
        let genuine = session.server_commit_phase(&mut state);
        session.server_commit_phase(&mut dirty);
        assert_gated(
            &state,
            |s, m, o| session.deliver_commits(s, m, o),
            adv.commits.clone(),
            MessageOrigin::Client(0),
        );
        session.deliver_commits(&mut state, genuine.clone(), MessageOrigin::Local);
        let mut batch = genuine;
        batch.extend(adv.commits.iter().cloned());
        session.deliver_commits(&mut dirty, batch, MessageOrigin::Local);
        prop_assert_eq!(state.fingerprint(), dirty.fingerprint());

        // Reveal ingest.
        let genuine = Session::server_reveal_phase(&mut state);
        Session::server_reveal_phase(&mut dirty);
        assert_gated(
            &state,
            |s, m, o| session.deliver_reveals(s, m, o),
            adv.reveals.clone(),
            MessageOrigin::Client(0),
        );
        session.deliver_reveals(&mut state, genuine.clone(), MessageOrigin::Local);
        let mut batch = genuine;
        batch.extend(adv.reveals.iter().cloned());
        session.deliver_reveals(&mut dirty, batch, MessageOrigin::Local);
        prop_assert_eq!(state.fingerprint(), dirty.fingerprint());

        // Certification ingest.
        let genuine = session.certify_phase(&mut state, rngs);
        assert_gated(
            &state,
            |s, m, o| session.deliver_certificates(s, m, o),
            adv.certs.clone(),
            MessageOrigin::Client(0),
        );
        session.deliver_certificates(&mut state, genuine.clone(), MessageOrigin::Local);
        let mut batch = genuine;
        batch.extend(adv.certs.iter().cloned());
        // The dirty fork ran its own certify phase so its digest matches.
        let dirty_genuine = session.certify_phase(&mut dirty, rngs);
        prop_assert_eq!(dirty_genuine.len(), batch.len() - adv.certs.len());
        session.deliver_certificates(&mut dirty, batch, MessageOrigin::Local);
        prop_assert_eq!(state.fingerprint(), dirty.fingerprint());

        // Garbage cannot poison certification: the adversarially-fed round
        // still certifies.
        prop_assert!(state.is_certified(), "round must certify despite mutants");
    }
}
