//! Adversarial transport suite: the spoofing hole the authenticated
//! transport closes, plus hostile-peer behaviour at the frame layer.
//!
//! Every test runs a real [`ServerNode`] on a localhost socket and attacks
//! it with hand-driven connections.

use std::io::Write;
use std::net::Shutdown;
use std::thread;
use std::time::Duration;

use dissent_core::node::{connect_with_retry, entropy_rng, run_client, RosterSpec, ServerNode};
use dissent_core::{ClientAction, ProtocolMessage};
use dissent_net::{Frame, FramedConn, Peer, PROTOCOL_VERSION};

fn spec(clients: usize) -> RosterSpec {
    let mut spec = RosterSpec::new(clients, 1);
    spec.seed = 0xAD5E;
    spec.alpha = 0.5;
    spec
}

fn spawn_server(
    spec: &RosterSpec,
    rounds: u64,
) -> (String, thread::JoinHandle<dissent_core::ServerSummary>) {
    let mut server = ServerNode::bind(spec.clone(), "127.0.0.1:0").unwrap();
    server.connect_timeout = Duration::from_secs(5);
    server.round_timeout = Duration::from_secs(5);
    let addr = server.local_addr().unwrap().to_string();
    (addr, thread::spawn(move || server.run(rounds).unwrap()))
}

/// Client 1 authenticates as itself, then submits byte-valid ciphertexts
/// claiming to be client 0 — *before* client 0's own submissions can land.
/// Under PR 5's first-write-wins ingestion the forgery would have displaced
/// the honest ciphertext; the authenticated transport rejects it before the
/// round engine, and client 0's post still surfaces.
#[test]
fn client_i_cannot_submit_as_j_even_when_arriving_first() {
    let spec = spec(4);
    const ROUNDS: u64 = 5;
    let (addr, server) = spawn_server(&spec, ROUNDS);

    // The spoofer: because the testbed roster is seed-derived, client 1 can
    // compute client 0's exact ciphertexts — the strongest possible forgery.
    let spoofer = {
        let spec = spec.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            let generated = spec.generate();
            let mut session = spec.session(&generated).unwrap();
            let key = generated.clients[1].signing.clone();
            let keys = spec.roster_keys(&generated);
            let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
            let mut conn = FramedConn::new(stream);
            let mut rng = entropy_rng(b"spoofer-hs");
            keys.prover_handshake(&mut conn, Peer::Client(1), &key, &mut rng)
                .unwrap();
            let mut round_rng = entropy_rng(b"spoofer-rounds");
            let mut rngs = dissent_core::SharedRng(&mut round_rng);
            let mut spoofs_sent = 0u64;
            loop {
                match conn.recv().unwrap() {
                    Some(Frame::RoundOpen { round }) if round == session.next_round() => {
                        // Craft client 0's submission, not our own.
                        let mut actions = vec![ClientAction::Offline; 4];
                        actions[0] = ClientAction::Idle;
                        let mut state = session.begin_round();
                        let submits = session.client_phase(&mut state, &actions, &mut rngs);
                        for submit in submits {
                            assert_eq!(submit.client, 0, "forgery must claim client 0");
                            let payload = ProtocolMessage::ClientSubmit(submit)
                                .to_bytes(&session.config().group);
                            conn.send(&Frame::Protocol { payload }).unwrap();
                            spoofs_sent += 1;
                        }
                    }
                    Some(Frame::Cleartext { round, payload, .. }) => {
                        let _ = session.apply_certified_cleartext(round, &payload);
                    }
                    Some(Frame::Goodbye) | None => break,
                    Some(_) => {}
                }
            }
            spoofs_sent
        })
    };

    let honest: Vec<_> = [0usize, 2, 3]
        .into_iter()
        .map(|i| {
            let spec = spec.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                let posts = if i == 0 {
                    vec![b"honest post from client 0".to_vec()]
                } else {
                    vec![]
                };
                run_client(&spec, &addr, i, posts).unwrap()
            })
        })
        .collect();

    let summary = server.join().unwrap();
    let spoofs_sent = spoofer.join().unwrap();
    let outcomes: Vec<_> = honest.into_iter().map(|c| c.join().unwrap()).collect();

    assert!(spoofs_sent >= ROUNDS, "spoofer sent {spoofs_sent}");
    assert_eq!(
        summary.rejected_spoofs, spoofs_sent,
        "every forgery must be rejected before the engine: {summary:?}"
    );
    assert!(summary.certified_rounds >= 3, "{summary:?}");
    // The honest client's post made it through untouched.
    assert!(
        summary
            .messages
            .iter()
            .any(|(_, _, m)| m == b"honest post from client 0"),
        "{summary:?}"
    );
    assert!(outcomes[0]
        .delivered
        .iter()
        .any(|(_, _, m)| m == b"honest post from client 0"));
}

/// A hello claiming the wrong group fingerprint or the wrong protocol
/// version is refused with `AuthReject` and never authenticates.
#[test]
fn hello_mismatch_is_rejected() {
    let spec = spec(2);
    let (addr, server) = spawn_server(&spec, 0);

    // Wrong fingerprint.
    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Hello {
        version: PROTOCOL_VERSION,
        fingerprint: [0xAB; 32],
        role: 1,
        id: 0,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Some(Frame::AuthReject { reason }) => {
            assert!(reason.contains("fingerprint"), "reason: {reason}")
        }
        other => panic!("expected AuthReject, got {other:?}"),
    }

    // Wrong version.
    let generated = spec.generate();
    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Hello {
        version: PROTOCOL_VERSION + 1,
        fingerprint: generated.config.group_id(),
        role: 1,
        id: 0,
    })
    .unwrap();
    assert!(matches!(
        conn.recv().unwrap(),
        Some(Frame::AuthReject { .. })
    ));

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 2, "{summary:?}");
    assert_eq!(summary.rounds, 0);
}

/// Oversize length prefixes and connections cut mid-header are dropped at
/// the frame layer without ever allocating or authenticating.
#[test]
fn truncated_and_oversize_frames_drop_the_connection() {
    let spec = spec(2);
    let (addr, server) = spawn_server(&spec, 0);

    // A header declaring a 4 GiB frame: rejected from the header alone.
    let mut stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    stream.write_all(&0xFFFF_FFFFu32.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    drop(stream);

    // A connection that dies mid-header.
    let mut stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    stream.write_all(&[0x00, 0x00]).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Both).unwrap();

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 2, "{summary:?}");
}

/// A protocol frame sent before authenticating is an `AuthReject`, not a
/// path into the round engine.
#[test]
fn pre_auth_protocol_frame_is_rejected() {
    let spec = spec(1);
    let (addr, server) = spawn_server(&spec, 0);

    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Protocol {
        payload: vec![0x01, 0x02, 0x03],
    })
    .unwrap();
    assert!(matches!(
        conn.recv().unwrap(),
        Some(Frame::AuthReject { .. })
    ));

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 1, "{summary:?}");
    assert_eq!(summary.rejected_spoofs, 0);
}

/// An authenticated client that dies mid-frame neither stalls nor poisons
/// the round: the server counts the disconnect and keeps certifying with
/// the remaining clients.
#[test]
fn mid_frame_disconnect_after_auth_keeps_rounds_certifying() {
    let spec = spec(4);
    const ROUNDS: u64 = 4;
    let (addr, server) = spawn_server(&spec, ROUNDS);

    let flaky = {
        let spec = spec.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            let generated = spec.generate();
            let key = generated.clients[3].signing.clone();
            let keys = spec.roster_keys(&generated);
            let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
            let mut conn = FramedConn::new(stream);
            let mut rng = entropy_rng(b"flaky-hs");
            keys.prover_handshake(&mut conn, Peer::Client(3), &key, &mut rng)
                .unwrap();
            // Wait for the round to open, then die ten bytes into a frame
            // that promised one hundred.
            loop {
                if let Some(Frame::RoundOpen { .. }) = conn.recv().unwrap() {
                    break;
                }
            }
            let stream = conn.get_ref();
            let mut raw = stream.try_clone().unwrap();
            raw.write_all(&100u32.to_be_bytes()).unwrap();
            raw.write_all(&[0x07; 10]).unwrap();
            raw.flush().unwrap();
            raw.shutdown(Shutdown::Both).unwrap();
        })
    };

    let honest: Vec<_> = (0..3)
        .map(|i| {
            let spec = spec.clone();
            let addr = addr.clone();
            thread::spawn(move || run_client(&spec, &addr, i, vec![]).unwrap())
        })
        .collect();

    let summary = server.join().unwrap();
    flaky.join().unwrap();
    for c in honest {
        c.join().unwrap();
    }

    assert_eq!(summary.rounds, ROUNDS, "{summary:?}");
    assert!(summary.certified_rounds >= 3, "{summary:?}");
    assert!(summary.disconnects >= 1, "{summary:?}");
}
