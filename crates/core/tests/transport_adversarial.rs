//! Adversarial transport suite: the spoofing hole the authenticated
//! transport closes, plus hostile-peer behaviour at the frame layer.
//!
//! Every test runs a real [`ServerNode`] on a localhost socket and attacks
//! it with hand-driven connections.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dissent_core::node::{connect_with_retry, entropy_rng, run_client, RosterSpec, ServerNode};
use dissent_core::{ClientAction, ProtocolMessage};
use dissent_metrics::Registry;
use dissent_net::{Frame, FramedConn, Peer, PROTOCOL_VERSION};

fn spec(clients: usize) -> RosterSpec {
    let mut spec = RosterSpec::new(clients, 1);
    spec.seed = 0xAD5E;
    spec.alpha = 0.5;
    spec
}

fn spawn_server(
    spec: &RosterSpec,
    rounds: u64,
) -> (
    String,
    Arc<Registry>,
    thread::JoinHandle<dissent_core::ServerSummary>,
) {
    let mut server = ServerNode::bind(spec.clone(), "127.0.0.1:0").unwrap();
    server.connect_timeout = Duration::from_secs(5);
    server.round_timeout = Duration::from_secs(5);
    let addr = server.local_addr().unwrap().to_string();
    let registry = server.registry();
    (
        addr,
        registry,
        thread::spawn(move || server.run(rounds).unwrap()),
    )
}

/// Client 1 authenticates as itself, then submits byte-valid ciphertexts
/// claiming to be client 0 — *before* client 0's own submissions can land.
/// Under PR 5's first-write-wins ingestion the forgery would have displaced
/// the honest ciphertext; the authenticated transport rejects it before the
/// round engine, and client 0's post still surfaces.
#[test]
fn client_i_cannot_submit_as_j_even_when_arriving_first() {
    let spec = spec(4);
    const ROUNDS: u64 = 5;
    let (addr, registry, server) = spawn_server(&spec, ROUNDS);

    // The spoofer: because the testbed roster is seed-derived, client 1 can
    // compute client 0's exact ciphertexts — the strongest possible forgery.
    let spoofer = {
        let spec = spec.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            let generated = spec.generate();
            let mut session = spec.session(&generated).unwrap();
            let key = generated.clients[1].signing.clone();
            let keys = spec.roster_keys(&generated);
            let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
            let mut conn = FramedConn::new(stream);
            let mut rng = entropy_rng(b"spoofer-hs");
            keys.prover_handshake(&mut conn, Peer::Client(1), &key, &mut rng)
                .unwrap();
            let mut round_rng = entropy_rng(b"spoofer-rounds");
            let mut rngs = dissent_core::SharedRng(&mut round_rng);
            let mut spoofs_sent = 0u64;
            loop {
                match conn.recv().unwrap() {
                    Some(Frame::RoundOpen { round }) if round == session.next_round() => {
                        // Craft client 0's submission, not our own.
                        let mut actions = vec![ClientAction::Offline; 4];
                        actions[0] = ClientAction::Idle;
                        let mut state = session.begin_round();
                        let submits = session.client_phase(&mut state, &actions, &mut rngs);
                        for submit in submits {
                            assert_eq!(submit.client, 0, "forgery must claim client 0");
                            let payload = ProtocolMessage::ClientSubmit(submit)
                                .to_bytes(&session.config().group);
                            conn.send(&Frame::Protocol { payload }).unwrap();
                            spoofs_sent += 1;
                        }
                    }
                    Some(Frame::Cleartext { round, payload, .. }) => {
                        let _ = session.apply_certified_cleartext(round, &payload);
                    }
                    Some(Frame::Goodbye) | None => break,
                    Some(_) => {}
                }
            }
            spoofs_sent
        })
    };

    let honest: Vec<_> = [0usize, 2, 3]
        .into_iter()
        .map(|i| {
            let spec = spec.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                let posts = if i == 0 {
                    vec![b"honest post from client 0".to_vec()]
                } else {
                    vec![]
                };
                run_client(&spec, &addr, i, posts).unwrap()
            })
        })
        .collect();

    let summary = server.join().unwrap();
    let spoofs_sent = spoofer.join().unwrap();
    let outcomes: Vec<_> = honest.into_iter().map(|c| c.join().unwrap()).collect();

    assert!(spoofs_sent >= ROUNDS, "spoofer sent {spoofs_sent}");
    assert_eq!(
        summary.rejected_spoofs, spoofs_sent,
        "every forgery must be rejected before the engine: {summary:?}"
    );
    // The summary is a read-out of the node's registry: the exporter and
    // the tests see the same counter.
    assert_eq!(
        registry.counter_value("dissent_spoof_rejections_total", &[]),
        Some(spoofs_sent),
    );
    assert!(summary.certified_rounds >= 3, "{summary:?}");
    // The honest client's post made it through untouched.
    assert!(
        summary
            .messages
            .iter()
            .any(|(_, _, m)| m == b"honest post from client 0"),
        "{summary:?}"
    );
    assert!(outcomes[0]
        .delivered
        .iter()
        .any(|(_, _, m)| m == b"honest post from client 0"));
}

/// A hello claiming the wrong group fingerprint or the wrong protocol
/// version is refused with `AuthReject` and never authenticates.
#[test]
fn hello_mismatch_is_rejected() {
    let spec = spec(2);
    let (addr, _registry, server) = spawn_server(&spec, 0);

    // Wrong fingerprint.
    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Hello {
        version: PROTOCOL_VERSION,
        fingerprint: [0xAB; 32],
        role: 1,
        id: 0,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Some(Frame::AuthReject { reason }) => {
            assert!(reason.contains("fingerprint"), "reason: {reason}")
        }
        other => panic!("expected AuthReject, got {other:?}"),
    }

    // Wrong version.
    let generated = spec.generate();
    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Hello {
        version: PROTOCOL_VERSION + 1,
        fingerprint: generated.config.group_id(),
        role: 1,
        id: 0,
    })
    .unwrap();
    assert!(matches!(
        conn.recv().unwrap(),
        Some(Frame::AuthReject { .. })
    ));

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 2, "{summary:?}");
    assert_eq!(summary.rounds, 0);
}

/// Oversize length prefixes and connections cut mid-header are dropped at
/// the frame layer without ever allocating or authenticating.
#[test]
fn truncated_and_oversize_frames_drop_the_connection() {
    let spec = spec(2);
    let (addr, _registry, server) = spawn_server(&spec, 0);

    // A header declaring a 4 GiB frame: rejected from the header alone.
    let mut stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    stream.write_all(&0xFFFF_FFFFu32.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    drop(stream);

    // A connection that dies mid-header.
    let mut stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    stream.write_all(&[0x00, 0x00]).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Both).unwrap();

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 2, "{summary:?}");
}

/// A protocol frame sent before authenticating is an `AuthReject`, not a
/// path into the round engine.
#[test]
fn pre_auth_protocol_frame_is_rejected() {
    let spec = spec(1);
    let (addr, _registry, server) = spawn_server(&spec, 0);

    let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut conn = FramedConn::new(stream);
    conn.send(&Frame::Protocol {
        payload: vec![0x01, 0x02, 0x03],
    })
    .unwrap();
    assert!(matches!(
        conn.recv().unwrap(),
        Some(Frame::AuthReject { .. })
    ));

    let summary = server.join().unwrap();
    assert_eq!(summary.handshake_failures, 1, "{summary:?}");
    assert_eq!(summary.rejected_spoofs, 0);
}

/// An authenticated client that dies mid-frame neither stalls nor poisons
/// the round: the server counts the disconnect and keeps certifying with
/// the remaining clients.
#[test]
fn mid_frame_disconnect_after_auth_keeps_rounds_certifying() {
    let spec = spec(4);
    const ROUNDS: u64 = 4;
    let (addr, _registry, server) = spawn_server(&spec, ROUNDS);

    let flaky = {
        let spec = spec.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            let generated = spec.generate();
            let key = generated.clients[3].signing.clone();
            let keys = spec.roster_keys(&generated);
            let stream = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
            let mut conn = FramedConn::new(stream);
            let mut rng = entropy_rng(b"flaky-hs");
            keys.prover_handshake(&mut conn, Peer::Client(3), &key, &mut rng)
                .unwrap();
            // Wait for the round to open, then die ten bytes into a frame
            // that promised one hundred.
            loop {
                if let Some(Frame::RoundOpen { .. }) = conn.recv().unwrap() {
                    break;
                }
            }
            let stream = conn.get_ref();
            let mut raw = stream.try_clone().unwrap();
            raw.write_all(&100u32.to_be_bytes()).unwrap();
            raw.write_all(&[0x07; 10]).unwrap();
            raw.flush().unwrap();
            raw.shutdown(Shutdown::Both).unwrap();
        })
    };

    let honest: Vec<_> = (0..3)
        .map(|i| {
            let spec = spec.clone();
            let addr = addr.clone();
            thread::spawn(move || run_client(&spec, &addr, i, vec![]).unwrap())
        })
        .collect();

    let summary = server.join().unwrap();
    flaky.join().unwrap();
    for c in honest {
        c.join().unwrap();
    }

    assert_eq!(summary.rounds, ROUNDS, "{summary:?}");
    assert!(summary.certified_rounds >= 3, "{summary:?}");
    assert!(summary.disconnects >= 1, "{summary:?}");
}

/// A frame-level proxy between one client and the server.
///
/// * `kill_after_cleartexts`: on the *first* connection, sever the link (no
///   Goodbye) right after forwarding that many server→client `Cleartext`
///   frames (tag 0x08).  The proxy keeps listening, so the client's
///   reconnect dials straight back through to the server.
/// * `submit_delay`: sleep before forwarding each client→server `Protocol`
///   frame (tag 0x07) — a slow-but-honest client, which paces the whole
///   group's rounds (the server waits for every connected client).
fn proxy(
    server_addr: String,
    kill_after_cleartexts: Option<u64>,
    submit_delay: Option<Duration>,
) -> String {
    const TAG_PROTOCOL: u8 = 0x07;
    const TAG_CLEARTEXT: u8 = 0x08;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = listener.local_addr().unwrap().to_string();
    thread::spawn(move || {
        let mut first = true;
        for inbound in listener.incoming() {
            let Ok(client_side) = inbound else { break };
            let Ok(server_side) = TcpStream::connect(&server_addr) else {
                break;
            };
            let kill_after = if first { kill_after_cleartexts } else { None };
            first = false;

            // Client → server: forwards frame-by-frame so the honest-but-
            // slow delay lands between whole submissions.
            let mut c2s_from = client_side.try_clone().unwrap();
            let mut c2s_to = server_side.try_clone().unwrap();
            thread::spawn(move || {
                loop {
                    let mut header = [0u8; 4];
                    if c2s_from.read_exact(&mut header).is_err() {
                        break;
                    }
                    let len = u32::from_be_bytes(header) as usize;
                    let mut body = vec![0u8; len];
                    if c2s_from.read_exact(&mut body).is_err() {
                        break;
                    }
                    if let Some(delay) = submit_delay {
                        if body.first() == Some(&TAG_PROTOCOL) {
                            thread::sleep(delay);
                        }
                    }
                    if c2s_to.write_all(&header).is_err() || c2s_to.write_all(&body).is_err() {
                        break;
                    }
                    let _ = c2s_to.flush();
                }
                let _ = c2s_to.shutdown(Shutdown::Both);
            });

            // Server → client: parse the 4-byte length prefix + tag so the
            // cut lands exactly on a frame boundary, after the Nth cleartext.
            let mut s2c_from = server_side;
            let mut s2c_to = client_side;
            thread::spawn(move || {
                let mut forwarded = 0u64;
                loop {
                    let mut header = [0u8; 4];
                    if s2c_from.read_exact(&mut header).is_err() {
                        break;
                    }
                    let len = u32::from_be_bytes(header) as usize;
                    let mut body = vec![0u8; len];
                    if s2c_from.read_exact(&mut body).is_err() {
                        break;
                    }
                    if s2c_to.write_all(&header).is_err() || s2c_to.write_all(&body).is_err() {
                        break;
                    }
                    let _ = s2c_to.flush();
                    if body.first() == Some(&TAG_CLEARTEXT) {
                        forwarded += 1;
                        if kill_after == Some(forwarded) {
                            // Sever both directions without a Goodbye.
                            let _ = s2c_to.shutdown(Shutdown::Both);
                            let _ = s2c_from.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                }
                let _ = s2c_to.shutdown(Shutdown::Both);
            });
        }
    });
    proxy_addr
}

/// The reconnect bugfix end to end: a client whose link is killed without a
/// Goodbye re-dials, re-authenticates, resyncs via `Resume` replay, and the
/// group keeps certifying rounds.
#[test]
fn killed_client_reconnects_resyncs_and_rounds_still_certify() {
    let spec = spec(4);
    const ROUNDS: u64 = 6;
    let (addr, registry, server) = spawn_server(&spec, ROUNDS);
    let flaky_addr = proxy(addr.clone(), Some(2), None);
    // Client 0 is honest but slow: its delayed submissions pace every round,
    // so the killed client has time to reconnect before the run is over.
    let slow_addr = proxy(addr.clone(), None, Some(Duration::from_millis(40)));

    // Client 3 runs through the flaky proxy; the rest connect directly.
    let flaky = {
        let spec = spec.clone();
        thread::spawn(move || run_client(&spec, &flaky_addr, 3, vec![]).unwrap())
    };
    let honest: Vec<_> = (0..3)
        .map(|i| {
            let spec = spec.clone();
            let addr = if i == 0 {
                slow_addr.clone()
            } else {
                addr.clone()
            };
            thread::spawn(move || run_client(&spec, &addr, i, vec![]).unwrap())
        })
        .collect();

    let summary = server.join().unwrap();
    let outcome = flaky.join().unwrap();
    for c in honest {
        c.join().unwrap();
    }

    assert!(outcome.reconnects >= 1, "link was never cut: {outcome:?}");
    assert_eq!(summary.rounds, ROUNDS, "{summary:?}");
    assert!(
        summary.certified_rounds >= ROUNDS - 1,
        "reconnect broke certification: {summary:?}"
    );
    // The client rejoined and kept applying certified cleartexts after the
    // cut (it had seen at most 2 before the proxy severed the link).
    assert!(
        outcome.certified_rounds > 2,
        "client never resynced: {outcome:?}"
    );
    // The server saw both the drop and the resume request.
    assert!(summary.disconnects >= 1, "{summary:?}");
    let resumes = registry
        .counter_value("dissent_resume_requests_total", &[])
        .unwrap();
    // Every dial sends one Resume (4 initial connects + >=1 reconnect).
    assert!(resumes >= 5, "resume requests: {resumes}");
}
