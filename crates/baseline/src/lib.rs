//! # dissent-baseline
//!
//! Baseline DC-net designs the paper compares against (Herbivore and the
//! first-generation Dissent both scaled to only ~40–50 members):
//!
//! * [`peer`] — the classic all-to-all peer DC-net: O(N) computation per
//!   member per output bit, O(N²) communication, and a hard requirement
//!   that every member stays online for a round to decode.  Also includes a
//!   Herbivore-style leader-combiner timing variant.
//!
//! The comparison benches in `dissent-bench` put these side by side with
//! Dissent's anytrust client/server design to reproduce the paper's central
//! scalability claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod peer;

pub use peer::{
    attempts_until_success, combine, leader_round_time, member_ciphertext, peer_round_time,
    PeerSecrets,
};
