//! Classic peer-to-peer DC-net (Chaum 1988): the baseline Dissent improves on.
//!
//! Every pair of the N members shares a secret coin; every member XORs N−1
//! pad strings (plus its message) into its ciphertext and broadcasts it to
//! everyone.  The round output is decodable only when *all* members'
//! ciphertexts are present, which is exactly the scalability and churn
//! problem §3.1 of the paper describes:
//!
//! * per-member computation is O(N) per output bit (vs O(M) in Dissent);
//! * communication is O(N²) ciphertext transmissions per round;
//! * a single member going offline forces every other member to recompute
//!   and resend, and f adversarial members can force f successive restarts.
//!
//! This module implements the scheme functionally (for correctness tests and
//! comparison benches) and provides timing/cost formulas used by the
//! ablation experiments.

use dissent_dcnet::pad::{pad, xor_into, SharedSecret};
use dissent_net::costmodel::CostModel;
use dissent_net::link::Link;
use dissent_net::sim::SimTime;
use rand::Rng;

/// Pairwise secrets for a fully-connected group of `n` members.
#[derive(Clone, Debug)]
pub struct PeerSecrets {
    n: usize,
    /// `secrets[i][j]` = the secret member i shares with member j (symmetric).
    secrets: Vec<Vec<SharedSecret>>,
}

impl PeerSecrets {
    /// Deterministically generate the O(N²) pairwise secrets.
    // Indices double as the byte content of each secret, so the index loop
    // is the clearest form.
    #[allow(clippy::needless_range_loop)]
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut secrets = vec![vec![[0u8; 32]; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut s = [0u8; 32];
                s[..8].copy_from_slice(&seed.to_be_bytes());
                s[8..16].copy_from_slice(&(i as u64).to_be_bytes());
                s[16..24].copy_from_slice(&(j as u64).to_be_bytes());
                secrets[i][j] = s;
                secrets[j][i] = s;
            }
        }
        PeerSecrets { n, secrets }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The secret member `i` shares with member `j`.
    pub fn shared(&self, i: usize, j: usize) -> SharedSecret {
        self.secrets[i][j]
    }
}

/// Build member `i`'s ciphertext for a round, XORing pads with every *other
/// online* member in `online` (the classic protocol requires `online` to be
/// agreed upon in advance; a mismatch garbles the round).
pub fn member_ciphertext(
    secrets: &PeerSecrets,
    online: &[usize],
    member: usize,
    round: u64,
    message: Option<&[u8]>,
    len: usize,
) -> Vec<u8> {
    let mut out = vec![0u8; len];
    if let Some(m) = message {
        assert!(m.len() <= len, "message longer than the round length");
        out[..m.len()].copy_from_slice(m);
    }
    for &peer in online {
        if peer == member {
            continue;
        }
        xor_into(&mut out, &pad(&secrets.shared(member, peer), round, len));
    }
    out
}

/// Combine all members' ciphertexts into the round output.
pub fn combine(len: usize, ciphertexts: &[Vec<u8>]) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for ct in ciphertexts {
        xor_into(&mut out, ct);
    }
    out
}

/// How many times a round must be re-run before it completes, given a
/// per-member per-attempt disconnection probability — the churn-induced
/// restart behaviour of §3.1/§3.6.  Each attempt fails if *any* currently
/// online member drops mid-round (the paper's "one slow member delays the
/// entire group").
pub fn attempts_until_success<R: Rng + ?Sized>(
    rng: &mut R,
    members: usize,
    per_member_drop_prob: f64,
    max_attempts: usize,
) -> usize {
    for attempt in 1..=max_attempts {
        let failed = (0..members).any(|_| rng.gen_bool(per_member_drop_prob.clamp(0.0, 1.0)));
        if !failed {
            return attempt;
        }
    }
    max_attempts
}

/// Timing model for one peer-to-peer DC-net round (used by the comparison
/// benches): every member computes N−1 pads over the full round length and
/// broadcasts its ciphertext to all N−1 peers over its own link.
pub fn peer_round_time(cost: &CostModel, link: &Link, members: usize, len: usize) -> SimTime {
    let compute = (members.saturating_sub(1)) as SimTime * cost.stream_time(len);
    // Each member serializes N−1 copies of its ciphertext; reception of the
    // other N−1 ciphertexts shares the same link.
    let broadcast = link.transfer_time(len * members.saturating_sub(1)) * 2;
    compute + broadcast
}

/// Aggregate network traffic (bytes) of one peer-to-peer round: every one of
/// the N members sends its ciphertext to the other N−1 — the O(N²) term that
/// caps classic DC-nets at tens of members.
pub fn peer_total_traffic(members: usize, len: usize) -> usize {
    members * members.saturating_sub(1) * len
}

/// Aggregate network traffic of a leader-combined round: N uploads plus N
/// downloads of the combined output — O(N).
pub fn leader_total_traffic(members: usize, len: usize) -> usize {
    2 * members * len
}

/// Timing model for a Herbivore-style star: members send to a leader who
/// combines and broadcasts the result.  Communication is O(N) per round but
/// computation per member is still O(N) pads, and the leader's link carries
/// all N ciphertexts.
pub fn leader_round_time(cost: &CostModel, link: &Link, members: usize, len: usize) -> SimTime {
    let member_compute = (members.saturating_sub(1)) as SimTime * cost.stream_time(len);
    let leader_ingest = link.serialization_time(len * members) + link.latency_us;
    let leader_combine = members as SimTime * cost.stream_time(len);
    let broadcast = link.serialization_time(len * members) + link.latency_us;
    member_compute + leader_ingest + leader_combine + broadcast
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_sender_message_revealed() {
        let n = 6;
        let secrets = PeerSecrets::generate(n, 1);
        let online: Vec<usize> = (0..n).collect();
        let len = 64;
        let cts: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let msg = (i == 3).then_some(&b"peer dc-net"[..]);
                member_ciphertext(&secrets, &online, i, 0, msg, len)
            })
            .collect();
        let out = combine(len, &cts);
        assert_eq!(&out[..11], b"peer dc-net");
        assert!(out[11..].iter().all(|&b| b == 0));
    }

    #[test]
    fn missing_member_garbles_the_round() {
        // The defining weakness: if one member's ciphertext is absent the
        // pads no longer cancel and the output is garbage.
        let n = 5;
        let secrets = PeerSecrets::generate(n, 2);
        let online: Vec<usize> = (0..n).collect();
        let len = 32;
        let cts: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let msg = (i == 0).then_some(&b"hello"[..]);
                member_ciphertext(&secrets, &online, i, 0, msg, len)
            })
            .collect();
        let out = combine(len, &cts[..n - 1]); // member n-1 never arrives
        assert_ne!(&out[..5], b"hello");
    }

    #[test]
    fn recomputation_after_exclusion_recovers() {
        // After agreeing member 4 is gone, the others recompute without its
        // pads and the round decodes again — the costly "re-run" step.
        let n = 5;
        let secrets = PeerSecrets::generate(n, 3);
        let online: Vec<usize> = (0..n - 1).collect();
        let len = 32;
        let cts: Vec<Vec<u8>> = online
            .iter()
            .map(|&i| {
                let msg = (i == 0).then_some(&b"hello"[..]);
                member_ciphertext(&secrets, &online, i, 1, msg, len)
            })
            .collect();
        let out = combine(len, &cts);
        assert_eq!(&out[..5], b"hello");
    }

    #[test]
    fn churn_restarts_grow_with_group_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 200;
        let avg = |members: usize, rng: &mut StdRng| -> f64 {
            (0..trials)
                .map(|_| attempts_until_success(rng, members, 0.01, 50))
                .sum::<usize>() as f64
                / trials as f64
        };
        let small = avg(10, &mut rng);
        let large = avg(400, &mut rng);
        assert!(large > small * 2.0, "small {small}, large {large}");
    }

    #[test]
    fn peer_round_time_scales_with_membership() {
        let cost = CostModel::default();
        let link = Link::new_ms_mbps(10.0, 100.0);
        // Use a payload large enough that serialization dominates the fixed
        // per-message latency, exposing the linear-per-member (quadratic
        // aggregate) growth.
        let t100 = peer_round_time(&cost, &link, 100, 16 * 1024);
        let t1000 = peer_round_time(&cost, &link, 1000, 16 * 1024);
        assert!(t1000 > t100 * 8, "{t1000} vs {t100}");
        // Aggregate traffic is the O(N²) killer.
        assert_eq!(peer_total_traffic(100, 1024), 100 * 99 * 1024);
        assert!(peer_total_traffic(1000, 1024) > 90 * peer_total_traffic(100, 1024));
    }

    #[test]
    fn leader_variant_cuts_traffic_but_not_per_member_compute() {
        let cost = CostModel::default();
        let link = Link::new_ms_mbps(10.0, 100.0);
        // Herbivore's star topology reduces aggregate traffic from O(N²) to
        // O(N)…
        assert!(leader_total_traffic(500, 4096) * 100 < peer_total_traffic(500, 4096));
        // …and its wall-clock round time is no worse than full broadcast…
        let peer = peer_round_time(&cost, &link, 500, 4096);
        let leader = leader_round_time(&cost, &link, 500, 4096);
        assert!(leader <= peer + peer / 10);
        // …but per-member computation still grows linearly with N, unlike
        // Dissent's O(M).
        assert!(leader_round_time(&cost, &link, 1000, 4096) > leader);
    }

    #[test]
    fn secrets_are_symmetric() {
        let s = PeerSecrets::generate(8, 9);
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_eq!(s.shared(i, j), s.shared(j, i));
                }
            }
        }
        assert_eq!(s.len(), 8);
    }
}
