//! One-shot HTTP/1.0 exposition of a [`Registry`](crate::Registry).
//!
//! Deliberately minimal: every connection gets one `200 OK` with the
//! current [`Registry::render`](crate::Registry::render) output and is
//! closed — exactly what a prometheus scraper (or `curl`) expects from a
//! `text/plain; version=0.0.4` endpoint, with no HTTP library and no new
//! threadpool.  It runs on the same blocking-socket machinery as the node
//! binaries: one acceptor thread, short socket timeouts, a stop flag.

use crate::Registry;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long the acceptor sleeps between polls of the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Per-connection socket timeout: a scraper that stalls mid-request is
/// dropped rather than wedging the acceptor.
const SCRAPE_TIMEOUT: Duration = Duration::from_millis(500);

/// A background thread serving scrapes of one registry.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Serve `registry` on `listener` from a background thread until
    /// [`MetricsExporter::stop`] (or drop).
    pub fn spawn(listener: TcpListener, registry: Arc<Registry>) -> std::io::Result<Self> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::spawn(move || accept_loop(listener, registry, flag));
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the acceptor and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<Registry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_scrape(stream, &registry),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Answer one scrape: drain the request head (best-effort), write the
/// exposition, close.  Any socket error just drops the connection.
fn serve_scrape(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(SCRAPE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_TIMEOUT));
    // Read until the blank line ending the request head, a size cap, EOF,
    // or timeout; the path/method are irrelevant — every request gets the
    // same document.
    let mut head = [0u8; 1024];
    let mut got = 0;
    while got < head.len() {
        match stream.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                if head[..got].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrapes_are_one_shot_http() {
        let registry = Arc::new(Registry::new());
        let c = registry.counter("scraped_total", "times scraped");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let exporter = MetricsExporter::spawn(listener, Arc::clone(&registry)).unwrap();

        c.add(3);
        let first = scrape(exporter.addr());
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("text/plain; version=0.0.4"));
        assert!(first.contains("scraped_total 3"), "{first}");

        // A second connection sees updated values: the responder is
        // per-connection, not a cached snapshot.
        c.inc();
        let second = scrape(exporter.addr());
        assert!(second.contains("scraped_total 4"), "{second}");

        // stop() joins the acceptor thread; returning proves it exited.
        exporter.stop();
    }
}
