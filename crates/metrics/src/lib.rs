//! Lightweight metrics for the Dissent reproduction.
//!
//! The paper's whole evaluation (§5–§6) is measured behavior — round
//! latency per phase, throughput under churn, rejected forgeries under
//! attack — so the node and simulator paths record into a shared set of
//! instruments and anything (tests, the `--metrics-addr` exporter, the
//! `experiments` sweeps) reads the same numbers.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path recording is atomics only.**  [`Counter::inc`],
//!    [`Gauge::set`] and [`Histogram::observe`] are relaxed atomic
//!    operations on pre-registered cells: no locks, no allocation, no
//!    formatting.  All strings and bucket layouts are fixed at
//!    registration time.
//! 2. **Zero dependencies.**  The crate is std-only so it can sit below
//!    every other workspace crate (the build environment has no registry
//!    access, and a metrics layer must never pull in more than it
//!    measures).
//! 3. **Prometheus text exposition.**  [`Registry::render`] produces the
//!    `text/plain; version=0.0.4` format — `# HELP`/`# TYPE` headers,
//!    cumulative `_bucket{le=...}` series ending in `+Inf`, `_sum` and
//!    `_count` — served by [`exporter::MetricsExporter`] over a one-shot
//!    HTTP/1.0 responder on the same blocking-socket machinery the node
//!    binaries already use.
//!
//! Handles are cheap `Arc` clones.  A handle created with
//! [`Counter::detached`] (or `Default`) records normally but renders
//! nowhere, so library code can instrument unconditionally and only pay
//! for exposition when a caller binds a [`Registry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exporter;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; recording is a relaxed atomic add.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry: records normally, renders
    /// nowhere.  Lets library code instrument unconditionally.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (in microseconds) for latency histograms, rendered in
/// seconds (`scale` 1e6): 100 µs .. 30 s plus the implicit `+Inf`.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000,
];

struct HistogramCore {
    /// Finite bucket upper bounds, strictly increasing, in recording units.
    bounds: Box<[u64]>,
    /// Per-bucket (non-cumulative) counts; one extra slot for `+Inf`.
    counts: Box<[AtomicU64]>,
    /// Sum of all recorded values, in recording units.
    sum: AtomicU64,
    /// Divisor applied at render time (1e6 turns recorded µs into
    /// exposed seconds; 1.0 exposes raw units).
    scale: f64,
}

/// A fixed-bucket histogram.  Buckets are chosen at registration; each
/// observation is two relaxed atomic adds (bucket slot + sum).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry.  `bounds` must be
    /// strictly increasing; `scale` divides values at render time.
    pub fn detached(bounds: &[u64], scale: f64) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.into(),
            counts,
            sum: AtomicU64::new(0),
            scale: if scale > 0.0 { scale } else { 1.0 },
        }))
    }

    /// A detached latency histogram ([`LATENCY_BUCKETS_US`], seconds).
    pub fn detached_latency() -> Self {
        Histogram::detached(LATENCY_BUCKETS_US, 1e6)
    }

    /// Record one value (recording units — µs for latency histograms).
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < v);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration as microseconds (latency histograms).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations, in *rendered* units (recording sum / scale).
    pub fn sum(&self) -> f64 {
        to_f64(self.0.sum.load(Ordering::Relaxed)) / self.0.scale
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) in rendered units by linear
    /// interpolation inside the containing bucket.  Observations that
    /// landed in `+Inf` clamp to the largest finite bound.  Returns 0.0
    /// with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * to_f64(total)).max(1.0);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if to_f64(next) >= target {
                let hi = match self.0.bounds.get(i) {
                    Some(&b) => to_f64(b),
                    // +Inf bucket: clamp to the largest finite bound.
                    None => {
                        return self
                            .0
                            .bounds
                            .last()
                            .map_or(0.0, |&b| to_f64(b) / self.0.scale)
                    }
                };
                let lo = if i == 0 {
                    0.0
                } else {
                    to_f64(self.0.bounds[i - 1])
                };
                let frac = if c == 0 {
                    1.0
                } else {
                    (target - to_f64(cumulative)) / to_f64(c)
                };
                return (lo + (hi - lo) * frac) / self.0.scale;
            }
            cumulative = next;
        }
        self.0
            .bounds
            .last()
            .map_or(0.0, |&b| to_f64(b) / self.0.scale)
    }
}

/// `u64 as f64` isolated so call sites stay cast-free (quantile math is
/// estimation; the precision loss above 2^53 is irrelevant).
fn to_f64(v: u64) -> f64 {
    v as f64
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// A collection of named instruments with stable registration order,
/// rendered with [`Registry::render`].
///
/// Registration takes a lock and allocates; recording through the
/// returned handles never does.  Registering the same `(name, labels)`
/// twice returns the existing handle, so independent components can
/// share an instrument by name.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn labels_of(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (String::from(*k), String::from(*v)))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        debug_assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':'),
            "invalid metric name {name:?}"
        );
        let wanted = labels_of(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: String::from(name),
                    help: String::from(help),
                    kind: "",
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == wanted) {
            return clone_instrument(&existing.instrument);
        }
        let instrument = make();
        assert!(
            family.kind.is_empty() || family.kind == instrument.kind(),
            "metric {name} registered as both {} and {}",
            family.kind,
            instrument.kind()
        );
        family.kind = instrument.kind();
        let handle = clone_instrument(&instrument);
        family.series.push(Series {
            labels: wanted,
            instrument,
        });
        handle
    }

    /// Register (or look up) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with a fixed label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || {
            Instrument::Counter(Counter::detached())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Instrument::Gauge(Gauge::detached())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabelled histogram with the given finite
    /// bucket bounds (recording units) and render-time divisor.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64], scale: f64) -> Histogram {
        self.histogram_with(name, help, &[], bounds, scale)
    }

    /// Register (or look up) a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        scale: f64,
    ) -> Histogram {
        match self.register(name, help, labels, || {
            Instrument::Histogram(Histogram::detached(bounds, scale))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) a latency histogram: records microseconds,
    /// renders seconds, buckets [`LATENCY_BUCKETS_US`].
    pub fn latency_histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram(name, help, LATENCY_BUCKETS_US, 1e6)
    }

    /// Labelled variant of [`Registry::latency_histogram`].
    pub fn latency_histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        self.histogram_with(name, help, labels, LATENCY_BUCKETS_US, 1e6)
    }

    /// Read a counter's current value, if registered.  For assertions.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let wanted = labels_of(labels);
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.iter().find(|f| f.name == name)?;
        let series = family.series.iter().find(|s| s.labels == wanted)?;
        match &series.instrument {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Render the prometheus text exposition (`text/plain; version=0.0.4`).
    ///
    /// Families appear in registration order; series within a family in
    /// registration order; histogram buckets cumulative and terminated by
    /// `+Inf`, followed by `_sum` and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for family in families.iter() {
            if !family.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            }
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for series in &family.series {
                render_series(&mut out, &family.name, &series.labels, &series.instrument);
            }
        }
        out
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(c.clone()),
        Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
        Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a rendered-unit float the way prometheus clients expect:
/// plain decimal, no exponent, no trailing leftovers for integral values.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let s = format!("{v:.9}");
        let s = s.trim_end_matches('0');
        String::from(s.trim_end_matches('.'))
    }
}

fn render_series(out: &mut String, name: &str, labels: &[(String, String)], i: &Instrument) {
    match i {
        Instrument::Counter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(labels, None),
                c.get()
            ));
        }
        Instrument::Gauge(g) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(labels, None),
                g.get()
            ));
        }
        Instrument::Histogram(h) => {
            let core = &h.0;
            let mut cumulative = 0u64;
            for (idx, slot) in core.counts.iter().enumerate() {
                cumulative += slot.load(Ordering::Relaxed);
                let le = match core.bounds.get(idx) {
                    Some(&b) => fmt_f64(to_f64(b) / core.scale),
                    None => String::from("+Inf"),
                };
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    label_block(labels, Some(("le", &le)))
                ));
            }
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(labels, None),
                fmt_f64(h.sum())
            ));
            out.push_str(&format!(
                "{name}_count{} {cumulative}\n",
                label_block(labels, None)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("requests_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("requests_total", "requests").get(), 5);
        assert_eq!(r.counter_value("requests_total", &[]), Some(5));

        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_bucket_math() {
        let h = Histogram::detached(&[10, 100], 1.0);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5223.0);
        // Bucket membership: le=10 gets {1,10}; le=100 adds {11,100};
        // +Inf adds {101,5000}.
        assert_eq!(h.0.counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.0.counts[1].load(Ordering::Relaxed), 2);
        assert_eq!(h.0.counts[2].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::detached(&[100, 200, 400], 1.0);
        for _ in 0..100 {
            h.observe(150);
        }
        // Everything sits in (100, 200]: the median interpolates inside.
        let p50 = h.quantile(0.5);
        assert!(p50 > 100.0 && p50 <= 200.0, "p50 = {p50}");
        h.observe(10_000); // +Inf
        assert_eq!(h.quantile(1.0), 400.0);
        assert_eq!(Histogram::detached(&[1], 1.0).quantile(0.5), 0.0);
    }

    #[test]
    fn detached_handles_record_without_rendering() {
        let c = Counter::detached();
        c.inc();
        assert_eq!(c.get(), 1);
        let h = Histogram::detached_latency();
        h.observe_duration(Duration::from_millis(3));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn fmt_f64_is_plain_decimal() {
        assert_eq!(fmt_f64(0.0001), "0.0001");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(30.0), "30");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "");
        let _ = r.gauge_with("x_total", "", &[("a", "b")]);
    }
}
