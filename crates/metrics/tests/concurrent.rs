//! Concurrent-recording property: N threads each making M recordings is
//! indistinguishable, in every exposed total, from one thread making N×M —
//! the whole point of the atomic hot path.

use dissent_metrics::{Histogram, Registry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn threaded_records_equal_serial_totals(
        threads in 2usize..=8,
        per_thread in 1u64..=2_000,
        value_span in 1u64..=300_000,
    ) {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("hits_total", "");
        let hist = registry.histogram("vals", "", &[100, 10_000, 100_000], 1.0);

        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let counter = counter.clone();
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        // Deterministic but spread across buckets.
                        hist.observe((i.wrapping_mul(2_654_435_761).wrapping_add(t as u64)) % value_span);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        // Serial reference over the identical value stream.
        let serial = Histogram::detached(&[100, 10_000, 100_000], 1.0);
        let mut serial_count = 0u64;
        for t in 0..threads {
            for i in 0..per_thread {
                serial_count += 1;
                serial.observe((i.wrapping_mul(2_654_435_761).wrapping_add(t as u64)) % value_span);
            }
        }

        prop_assert_eq!(counter.get(), serial_count);
        prop_assert_eq!(hist.count(), serial.count());
        prop_assert_eq!(hist.sum().to_bits(), serial.sum().to_bits());
        // The rendered bucket lines must agree too (cumulative math is
        // computed at render time from the per-bucket cells).
        let serial_reg = Registry::new();
        let s2 = serial_reg.histogram("vals", "", &[100, 10_000, 100_000], 1.0);
        for t in 0..threads {
            for i in 0..per_thread {
                s2.observe((i.wrapping_mul(2_654_435_761).wrapping_add(t as u64)) % value_span);
            }
        }
        let threaded_render = registry.render();
        let serial_render = serial_reg.render();
        let threaded_hist_lines: Vec<&str> =
            threaded_render.lines().filter(|l| l.starts_with("vals")).collect();
        let serial_hist_lines: Vec<&str> =
            serial_render.lines().filter(|l| l.starts_with("vals")).collect();
        prop_assert_eq!(threaded_hist_lines, serial_hist_lines);
    }
}
