//! Golden-file test for the prometheus text exposition: metric names,
//! label placement, histogram bucket math (cumulative counts, `+Inf`,
//! `_sum`, `_count`) and ordering are all load-bearing for scrapers, so
//! the rendered document is pinned byte-for-byte.

use dissent_metrics::Registry;

#[test]
fn exposition_is_stable() {
    let registry = Registry::new();

    let certified = registry.counter_with(
        "dissent_rounds_total",
        "Rounds finalized by outcome.",
        &[("outcome", "certified")],
    );
    let uncertified = registry.counter_with(
        "dissent_rounds_total",
        "Rounds finalized by outcome.",
        &[("outcome", "uncertified")],
    );
    certified.add(12);
    uncertified.inc();

    let in_flight = registry.gauge("dissent_rounds_in_flight", "Pipelined rounds in flight.");
    in_flight.set(4);

    // Small bucket set so every branch of the cumulative math is visible:
    // recording unit is microseconds, rendered unit seconds (scale 1e6).
    let latency = registry.histogram_with(
        "dissent_round_phase_seconds",
        "Wall-clock time per round phase.",
        &[("phase", "commit")],
        &[1_000, 10_000, 100_000],
        1e6,
    );
    latency.observe(500); // le 0.001
    latency.observe(1_000); // le 0.001 (inclusive upper bound)
    latency.observe(2_000); // le 0.01
    latency.observe(250_000); // +Inf
    assert_eq!(latency.count(), 4);

    let expected = "\
# HELP dissent_rounds_total Rounds finalized by outcome.
# TYPE dissent_rounds_total counter
dissent_rounds_total{outcome=\"certified\"} 12
dissent_rounds_total{outcome=\"uncertified\"} 1
# HELP dissent_rounds_in_flight Pipelined rounds in flight.
# TYPE dissent_rounds_in_flight gauge
dissent_rounds_in_flight 4
# HELP dissent_round_phase_seconds Wall-clock time per round phase.
# TYPE dissent_round_phase_seconds histogram
dissent_round_phase_seconds_bucket{phase=\"commit\",le=\"0.001\"} 2
dissent_round_phase_seconds_bucket{phase=\"commit\",le=\"0.01\"} 3
dissent_round_phase_seconds_bucket{phase=\"commit\",le=\"0.1\"} 3
dissent_round_phase_seconds_bucket{phase=\"commit\",le=\"+Inf\"} 4
dissent_round_phase_seconds_sum{phase=\"commit\"} 0.2535
dissent_round_phase_seconds_count{phase=\"commit\"} 4
";
    assert_eq!(registry.render(), expected);
}

#[test]
fn label_values_are_escaped() {
    let registry = Registry::new();
    registry
        .counter_with("odd_total", "", &[("why", "a\"b\\c\nd")])
        .inc();
    assert_eq!(
        registry.render(),
        "# TYPE odd_total counter\nodd_total{why=\"a\\\"b\\\\c\\nd\"} 1\n"
    );
}
