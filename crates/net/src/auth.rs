//! Per-connection roster authentication over the framed transport.
//!
//! The verifier side (a server accepting connections) runs
//! [`RosterKeys::verifier_handshake`]: it checks the peer's hello against
//! its own protocol version and group fingerprint, issues a fresh
//! challenge nonce, and verifies the returned Schnorr proof against the
//! roster verification key of the *claimed* identity.  On success the
//! connection is bound to a [`Peer`] — and everything the connection later
//! delivers is checked against that identity, which is what finally closes
//! the spoofed-submission hole the in-engine first-write-wins ingest could
//! not (a spoofed `ClientSubmit` racing the honest one is rejected here,
//! before the round engine ever sees it).
//!
//! The prover side ([`RosterKeys::prover_handshake`]) is the mirror image,
//! run by clients (and by servers dialing other servers).

use crate::transport::{Frame, FramedConn, TransportError, PROTOCOL_VERSION};
use dissent_crypto::connauth::{self, ROLE_CLIENT, ROLE_SERVER};
use dissent_crypto::group::{Element, Group};
use dissent_crypto::schnorr::SigningKeyPair;
use dissent_metrics::{Counter, Registry};
use rand::RngCore;
use std::io::{Read, Write};

/// Handshake outcome counters for one verifier (a node accepting
/// connections).  `Default` is detached: counts but renders nowhere.
#[derive(Clone, Debug, Default)]
pub struct AuthMetrics {
    /// Handshakes that bound a connection to a roster identity.
    pub accepted: Counter,
    /// Handshakes refused (bad proof, wrong group, off-roster identity,
    /// transport failure mid-handshake).
    pub failed: Counter,
}

impl AuthMetrics {
    /// Counters registered on `registry` as
    /// `dissent_auth_handshakes_total{outcome="accepted"|"failed"}`.
    pub fn registered(registry: &Registry) -> Self {
        let name = "dissent_auth_handshakes_total";
        let help = "Verifier-side handshakes by outcome.";
        AuthMetrics {
            accepted: registry.counter_with(name, help, &[("outcome", "accepted")]),
            failed: registry.counter_with(name, help, &[("outcome", "failed")]),
        }
    }

    /// Record one verifier handshake result.
    pub fn record<T, E>(&self, result: &Result<T, E>) {
        match result {
            Ok(_) => self.accepted.inc(),
            Err(_) => self.failed.inc(),
        }
    }
}

/// The roster identity a connection authenticated as.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Peer {
    /// Client with this roster index.
    Client(u32),
    /// Server with this roster index.
    Server(u32),
}

impl Peer {
    /// The `(role, id)` pair signed into the handshake transcript.
    pub fn role_id(&self) -> (u8, u32) {
        match self {
            Peer::Client(i) => (ROLE_CLIENT, *i),
            Peer::Server(j) => (ROLE_SERVER, *j),
        }
    }
}

impl std::fmt::Display for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Peer::Client(i) => write!(f, "client {i}"),
            Peer::Server(j) => write!(f, "server {j}"),
        }
    }
}

/// Why a handshake failed.
#[derive(Debug)]
pub enum AuthError {
    /// The framed transport itself failed (socket error, malformed frame,
    /// peer hung up mid-handshake).
    Transport(TransportError),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u16,
        /// What the peer's hello declared.
        theirs: u16,
    },
    /// The peer's hello names a different group (by self-certifying
    /// fingerprint) than the one this roster serves.
    FingerprintMismatch,
    /// The hello claims a role/index that is not on the roster.
    UnknownIdentity {
        /// Claimed role byte.
        role: u8,
        /// Claimed roster index.
        id: u32,
    },
    /// The challenge proof did not verify under the claimed identity's key.
    BadProof,
    /// The verifier refused us (prover side), with its stated reason.
    Rejected(String),
    /// The peer sent a frame the handshake state machine does not expect.
    UnexpectedFrame(&'static str),
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::Transport(e) => write!(f, "transport failed during handshake: {e}"),
            AuthError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            AuthError::FingerprintMismatch => write!(f, "group fingerprint mismatch"),
            AuthError::UnknownIdentity { role, id } => {
                write!(
                    f,
                    "claimed identity (role {role}, id {id}) is not on the roster"
                )
            }
            AuthError::BadProof => write!(f, "challenge proof failed verification"),
            AuthError::Rejected(reason) => write!(f, "verifier rejected us: {reason}"),
            AuthError::UnexpectedFrame(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for AuthError {}

impl From<TransportError> for AuthError {
    fn from(e: TransportError) -> Self {
        AuthError::Transport(e)
    }
}

/// The public material a node needs to authenticate connections: the
/// session group, its self-certifying fingerprint, and the roster
/// verification keys in index order.
#[derive(Clone)]
pub struct RosterKeys {
    /// The session group signatures verify in.
    pub group: Group,
    /// `GroupConfig::group_id()` — pins the exact group definition.
    pub fingerprint: [u8; 32],
    /// Client signing public keys, roster order.
    pub client_keys: Vec<Element>,
    /// Server signing public keys, server order.
    pub server_keys: Vec<Element>,
}

impl RosterKeys {
    fn key_for(&self, role: u8, id: u32) -> Option<&Element> {
        let index = usize::try_from(id).ok()?;
        match role {
            ROLE_CLIENT => self.client_keys.get(index),
            ROLE_SERVER => self.server_keys.get(index),
            _ => None,
        }
    }

    /// Run the verifier side of the handshake on a fresh connection.
    ///
    /// On any failure an `AuthReject` naming the reason is sent
    /// (best-effort) before the error is returned, so honest-but-confused
    /// peers learn why they were refused; the caller should drop the
    /// connection either way.
    pub fn verifier_handshake<S: Read + Write, R: RngCore + ?Sized>(
        &self,
        conn: &mut FramedConn<S>,
        rng: &mut R,
    ) -> Result<Peer, AuthError> {
        let result = self.verifier_inner(conn, rng);
        if let Err(e) = &result {
            let _ = conn.send(&Frame::AuthReject {
                reason: e.to_string(),
            });
        }
        result
    }

    /// [`RosterKeys::verifier_handshake`] with the outcome recorded into
    /// `metrics`.
    pub fn verifier_handshake_metered<S: Read + Write, R: RngCore + ?Sized>(
        &self,
        conn: &mut FramedConn<S>,
        rng: &mut R,
        metrics: &AuthMetrics,
    ) -> Result<Peer, AuthError> {
        let result = self.verifier_handshake(conn, rng);
        metrics.record(&result);
        result
    }

    fn verifier_inner<S: Read + Write, R: RngCore + ?Sized>(
        &self,
        conn: &mut FramedConn<S>,
        rng: &mut R,
    ) -> Result<Peer, AuthError> {
        let (version, fingerprint, role, id) = match conn.recv()? {
            Some(Frame::Hello {
                version,
                fingerprint,
                role,
                id,
            }) => (version, fingerprint, role, id),
            Some(_) => return Err(AuthError::UnexpectedFrame("expected Hello")),
            None => return Err(AuthError::Transport(TransportError::Truncated)),
        };
        if version != PROTOCOL_VERSION {
            return Err(AuthError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        if !dissent_crypto::xor::ct_eq(&fingerprint, &self.fingerprint) {
            return Err(AuthError::FingerprintMismatch);
        }
        let Some(public) = self.key_for(role, id) else {
            return Err(AuthError::UnknownIdentity { role, id });
        };
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        conn.send(&Frame::Challenge { nonce })?;
        let signature = match conn.recv()? {
            Some(Frame::AuthProof { signature }) => signature,
            Some(_) => return Err(AuthError::UnexpectedFrame("expected AuthProof")),
            None => return Err(AuthError::Transport(TransportError::Truncated)),
        };
        let sig = connauth::signature_from_bytes(&self.group, &signature)
            .map_err(|_| AuthError::BadProof)?;
        if !connauth::verify(
            &self.group,
            public,
            &self.fingerprint,
            &nonce,
            role,
            id,
            &sig,
        ) {
            return Err(AuthError::BadProof);
        }
        conn.send(&Frame::AuthOk)?;
        Ok(match role {
            ROLE_CLIENT => Peer::Client(id),
            _ => Peer::Server(id),
        })
    }

    /// Run the prover side: claim `peer` and prove it with `key` (which
    /// must be the claimed roster member's signing keypair).
    pub fn prover_handshake<S: Read + Write, R: RngCore + ?Sized>(
        &self,
        conn: &mut FramedConn<S>,
        peer: Peer,
        key: &SigningKeyPair,
        rng: &mut R,
    ) -> Result<(), AuthError> {
        let (role, id) = peer.role_id();
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: self.fingerprint,
            role,
            id,
        })?;
        let nonce = match conn.recv()? {
            Some(Frame::Challenge { nonce }) => nonce,
            Some(Frame::AuthReject { reason }) => return Err(AuthError::Rejected(reason)),
            Some(_) => return Err(AuthError::UnexpectedFrame("expected Challenge")),
            None => return Err(AuthError::Transport(TransportError::Truncated)),
        };
        let sig = connauth::prove(&self.group, key, &self.fingerprint, &nonce, role, id, rng);
        conn.send(&Frame::AuthProof {
            signature: connauth::signature_to_bytes(&self.group, &sig),
        })?;
        match conn.recv()? {
            Some(Frame::AuthOk) => Ok(()),
            Some(Frame::AuthReject { reason }) => Err(AuthError::Rejected(reason)),
            Some(_) => Err(AuthError::UnexpectedFrame("expected AuthOk")),
            None => Err(AuthError::Transport(TransportError::Truncated)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roster(seed: u64) -> (RosterKeys, Vec<SigningKeyPair>, Vec<SigningKeyPair>) {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let clients: Vec<SigningKeyPair> = (0..3)
            .map(|_| SigningKeyPair::generate(&group, &mut rng))
            .collect();
        let servers: Vec<SigningKeyPair> = (0..2)
            .map(|_| SigningKeyPair::generate(&group, &mut rng))
            .collect();
        let keys = RosterKeys {
            group,
            fingerprint: [0xD1; 32],
            client_keys: clients.iter().map(|k| k.public().clone()).collect(),
            server_keys: servers.iter().map(|k| k.public().clone()).collect(),
        };
        (keys, clients, servers)
    }

    /// Run prover and verifier over a real localhost socket pair.
    fn run_handshake(
        keys: &RosterKeys,
        prover_keys: &RosterKeys,
        peer: Peer,
        key: &SigningKeyPair,
    ) -> (Result<Peer, AuthError>, Result<(), AuthError>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let prover_keys = prover_keys.clone();
        let key = key.clone();
        let prover = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut conn = FramedConn::new(stream);
            let mut rng = StdRng::seed_from_u64(7);
            prover_keys.prover_handshake(&mut conn, peer, &key, &mut rng)
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FramedConn::new(stream);
        let mut rng = StdRng::seed_from_u64(9);
        let verdict = keys.verifier_handshake(&mut conn, &mut rng);
        (verdict, prover.join().unwrap())
    }

    #[test]
    fn honest_client_and_server_handshakes_succeed() {
        let (keys, clients, servers) = roster(1);
        let (v, p) = run_handshake(&keys, &keys, Peer::Client(2), &clients[2]);
        assert_eq!(v.unwrap(), Peer::Client(2));
        p.unwrap();
        let (v, p) = run_handshake(&keys, &keys, Peer::Server(1), &servers[1]);
        assert_eq!(v.unwrap(), Peer::Server(1));
        p.unwrap();
    }

    #[test]
    fn claiming_anothers_identity_fails() {
        // Client 1's key cannot prove client 0's identity: the transcript
        // binds the claimed id, and the verifier checks against the claimed
        // id's roster key.
        let (keys, clients, _) = roster(2);
        let (v, p) = run_handshake(&keys, &keys, Peer::Client(0), &clients[1]);
        assert!(matches!(v, Err(AuthError::BadProof)));
        assert!(matches!(p, Err(AuthError::Rejected(_))));
    }

    #[test]
    fn fingerprint_mismatch_is_refused_before_any_challenge() {
        let (keys, clients, _) = roster(3);
        let mut other = keys.clone();
        other.fingerprint = [0x00; 32];
        let (v, p) = run_handshake(&keys, &other, Peer::Client(0), &clients[0]);
        assert!(matches!(v, Err(AuthError::FingerprintMismatch)));
        assert!(matches!(p, Err(AuthError::Rejected(_))));
    }

    #[test]
    fn off_roster_identity_is_refused() {
        let (keys, clients, _) = roster(4);
        let (v, p) = run_handshake(&keys, &keys, Peer::Client(99), &clients[0]);
        assert!(matches!(v, Err(AuthError::UnknownIdentity { id: 99, .. })));
        assert!(matches!(p, Err(AuthError::Rejected(_))));
    }
}
