//! # dissent-net
//!
//! Network substrate for the Dissent reproduction: a discrete-event
//! simulator plus the link, topology, churn, trace and computation-cost
//! models that stand in for the paper's DeterLab, PlanetLab, Emulab and EC2
//! testbeds (see DESIGN.md for the substitution rationale).
//!
//! * [`sim`] — virtual clock, event queue, summary statistics.
//! * [`link`] — latency/bandwidth/jitter link model.
//! * [`topology`] — testbed presets matching §5 of the paper.
//! * [`churn`] — per-round client online/offline and straggler behaviour.
//! * [`policy`] — the §5.1 submission-window closure policies; the driver
//!   routes its window-closure events through them.
//! * [`trace`] — synthetic PlanetLab-style submission traces (Figure 6).
//! * [`costmodel`] — virtual-time costs of the cryptographic operations.
//! * [`driver`] — the event-driven pipelined round driver (§3.6 / Figure 8):
//!   protocol messages scheduled through the event queue with per-link
//!   latency/bandwidth, churn, and a configurable pipeline window.
//! * [`federation`] — Maglev-hashed client-to-group placement and the
//!   federated multi-group driver: G groups on one shared virtual clock
//!   with domain-separated per-group seeds.
//!
//! Alongside the simulation substrate, this crate carries the *real*
//! transport the node binaries speak:
//!
//! * [`transport`] — the blocking length-prefixed frame protocol over any
//!   byte stream (TCP in production, in-memory pairs in tests).
//! * [`auth`] — the Schnorr challenge–response handshake binding each
//!   connection to a roster identity before protocol frames may flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod churn;
pub mod costmodel;
pub mod driver;
pub mod federation;
pub mod link;
pub mod policy;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod transport;

pub use auth::{AuthError, AuthMetrics, Peer, RosterKeys};
pub use churn::{ChurnModel, ClientBehavior};
pub use costmodel::CostModel;
pub use driver::{SimConfig, SimDriver, SimMetrics, SimReport, WireSizes};
pub use federation::{
    group_seed, group_seed_material, FederatedSimConfig, FederatedSimDriver, FederatedSimReport,
    MaglevTable, MAGLEV_SLOTS,
};
pub use link::Link;
pub use policy::{WindowOutcome, WindowPolicy};
pub use sim::{EventQueue, SimTime, Stats, MILLISECOND, SECOND};
pub use topology::Topology;
pub use trace::{SubmissionTrace, TraceConfig, TraceRound};
pub use transport::{
    Frame, FramedConn, TransportError, TransportMetrics, MAX_FRAME, PROTOCOL_VERSION,
};
