//! Client churn and straggler models.
//!
//! "On public networks, distributed systems must cope with slow and
//! unreliable machines" (§5.1).  The paper's PlanetLab deployment saw
//! clients joining, leaving, and delivering ciphertexts with heavy-tailed
//! delays; the submission-window policies of Figure 6 exist precisely to
//! insulate the group from those stragglers.  This module models per-round
//! client behaviour: whether a client is online, and how long after the
//! round opens it manages to deliver its ciphertext.

use crate::sim::{SimTime, SECOND};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What one client does in one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientBehavior {
    /// The client submits its ciphertext `delay` after the round opens.
    Submits {
        /// Delay from round start to the server receiving the ciphertext.
        delay: SimTime,
    },
    /// The client is offline (or disconnects before submitting).
    Offline,
}

impl ClientBehavior {
    /// The submission delay, if any.
    pub fn delay(&self) -> Option<SimTime> {
        match self {
            ClientBehavior::Submits { delay } => Some(*delay),
            ClientBehavior::Offline => None,
        }
    }
}

/// A churn/straggler model for a client population.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Probability a client is offline in a given round.
    pub offline_prob: f64,
    /// Median submission delay in seconds (log-normal body).
    pub median_delay_s: f64,
    /// Log-normal sigma controlling the spread of the delay body.
    pub sigma: f64,
    /// Probability a submitting client is a heavy straggler.
    pub straggler_prob: f64,
    /// Pareto scale (seconds) for straggler delays.
    pub straggler_scale_s: f64,
    /// Pareto shape for straggler delays (smaller = heavier tail).
    pub straggler_shape: f64,
    /// Hard cap on any delay, mirroring a client that eventually gives up.
    pub max_delay_s: f64,
}

impl ChurnModel {
    /// An idealized reliable LAN population: everyone submits quickly.
    pub fn reliable_lan() -> Self {
        ChurnModel {
            offline_prob: 0.0,
            median_delay_s: 0.15,
            sigma: 0.25,
            straggler_prob: 0.0,
            straggler_scale_s: 1.0,
            straggler_shape: 2.0,
            max_delay_s: 5.0,
        }
    }

    /// The DeterLab population of §5.2: controlled testbed, negligible churn,
    /// modest spread from client-side processing.
    pub fn deterlab() -> Self {
        ChurnModel {
            offline_prob: 0.002,
            median_delay_s: 0.25,
            sigma: 0.35,
            straggler_prob: 0.01,
            straggler_scale_s: 1.0,
            straggler_shape: 2.5,
            max_delay_s: 30.0,
        }
    }

    /// The PlanetLab population of §5.1: noticeable churn and a heavy
    /// straggler tail reaching the 120-second hard deadline.
    pub fn planetlab() -> Self {
        ChurnModel {
            offline_prob: 0.03,
            median_delay_s: 0.9,
            sigma: 0.7,
            straggler_prob: 0.05,
            straggler_scale_s: 4.0,
            straggler_shape: 1.3,
            max_delay_s: 150.0,
        }
    }

    /// Sample one client's behaviour for one round.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ClientBehavior {
        if rng.gen_bool(self.offline_prob.clamp(0.0, 1.0)) {
            return ClientBehavior::Offline;
        }
        let delay_s = if rng.gen_bool(self.straggler_prob.clamp(0.0, 1.0)) {
            // Pareto tail: scale / U^(1/shape).
            let u: f64 = rng.gen_range(1e-9..1.0);
            self.straggler_scale_s / u.powf(1.0 / self.straggler_shape)
        } else {
            // Log-normal body around the median.
            let z = standard_normal(rng);
            self.median_delay_s * (self.sigma * z).exp()
        };
        let delay_s = delay_s.min(self.max_delay_s).max(0.0);
        ClientBehavior::Submits {
            delay: (delay_s * SECOND as f64) as SimTime,
        }
    }

    /// Sample behaviour for a whole population.
    pub fn sample_population<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<ClientBehavior> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// An adversarial variant: `fraction` of clients are taken offline
    /// (the DoS scenario of §3.7 where an attacker tries to shrink the
    /// anonymity set just before a sensitive post).
    pub fn with_dos_fraction(mut self, fraction: f64) -> Self {
        self.offline_prob = (self.offline_prob + fraction).clamp(0.0, 1.0);
        self
    }
}

/// Box–Muller standard normal sample.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::to_secs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reliable_lan_everyone_submits_fast() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ChurnModel::reliable_lan();
        let pop = model.sample_population(&mut rng, 500);
        assert!(pop.iter().all(|b| b.delay().is_some()));
        let mean = pop
            .iter()
            .filter_map(|b| b.delay())
            .map(to_secs)
            .sum::<f64>()
            / 500.0;
        assert!(mean < 0.5, "mean = {mean}");
    }

    #[test]
    fn planetlab_has_offline_clients_and_stragglers() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = ChurnModel::planetlab();
        let pop = model.sample_population(&mut rng, 5000);
        let offline = pop.iter().filter(|b| b.delay().is_none()).count();
        assert!(offline > 50 && offline < 500, "offline = {offline}");
        let delays: Vec<f64> = pop.iter().filter_map(|b| b.delay()).map(to_secs).collect();
        let over_30s = delays.iter().filter(|&&d| d > 30.0).count();
        assert!(over_30s > 10, "stragglers over 30 s: {over_30s}");
        // Median stays moderate even though the tail is heavy.
        let mut sorted = delays.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(median < 3.0, "median = {median}");
    }

    #[test]
    fn delays_respect_hard_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = ChurnModel {
            max_delay_s: 2.0,
            ..ChurnModel::planetlab()
        };
        for _ in 0..2000 {
            if let Some(d) = model.sample(&mut rng).delay() {
                assert!(to_secs(d) <= 2.0 + 1e-9);
            }
        }
    }

    #[test]
    fn dos_fraction_takes_clients_offline() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = ChurnModel::reliable_lan().with_dos_fraction(0.5);
        let pop = model.sample_population(&mut rng, 2000);
        let offline = pop.iter().filter(|b| b.delay().is_none()).count();
        assert!(offline > 800 && offline < 1200, "offline = {offline}");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ChurnModel::planetlab();
        let a = model.sample_population(&mut StdRng::seed_from_u64(7), 100);
        let b = model.sample_population(&mut StdRng::seed_from_u64(7), 100);
        assert_eq!(a, b);
    }
}
