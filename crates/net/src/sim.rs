//! A small discrete-event simulation core.
//!
//! The paper evaluated Dissent on DeterLab, PlanetLab, Emulab and EC2.  None
//! of those testbeds is available to this reproduction, so protocol timing is
//! measured on a virtual clock instead: every network transfer and every
//! modelled computation schedules an event, and the simulator advances time
//! to the next event.  The protocol logic itself (ciphertexts, shuffles,
//! blame) still runs for real; only *time* is simulated.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// One microsecond expressed in [`SimTime`] units.
pub const MICROSECOND: SimTime = 1;
/// One millisecond in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1_000;
/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000;

/// Convert a [`SimTime`] to floating-point seconds (for reporting).
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}

/// Convert floating-point seconds to [`SimTime`].
pub fn from_secs(s: f64) -> SimTime {
    (s * SECOND as f64).round().max(0.0) as SimTime
}

/// A time-ordered event queue carrying events of type `T`.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which keeps simulations deterministic.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `item` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, item: T) {
        self.schedule_at(self.now.saturating_add(delay), item);
    }

    /// Schedule `item` at an absolute virtual time (clamped to `now`).
    pub fn schedule_at(&mut self, time: SimTime, item: T) {
        let time = time.max(self.now);
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            item,
        }));
        self.seq += 1;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.time;
            (e.time, e.item)
        })
    }

    /// Peek at the timestamp of the next event without advancing time.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Accumulates simple summary statistics over simulated measurements.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    samples: Vec<f64>,
}

impl Stats {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on the sorted samples.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical CDF as (value, cumulative fraction) pairs over the sorted samples.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn schedule_is_relative_to_current_time() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    fn schedule_at_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        q.schedule_at(50, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn time_conversions() {
        assert_eq!(from_secs(1.5), 1_500_000);
        assert!((to_secs(2_500_000) - 2.5).abs() < 1e-9);
        assert_eq!(from_secs(-1.0), 0);
    }

    #[test]
    fn stats_summaries() {
        let mut s = Stats::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        let cdf = s.cdf();
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = Stats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.cdf().is_empty());
    }
}
