//! Submission-window closure policies (§5.1).
//!
//! "Dissent's servers prevent slow nodes from impeding the protocol's
//! overall progress by imposing a ciphertext submission window."  The
//! evaluation compares a baseline policy (wait for everyone or a 120-second
//! hard deadline) against early-cutoff policies that close the window once
//! 95 % of clients have submitted, multiplied by a constant factor (1.1×,
//! 1.2×, 2×).
//!
//! The policy lives here in `dissent-net` so the event-driven
//! [`driver`](crate::driver) can route its window-closure events through
//! the same code the analytic studies use; `dissent-core::policy`
//! re-exports these types (together with the §3.7 α-threshold helpers that
//! remain there) for the higher layers.

use crate::sim::{SimTime, SECOND};
use serde::{Deserialize, Serialize};

/// A window-closure policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Wait until every expected client submits, or the hard deadline.
    WaitAll {
        /// Hard deadline after which the window closes regardless.
        hard_deadline: SimTime,
    },
    /// Close once `fraction` of the expected clients have submitted,
    /// multiplied by `multiplier` (the paper's 95 %-then-1.1×/1.2×/2×
    /// policies), bounded by the hard deadline.
    FractionThenMultiplier {
        /// Fraction of expected clients to wait for (e.g. 0.95).
        fraction: f64,
        /// Multiplicative slack applied to the elapsed time at that point.
        multiplier: f64,
        /// Hard deadline after which the window closes regardless.
        hard_deadline: SimTime,
    },
    /// A fixed window length (the 120-second static window used while
    /// collecting the paper's PlanetLab trace).
    Fixed {
        /// Window length.
        window: SimTime,
    },
}

impl Default for WindowPolicy {
    fn default() -> Self {
        // The policy the paper selected for its evaluation (§5.1).
        WindowPolicy::FractionThenMultiplier {
            fraction: 0.95,
            multiplier: 1.1,
            hard_deadline: 120 * SECOND,
        }
    }
}

/// The outcome of applying a window policy to one round's submission delays.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// When (relative to round start) the submission window closed.
    pub close_time: SimTime,
    /// How many of the expected clients made it into the window.
    pub included: usize,
    /// How many submitted eventually but after the window closed.
    pub missed: usize,
    /// Whether the hard deadline forced the closure.
    pub hit_hard_deadline: bool,
}

impl WindowPolicy {
    /// The hard deadline of the policy, if it has one.
    pub fn hard_deadline(&self) -> Option<SimTime> {
        match self {
            WindowPolicy::WaitAll { hard_deadline }
            | WindowPolicy::FractionThenMultiplier { hard_deadline, .. } => Some(*hard_deadline),
            WindowPolicy::Fixed { .. } => None,
        }
    }

    /// How many of `expected` submissions must arrive before the policy
    /// takes its closing action (closing outright for [`WindowPolicy::WaitAll`],
    /// arming the multiplier timer for
    /// [`WindowPolicy::FractionThenMultiplier`]).  `None` for
    /// [`WindowPolicy::Fixed`], whose closure is purely time-driven.
    pub fn arrival_target(&self, expected: usize) -> Option<usize> {
        match *self {
            WindowPolicy::Fixed { .. } => None,
            WindowPolicy::WaitAll { .. } => Some(expected),
            WindowPolicy::FractionThenMultiplier { fraction, .. } => {
                Some((((expected as f64) * fraction).ceil() as usize).clamp(1, expected.max(1)))
            }
        }
    }

    /// Apply the policy to one round.
    ///
    /// * `delays` — submission delays (relative to round start) of the
    ///   clients that would eventually submit; offline clients are simply
    ///   absent from the slice.
    /// * `expected` — the number of clients the servers expect (the roster
    ///   size, or the previous participation count).
    pub fn apply(&self, delays: &[SimTime], expected: usize) -> WindowOutcome {
        let mut sorted: Vec<SimTime> = delays.to_vec();
        sorted.sort_unstable();
        let (close_time, hit_hard_deadline) = match *self {
            WindowPolicy::Fixed { window } => (window, false),
            WindowPolicy::WaitAll { hard_deadline } => match sorted.last() {
                Some(&last) if last <= hard_deadline && sorted.len() >= expected => (last, false),
                _ => (hard_deadline, true),
            },
            WindowPolicy::FractionThenMultiplier {
                fraction,
                multiplier,
                hard_deadline,
            } => {
                let needed = ((expected as f64) * fraction).ceil() as usize;
                if needed == 0 {
                    (0, false)
                } else if sorted.len() >= needed {
                    let t95 = sorted[needed - 1];
                    let close = ((t95 as f64) * multiplier) as SimTime;
                    if close >= hard_deadline {
                        (hard_deadline, true)
                    } else {
                        (close, false)
                    }
                } else {
                    // Not enough clients ever submit: the hard deadline fires.
                    (hard_deadline, true)
                }
            }
        };
        let included = sorted.iter().filter(|&&d| d <= close_time).count();
        let missed = sorted.len().saturating_sub(included);
        WindowOutcome {
            close_time,
            included,
            missed,
            hit_hard_deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(xs: &[f64]) -> Vec<SimTime> {
        xs.iter().map(|&x| (x * SECOND as f64) as SimTime).collect()
    }

    #[test]
    fn fixed_window_includes_only_early_clients() {
        let policy = WindowPolicy::Fixed { window: 2 * SECOND };
        let outcome = policy.apply(&secs(&[0.5, 1.0, 1.9, 2.5, 30.0]), 5);
        assert_eq!(outcome.close_time, 2 * SECOND);
        assert_eq!(outcome.included, 3);
        assert_eq!(outcome.missed, 2);
    }

    #[test]
    fn wait_all_waits_for_stragglers() {
        let policy = WindowPolicy::WaitAll {
            hard_deadline: 120 * SECOND,
        };
        let outcome = policy.apply(&secs(&[0.5, 1.0, 45.0]), 3);
        assert_eq!(outcome.close_time, 45 * SECOND);
        assert_eq!(outcome.included, 3);
        assert!(!outcome.hit_hard_deadline);
    }

    #[test]
    fn wait_all_hits_hard_deadline_when_a_client_never_submits() {
        let policy = WindowPolicy::WaitAll {
            hard_deadline: 120 * SECOND,
        };
        // Only 2 of 3 expected clients ever submit.
        let outcome = policy.apply(&secs(&[0.5, 1.0]), 3);
        assert_eq!(outcome.close_time, 120 * SECOND);
        assert!(outcome.hit_hard_deadline);
        assert_eq!(outcome.included, 2);
    }

    #[test]
    fn fraction_policy_cuts_off_stragglers() {
        let policy = WindowPolicy::FractionThenMultiplier {
            fraction: 0.95,
            multiplier: 1.1,
            hard_deadline: 120 * SECOND,
        };
        // 100 clients: 95 submit within 2 s, 5 stragglers at 60–100 s.
        let mut delays: Vec<f64> = (0..95).map(|i| 0.5 + i as f64 * 0.015).collect();
        delays.extend([60.0, 70.0, 80.0, 90.0, 100.0]);
        let outcome = policy.apply(&secs(&delays), 100);
        // The 95th client arrived at ~1.91 s, so the window closes at ~2.1 s,
        // an order of magnitude before the stragglers.
        assert!(outcome.close_time < 3 * SECOND);
        assert_eq!(outcome.included, 95);
        assert_eq!(outcome.missed, 5);
        assert!(!outcome.hit_hard_deadline);
    }

    #[test]
    fn larger_multiplier_admits_more_clients() {
        let delays = secs(&[
            1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.05, 1.3, 1.9, 5.0,
        ]);
        let outcome = |mult: f64| {
            WindowPolicy::FractionThenMultiplier {
                fraction: 0.7,
                multiplier: mult,
                hard_deadline: 120 * SECOND,
            }
            .apply(&delays, 13)
        };
        assert!(outcome(2.0).included >= outcome(1.2).included);
        assert!(outcome(1.2).included >= outcome(1.1).included);
    }

    #[test]
    fn fraction_policy_falls_back_to_hard_deadline() {
        let policy = WindowPolicy::FractionThenMultiplier {
            fraction: 0.95,
            multiplier: 1.1,
            hard_deadline: 10 * SECOND,
        };
        // Only half the expected clients ever submit.
        let outcome = policy.apply(&secs(&[1.0, 2.0]), 4);
        assert!(outcome.hit_hard_deadline);
        assert_eq!(outcome.close_time, 10 * SECOND);
    }

    #[test]
    fn arrival_target_matches_apply_semantics() {
        assert_eq!(WindowPolicy::default().arrival_target(100), Some(95));
        assert_eq!(WindowPolicy::default().arrival_target(101), Some(96));
        assert_eq!(WindowPolicy::default().arrival_target(0), Some(1));
        assert_eq!(
            WindowPolicy::WaitAll {
                hard_deadline: SECOND
            }
            .arrival_target(7),
            Some(7)
        );
        assert_eq!(
            WindowPolicy::Fixed { window: SECOND }.arrival_target(7),
            None
        );
    }

    #[test]
    fn default_policy_matches_paper() {
        match WindowPolicy::default() {
            WindowPolicy::FractionThenMultiplier {
                fraction,
                multiplier,
                hard_deadline,
            } => {
                assert!((fraction - 0.95).abs() < 1e-9);
                assert!((multiplier - 1.1).abs() < 1e-9);
                assert_eq!(hard_deadline, 120 * SECOND);
            }
            _ => panic!("unexpected default policy"),
        }
    }
}
