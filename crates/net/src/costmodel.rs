//! Computation-cost model.
//!
//! The figures in the paper mix network time with cryptographic computation
//! time (pad expansion, XOR accumulation, signatures, and — dominating the
//! full-protocol runs of Figure 9 — the verifiable shuffles).  Running the
//! real 2048-bit cryptography for a simulated 5,000-client group would take
//! hours of wall-clock time for no extra fidelity, so large-scale experiment
//! harnesses instead charge virtual time according to this model.  The
//! defaults approximate a c. 2012 server core (the paper's testbeds); the
//! `dissent-bench` crate can re-calibrate them against the real primitives
//! in this repository (see `experiments -- calibrate`).
//!
//! Unit tests exercise the *relative* behaviour the evaluation depends on:
//! client cost scales with the number of servers M, server cost with the
//! number of clients N, and shuffle cost dominates DC-net rounds.

use crate::sim::SimTime;
use serde::{Deserialize, Serialize};

/// Cost model for cryptographic computation, in virtual microseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one modular exponentiation in the session group (µs).
    pub modexp_us: f64,
    /// PRNG/XOR streaming throughput in bytes per microsecond.
    pub stream_bytes_per_us: f64,
    /// SHA-256 throughput in bytes per microsecond.
    pub hash_bytes_per_us: f64,
    /// Fixed per-message signing cost (µs) — one exponentiation plus hashing.
    pub sign_us: f64,
    /// Fixed per-message verification cost (µs) — two exponentiations.
    pub verify_us: f64,
    /// Number of exponentiations a server spends per ciphertext during a key
    /// shuffle pass (re-randomize + decrypt + DLEQ proof).
    pub shuffle_exps_per_entry: f64,
    /// Multiplier for the general message shuffle relative to the key
    /// shuffle (message embedding, larger elements, proof verification by
    /// every server).
    pub message_shuffle_factor: f64,
    /// Degree of parallelism available to a server for pad expansion (the
    /// paper assumes servers "are provisioned with enough computing capacity").
    pub server_parallelism: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // ~1.2 ms per 2048-bit exponentiation on 2012-era hardware.
            modexp_us: 1200.0,
            // ~400 MB/s ChaCha/AES keystream + XOR.
            stream_bytes_per_us: 400.0,
            // ~500 MB/s SHA-256.
            hash_bytes_per_us: 500.0,
            sign_us: 1300.0,
            verify_us: 2500.0,
            shuffle_exps_per_entry: 7.0,
            message_shuffle_factor: 6.0,
            server_parallelism: 8.0,
        }
    }
}

impl CostModel {
    /// A model scaled for a different exponentiation cost (e.g. measured by
    /// calibration against the real `dissent-crypto` primitives).
    pub fn with_modexp_us(mut self, modexp_us: f64) -> Self {
        let scale = modexp_us / self.modexp_us;
        self.modexp_us = modexp_us;
        self.sign_us *= scale;
        self.verify_us *= scale;
        self
    }

    /// Time to expand and XOR `bytes` of pad material for one shared secret.
    pub fn stream_time(&self, bytes: usize) -> SimTime {
        (bytes as f64 / self.stream_bytes_per_us).ceil() as SimTime
    }

    /// Time to hash `bytes`.
    pub fn hash_time(&self, bytes: usize) -> SimTime {
        (bytes as f64 / self.hash_bytes_per_us).ceil() as SimTime
    }

    /// Client computation per round: M pad expansions over the cleartext
    /// length plus signing its ciphertext and verifying the servers'
    /// signature set (O(M) verifications reduced to a constant few by the
    /// optimization of §3.5; we charge one).
    pub fn client_round_compute(&self, total_len: usize, num_servers: usize) -> SimTime {
        let pads = num_servers as f64 * self.stream_time(total_len) as f64;
        (pads + self.sign_us + self.verify_us) as SimTime
    }

    /// Server computation per round: one pad expansion per participating
    /// client (parallelizable), XOR of received ciphertexts, a hash
    /// commitment, plus signing and verifying the other servers' signatures.
    pub fn server_round_compute(
        &self,
        total_len: usize,
        participating_clients: usize,
        own_clients: usize,
        num_servers: usize,
    ) -> SimTime {
        let pads = participating_clients as f64 * self.stream_time(total_len) as f64
            / self.server_parallelism;
        let xor = own_clients as f64 * (total_len as f64 / self.stream_bytes_per_us);
        let commit = self.hash_time(total_len) as f64;
        let sigs = self.sign_us + (num_servers.saturating_sub(1)) as f64 * self.verify_us;
        (pads + xor + commit + sigs) as SimTime
    }

    /// One server's computation for its pass of a key shuffle over
    /// `entries` ciphertexts.
    pub fn key_shuffle_pass(&self, entries: usize) -> SimTime {
        (entries as f64 * self.shuffle_exps_per_entry * self.modexp_us) as SimTime
    }

    /// One server's computation for its pass of a general message
    /// (accusation) shuffle over `entries` ciphertexts.
    pub fn message_shuffle_pass(&self, entries: usize) -> SimTime {
        (self.key_shuffle_pass(entries) as f64 * self.message_shuffle_factor) as SimTime
    }

    /// Blame evaluation cost: every server recomputes one pad bit per
    /// participating client and verifies the revealed bits.
    pub fn blame_evaluation(&self, participating_clients: usize, num_servers: usize) -> SimTime {
        // One PRNG block per client pad bit per server, plus signature checks.
        let per_server = participating_clients as f64 * 0.5 + self.verify_us;
        (num_servers as f64 * per_server) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_cost_scales_with_servers_not_clients() {
        let m = CostModel::default();
        let few_servers = m.client_round_compute(10_000_000, 4);
        let many_servers = m.client_round_compute(10_000_000, 32);
        assert!(many_servers > few_servers * 4);
        // Client cost is independent of the number of other clients by
        // construction — the function does not even take that parameter.
    }

    #[test]
    fn server_cost_scales_with_clients() {
        let m = CostModel::default();
        let small = m.server_round_compute(1_000_000, 100, 10, 8);
        let large = m.server_round_compute(1_000_000, 1000, 100, 8);
        assert!(large > small * 5);
    }

    #[test]
    fn shuffle_dominates_dcnet_round() {
        // Figure 9's key observation: the DC-net exchange is negligible
        // compared with the shuffles.
        let m = CostModel::default();
        let dcnet = m.server_round_compute(1000 * 200, 1000, 42, 24);
        let shuffle = m.key_shuffle_pass(1000);
        assert!(shuffle > dcnet, "shuffle {shuffle} vs dcnet {dcnet}");
    }

    #[test]
    fn message_shuffle_slower_than_key_shuffle() {
        let m = CostModel::default();
        assert!(m.message_shuffle_pass(500) > 3 * m.key_shuffle_pass(500));
    }

    #[test]
    fn calibration_rescales_signatures() {
        let m = CostModel::default().with_modexp_us(2400.0);
        assert!((m.sign_us - 2600.0).abs() < 1.0);
        assert!((m.verify_us - 5000.0).abs() < 1.0);
    }

    #[test]
    fn stream_and_hash_times_are_monotone() {
        let m = CostModel::default();
        assert!(m.stream_time(1_000_000) > m.stream_time(1_000));
        assert!(m.hash_time(1_000_000) > m.hash_time(1_000));
        assert!(m.stream_time(0) <= 1);
    }

    #[test]
    fn blame_evaluation_scales_with_population() {
        let m = CostModel::default();
        assert!(m.blame_evaluation(5000, 24) > m.blame_evaluation(100, 24));
        assert!(m.blame_evaluation(1000, 32) > m.blame_evaluation(1000, 4));
    }
}
