//! Federated multi-group sharding: Maglev-hashed client placement and the
//! many-group simulation driver.
//!
//! One DC-net group tops out at a few thousand clients (§7 stops at 5,000
//! on DeterLab): every client's anonymity set is the whole group, but so is
//! every server's per-round work.  To scale toward millions of users the
//! federation layer shards clients across G independent groups, trading
//! anonymity-set size (now one group, not the whole population) for
//! aggregate throughput (G groups run their pipelines concurrently).
//!
//! Placement uses a Maglev-style consistent-hash lookup table
//! ([`MaglevTable`]): each group owns a deterministic permutation of the
//! slot space derived from its label, slots are filled round-robin so load
//! stays within one slot of uniform, and removing a group reassigns *only*
//! that group's slots — surviving groups keep every client they had, so a
//! group failure never reshuffles unaffected anonymity sets.
//!
//! [`FederatedSimDriver`] drives G per-group simulations off one shared
//! [`EventQueue`] — a single virtual clock, per-group topologies and churn,
//! and per-group RNG streams domain-separated from a base seed (see
//! [`group_seed`]) so multi-group runs are reproducible and no two groups
//! share an entity stream.

use crate::driver::{GroupSim, SimConfig, SimMetrics, SimReport};
use crate::sim::{to_secs, EventQueue, SimTime, Stats};
use dissent_crypto::sha256::sha256_tagged;
use dissent_metrics::Registry;

/// Default Maglev table size: prime, and large enough that round-robin fill
/// keeps per-group load within 1 % of uniform for any practical group count.
pub const MAGLEV_SLOTS: usize = 65_537;

/// Derive the 32-byte seed material for group `group_id` from a federation
/// base seed by hash domain separation (seed ‖ group-id).  Two groups of the
/// same federation never share PRNG key material, and the same (seed, id)
/// pair always derives the same stream — multi-group runs stay reproducible.
pub fn group_seed_material(seed: u64, group_id: u64) -> [u8; 32] {
    sha256_tagged(&[
        b"dissent-federation-group-seed",
        &seed.to_be_bytes(),
        &group_id.to_be_bytes(),
    ])
}

/// [`group_seed_material`] truncated to a `u64` for seeding `StdRng`-style
/// simulation RNGs.
pub fn group_seed(seed: u64, group_id: u64) -> u64 {
    let material = group_seed_material(seed, group_id);
    u64::from_be_bytes(material[..8].try_into().expect("sha256 yields 32 bytes"))
}

/// A Maglev-style consistent-hash lookup table mapping client ids to
/// groups.
///
/// Each group hashes its label to an `(offset, skip)` pair defining a
/// permutation of the (prime-sized) slot space; groups claim slots
/// round-robin along their permutations, so every group ends up with
/// ⌊S/G⌋ or ⌈S/G⌉ slots.  A client id hashes to a slot; the slot names the
/// group.  [`MaglevTable::remove_group`] refills only the removed group's
/// slots by continuing the survivors' permutation walks — every surviving
/// assignment is untouched (strict minimal disruption, pinned by test).
#[derive(Clone, Debug)]
pub struct MaglevTable {
    labels: Vec<String>,
    table: Vec<usize>,
    /// Per-group permutation walk positions for the fill in progress
    /// (reset at the start of every fill/refill pass).
    next: Vec<usize>,
}

impl MaglevTable {
    /// Build the table for `labels` over `slots` slots.  `slots` must be
    /// prime (so every `skip` is coprime to it and each permutation covers
    /// the whole table); [`MAGLEV_SLOTS`] is the default, and small primes
    /// keep tests fast.  Panics if `labels` is empty, contains duplicates,
    /// or `slots < labels.len()`.
    pub fn new(labels: &[String], slots: usize) -> Self {
        assert!(!labels.is_empty(), "federation needs at least one group");
        assert!(slots >= labels.len(), "more groups than slots");
        for (i, a) in labels.iter().enumerate() {
            assert!(
                !labels[..i].contains(a),
                "duplicate group label {a:?} in Maglev table"
            );
        }
        let mut table = MaglevTable {
            labels: labels.to_vec(),
            table: Vec::new(),
            next: vec![0; labels.len()],
        };
        table.fill_sized(slots);
        table
    }

    /// Populate every slot from scratch (initial build and group addition).
    fn fill_sized(&mut self, slots: usize) {
        self.table = vec![usize::MAX; slots];
        self.next = vec![0; self.labels.len()];
        let mut remaining = slots;
        while remaining > 0 {
            for g in 0..self.labels.len() {
                if remaining == 0 {
                    break;
                }
                if self.claim_next(g) {
                    remaining -= 1;
                }
            }
        }
    }

    /// Advance group `g`'s permutation walk to its next unclaimed slot and
    /// claim it.  Returns false if the walk is exhausted (the group already
    /// visited every slot).
    fn claim_next(&mut self, g: usize) -> bool {
        let slots = self.table.len();
        let (offset, skip) = {
            let h = sha256_tagged(&[b"dissent-maglev-group", self.labels[g].as_bytes()]);
            let offset = u64::from_be_bytes(h[..8].try_into().expect("digest")) as usize % slots;
            let skip =
                u64::from_be_bytes(h[8..16].try_into().expect("digest")) as usize % (slots - 1) + 1;
            (offset, skip)
        };
        while self.next[g] < slots {
            let j = self.next[g];
            self.next[g] += 1;
            let slot = (offset + j * skip) % slots;
            if self.table[slot] == usize::MAX {
                self.table[slot] = g;
                return true;
            }
        }
        false
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.table.len()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.labels.len()
    }

    /// The group labels in table order (lookup results index into this).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The label of group index `g`.
    pub fn label(&self, g: usize) -> &str {
        &self.labels[g]
    }

    /// Index of the group named `label`, if present.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Map a client id to its group index.
    pub fn lookup(&self, client: u64) -> usize {
        let h = sha256_tagged(&[b"dissent-maglev-client", &client.to_be_bytes()]);
        let slot =
            u64::from_be_bytes(h[..8].try_into().expect("digest")) as usize % self.table.len();
        self.table[slot]
    }

    /// Slots owned per group (diagnostics; load-imbalance tests read this).
    pub fn slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.labels.len()];
        for &g in &self.table {
            counts[g] += 1;
        }
        counts
    }

    /// Add a group: deterministic full rebuild over the extended label set.
    /// Maglev's round-robin fill moves only ~1/G of the slots to the
    /// newcomer; existing groups keep ~(G−1)/G of their clients.  Panics on
    /// a duplicate label.
    pub fn add_group(&mut self, label: &str) {
        assert!(
            self.index_of(label).is_none(),
            "duplicate group label {label:?} in Maglev table"
        );
        self.labels.push(label.to_string());
        let slots = self.table.len();
        self.fill_sized(slots);
    }

    /// Remove a group, refilling **only** its slots by resuming the
    /// surviving groups' permutation walks.  Every slot a survivor owned
    /// before the removal still points at the same group afterwards — only
    /// the removed group's clients remap.  Panics if the label is unknown
    /// or it is the last group.
    pub fn remove_group(&mut self, label: &str) {
        let g = self
            .index_of(label)
            .unwrap_or_else(|| panic!("unknown group label {label:?}"));
        assert!(self.labels.len() > 1, "cannot remove the last group");
        let slots = self.table.len();
        // Drop the group: vacate its slots and reindex the survivors.
        let mut vacant = 0usize;
        for slot in self.table.iter_mut() {
            if *slot == g {
                *slot = usize::MAX;
                vacant += 1;
            } else if *slot != usize::MAX && *slot > g {
                *slot -= 1;
            }
        }
        self.labels.remove(g);
        // Refill round-robin: every survivor re-walks its permutation from
        // the start, claiming only vacant slots.  Occupied slots are
        // skipped, so every assignment a survivor held before the removal
        // is untouched — only the vacated slots gain (deterministic) new
        // owners.
        self.next = vec![0; self.labels.len()];
        while vacant > 0 {
            let mut progressed = false;
            for sg in 0..self.labels.len() {
                if vacant == 0 {
                    break;
                }
                if self.claim_next(sg) {
                    vacant -= 1;
                    progressed = true;
                }
            }
            assert!(
                progressed,
                "maglev refill stalled with {vacant} vacant of {slots} slots"
            );
        }
    }
}

/// Configuration of a federated multi-group simulation: one per-group
/// template, instantiated G times with domain-separated seeds.
#[derive(Clone, Debug)]
pub struct FederatedSimConfig {
    /// The per-group configuration (topology/churn/sizes/window/rounds).
    /// `template.seed` is the *federation* base seed; each group runs with
    /// `group_seed(template.seed, g)`.
    pub template: SimConfig,
    /// Number of groups (shards) driven concurrently.
    pub num_groups: usize,
}

impl FederatedSimConfig {
    /// A federation of `num_groups` copies of `template`.
    pub fn new(template: SimConfig, num_groups: usize) -> Self {
        FederatedSimConfig {
            template,
            num_groups: num_groups.max(1),
        }
    }

    /// The concrete configuration group `g` runs with: the template with a
    /// domain-separated seed.
    pub fn group_config(&self, g: usize) -> SimConfig {
        let mut cfg = self.template.clone();
        cfg.seed = group_seed(self.template.seed, g as u64);
        cfg
    }
}

/// What a federated run measured: per-group reports plus federation-level
/// aggregates over the shared virtual clock.
#[derive(Clone, Debug)]
pub struct FederatedSimReport {
    /// Per-group reports, indexed by group id (provenance for every
    /// aggregate below).
    pub groups: Vec<SimReport>,
    /// Shared virtual clock at the end of the run (the slowest group).
    pub duration: SimTime,
    /// Rounds completed across all groups.
    pub rounds_completed: usize,
    /// Protocol messages exchanged across all groups.
    pub messages: u64,
    /// Aggregate round throughput: total rounds over the shared clock.
    pub rounds_per_sec: f64,
    /// Aggregate message throughput over the shared clock.
    pub messages_per_sec: f64,
    /// Round latency pooled across every group's rounds (seconds); p50/p99
    /// of the federated stream.
    pub round_latency: Stats,
    /// Effective anonymity-set size: per-round participant counts pooled
    /// across groups.  Sharding trades this (one group's worth, not the
    /// whole population) for the aggregate throughput above.
    pub anonymity_set: Stats,
}

/// Drives G per-group simulations off one shared [`EventQueue`]: a single
/// virtual clock, per-group RNG streams, events interleaved by time.
pub struct FederatedSimDriver {
    queue: EventQueue<(usize, crate::driver::SimEvent)>,
    groups: Vec<GroupSim>,
}

impl FederatedSimDriver {
    /// Set up a federated driver (detached instruments).
    pub fn new(cfg: FederatedSimConfig) -> Self {
        Self::build(cfg, |_| SimMetrics::default())
    }

    /// Set up a federated driver with per-shard labelled instruments on
    /// `registry` (`dissent_sim_rounds_total{shard="g0"}`, …).
    pub fn with_registry(cfg: FederatedSimConfig, registry: &Registry) -> Self {
        Self::build(cfg, |g| {
            SimMetrics::registered_for_shard(registry, &format!("g{g}"))
        })
    }

    fn build(cfg: FederatedSimConfig, mut metrics: impl FnMut(usize) -> SimMetrics) -> Self {
        let groups = (0..cfg.num_groups)
            .map(|g| GroupSim::new(cfg.group_config(g), metrics(g)))
            .collect();
        FederatedSimDriver {
            queue: EventQueue::new(),
            groups,
        }
    }

    /// Run every group to completion on the shared clock and report.
    pub fn run(mut self) -> FederatedSimReport {
        for (gid, group) in self.groups.iter_mut().enumerate() {
            if group.rounds_configured() > 0 {
                group.start_batch(gid, &mut self.queue, 0);
            }
        }
        let mut unfinished = self.groups.iter().filter(|g| !g.finished()).count();
        while unfinished > 0 {
            let Some((_, (gid, event))) = self.queue.pop() else {
                break;
            };
            let group = &mut self.groups[gid];
            if group.finished() {
                continue;
            }
            group.handle(gid, &mut self.queue, event);
            if group.finished() {
                unfinished -= 1;
            }
        }
        let duration = self.queue.now().max(1);
        let reports: Vec<SimReport> = self
            .groups
            .into_iter()
            .map(|g| g.report(duration))
            .collect();
        let secs = to_secs(duration);
        let rounds_completed: usize = reports.iter().map(|r| r.rounds_completed).sum();
        let messages: u64 = reports.iter().map(|r| r.messages).sum();
        let mut round_latency = Stats::new();
        let mut anonymity_set = Stats::new();
        for r in &reports {
            for &s in r.round_latency.samples() {
                round_latency.push(s);
            }
            for &p in r.participants.samples() {
                anonymity_set.push(p);
            }
        }
        FederatedSimReport {
            groups: reports,
            duration,
            rounds_completed,
            messages,
            rounds_per_sec: rounds_completed as f64 / secs,
            messages_per_sec: messages as f64 / secs,
            round_latency,
            anonymity_set,
        }
    }
}

/// Convenience wrapper: simulate one federated configuration.
pub fn simulate_federated(cfg: FederatedSimConfig) -> FederatedSimReport {
    FederatedSimDriver::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::topology::Topology;
    use dissent_crypto::DetPrng;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|g| format!("g{g}")).collect()
    }

    fn template(rounds: usize) -> SimConfig {
        // 100-client groups: small enough to iterate fast, large enough
        // that the 95 % closure target rarely waits on a Pareto straggler
        // (which would make short runs duration-noisy).
        SimConfig::new(
            Topology::deterlab(100, 8),
            ChurnModel::deterlab(),
            2_000,
            4,
            rounds,
        )
    }

    #[test]
    fn maglev_population_is_deterministic() {
        let a = MaglevTable::new(&labels(7), 1_009);
        let b = MaglevTable::new(&labels(7), 1_009);
        assert_eq!(a.table, b.table);
        for client in 0..1_000u64 {
            assert_eq!(a.lookup(client), b.lookup(client));
        }
    }

    #[test]
    fn maglev_load_imbalance_below_one_percent_at_65537_slots() {
        for groups in [3usize, 16, 100] {
            let table = MaglevTable::new(&labels(groups), MAGLEV_SLOTS);
            assert_eq!(table.slots(), MAGLEV_SLOTS);
            let counts = table.slot_counts();
            let mean = MAGLEV_SLOTS as f64 / groups as f64;
            for (g, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - mean).abs() / mean;
                assert!(
                    dev <= 0.01,
                    "group {g}: {c} slots vs mean {mean:.1} ({dev:.4} imbalance)"
                );
            }
            // Round-robin fill is in fact within one slot of uniform.
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1, "spread {min}..{max}");
        }
    }

    #[test]
    fn maglev_removal_remaps_only_the_removed_groups_clients() {
        let names = labels(9);
        let mut table = MaglevTable::new(&names, 1_009);
        let before: Vec<(u64, String)> = (0..4_000u64)
            .map(|c| (c, table.label(table.lookup(c)).to_string()))
            .collect();
        table.remove_group("g4");
        assert_eq!(table.num_groups(), 8);
        let mut moved = 0usize;
        for (c, old_label) in &before {
            let new_label = table.label(table.lookup(*c));
            if old_label == "g4" {
                assert_ne!(new_label, "g4");
                moved += 1;
            } else {
                // Disruption minimality: survivors keep every client.
                assert_eq!(new_label, old_label, "client {c} moved off {old_label}");
            }
        }
        assert!(moved > 0, "some clients must have lived on g4");
    }

    #[test]
    fn maglev_add_rebuild_is_deterministic_and_bounded() {
        let mut grown = MaglevTable::new(&labels(8), 1_009);
        grown.add_group("g8");
        let direct = MaglevTable::new(&labels(9), 1_009);
        assert_eq!(grown.table, direct.table, "add must equal direct build");
        // The newcomer takes ~1/9 of the slots; it cannot have grabbed a
        // grossly disproportionate share.
        let counts = grown.slot_counts();
        assert!(*counts.last().unwrap() <= 2 * (1_009 / 9));
    }

    #[test]
    fn group_seeds_are_domain_separated() {
        // Regression (ISSUE 10 satellite): per-group seeds must be derived
        // by domain separation, not shared or offset — two groups' DetPrng
        // streams and StdRng seeds must differ.
        let base = 0x51D;
        assert_ne!(group_seed(base, 0), group_seed(base, 1));
        assert_ne!(group_seed(base, 0), base);
        let mut a = DetPrng::new(&group_seed_material(base, 0), b"sim-entity");
        let mut b = DetPrng::new(&group_seed_material(base, 1), b"sim-entity");
        let mut out_a = [0u8; 64];
        let mut out_b = [0u8; 64];
        a.fill(&mut out_a);
        b.fill(&mut out_b);
        assert_ne!(out_a, out_b, "two groups must never share a DetPrng stream");
        // And the derivation itself is stable.
        assert_eq!(group_seed(base, 3), group_seed(base, 3));
    }

    #[test]
    fn federated_single_group_matches_standalone() {
        // One group on the shared queue is exactly SimDriver with the
        // domain-separated seed.
        let fed = simulate_federated(FederatedSimConfig::new(template(12), 1));
        let mut solo_cfg = template(12);
        solo_cfg.seed = group_seed(solo_cfg.seed, 0);
        let solo = crate::driver::simulate(solo_cfg);
        assert_eq!(fed.groups[0].rounds_completed, solo.rounds_completed);
        assert_eq!(fed.groups[0].messages, solo.messages);
        assert_eq!(
            fed.groups[0].round_latency.samples(),
            solo.round_latency.samples()
        );
    }

    #[test]
    fn federated_groups_are_independent_of_fleet_size() {
        // Group g's trajectory depends only on (template, g) — adding more
        // groups to the federation must not perturb it.
        let small = simulate_federated(FederatedSimConfig::new(template(8), 2));
        let large = simulate_federated(FederatedSimConfig::new(template(8), 5));
        for g in 0..2 {
            assert_eq!(
                small.groups[g].round_latency.samples(),
                large.groups[g].round_latency.samples(),
                "group {g} perturbed by fleet size"
            );
            assert_eq!(small.groups[g].messages, large.groups[g].messages);
        }
    }

    #[test]
    fn federated_throughput_scales_with_groups() {
        let one = simulate_federated(FederatedSimConfig::new(template(12), 1));
        let eight = simulate_federated(FederatedSimConfig::new(template(12), 8));
        assert_eq!(eight.rounds_completed, 8 * one.rounds_completed);
        assert!(
            eight.rounds_per_sec > 0.8 * 8.0 * one.rounds_per_sec,
            "8 shards {} rounds/s vs 1 shard {} rounds/s",
            eight.rounds_per_sec,
            one.rounds_per_sec
        );
        // Anonymity set per round stays one group's worth.
        assert!(eight.anonymity_set.mean() <= one.anonymity_set.mean() * 1.2);
    }

    #[test]
    fn per_shard_metrics_are_labelled() {
        let registry = Registry::new();
        let report =
            FederatedSimDriver::with_registry(FederatedSimConfig::new(template(6), 3), &registry)
                .run();
        for g in 0..3 {
            let shard = format!("g{g}");
            assert_eq!(
                registry.counter_value("dissent_sim_rounds_total", &[("shard", &shard)]),
                Some(u64::try_from(report.groups[g].rounds_completed).unwrap()),
                "shard {shard} counter"
            );
        }
    }
}
