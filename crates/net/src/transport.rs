//! The blocking framed transport real nodes speak over TCP.
//!
//! Every frame on the wire is a 4-byte big-endian length followed by a
//! one-byte tag and the tag's body.  The declared length is validated
//! against [`MAX_FRAME`] *before* any buffer is allocated, so a forged
//! multi-gigabyte length prefix costs the receiver nothing but a closed
//! connection.  Protocol payloads (the canonical `ProtocolMessage`
//! encodings from `dissent-core`) travel opaquely in [`Frame::Protocol`] —
//! this crate frames and authenticates bytes; the core crate owns their
//! meaning, keeping the dependency direction `crypto ← net ← core`.
//!
//! Connection lifecycle:
//!
//! ```text
//! prover                         verifier
//!   Hello {version, fingerprint,
//!          role, id}      ──────▶  check version + group fingerprint
//!                         ◀──────  Challenge {nonce}
//!   AuthProof {signature} ──────▶  verify against roster key (auth.rs)
//!                         ◀──────  AuthOk | AuthReject
//!   ...                  RoundOpen / Protocol / Cleartext ...
//!                         ◀──────  Goodbye
//! ```

use dissent_metrics::{Counter, Registry};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Version of the framing + handshake described above.  A mismatch is
/// rejected in the hello exchange before any authentication state exists.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's declared length (tag + body).  Checked before
/// allocation: the largest legitimate frame is a `ClientSubmit` or round
/// cleartext for a big group (a few hundred KiB); 16 MiB leaves room for
/// any plausible slot schedule while capping what a malicious peer can make
/// the receiver reserve.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

const TAG_HELLO: u8 = 0x01;
const TAG_CHALLENGE: u8 = 0x02;
const TAG_AUTH_PROOF: u8 = 0x03;
const TAG_AUTH_OK: u8 = 0x04;
const TAG_AUTH_REJECT: u8 = 0x05;
const TAG_ROUND_OPEN: u8 = 0x06;
const TAG_PROTOCOL: u8 = 0x07;
const TAG_CLEARTEXT: u8 = 0x08;
const TAG_GOODBYE: u8 = 0x09;
const TAG_RESUME: u8 = 0x0A;

/// One transport frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: what the peer speaks and which group (by
    /// self-certifying fingerprint) and roster identity it claims.
    Hello {
        /// The prover's [`PROTOCOL_VERSION`].
        version: u16,
        /// `GroupConfig::group_id()` of the group the prover believes in.
        fingerprint: [u8; 32],
        /// [`dissent_crypto::connauth::ROLE_CLIENT`] or `ROLE_SERVER`.
        role: u8,
        /// Roster index being claimed.
        id: u32,
    },
    /// Fresh verifier nonce the proof must sign over.
    Challenge {
        /// 32 bytes that never repeat across connections.
        nonce: [u8; 32],
    },
    /// The Schnorr proof (encoded by `connauth::signature_to_bytes`).
    AuthProof {
        /// Fixed-width signature bytes relative to the session group.
        signature: Vec<u8>,
    },
    /// Handshake accepted; protocol frames may flow.
    AuthOk,
    /// Handshake refused; the connection is closed after this frame.
    AuthReject {
        /// Human-readable refusal (mismatched group, bad proof, ...).
        reason: String,
    },
    /// Server → client: the round engine is collecting submissions for
    /// `round`.
    RoundOpen {
        /// The round number now open.
        round: u64,
    },
    /// An opaque canonical `ProtocolMessage` encoding.
    Protocol {
        /// `ProtocolMessage::to_bytes` output.
        payload: Vec<u8>,
    },
    /// Server → client: a finalized round's combined cleartext.
    Cleartext {
        /// The round the cleartext belongs to.
        round: u64,
        /// Whether every server certification signature verified.
        certified: bool,
        /// The combined DC-net output (request bits + open slots).
        payload: Vec<u8>,
    },
    /// Orderly end of the conversation.
    Goodbye,
    /// Client → server, after (re-)authenticating: the client's session
    /// engine next expects round `next_round`; the server replays any
    /// still-buffered cleartexts from that round forward so a reconnecting
    /// client can resynchronize instead of stalling.
    Resume {
        /// First round the client still needs the cleartext for.
        next_round: u64,
    },
}

/// Errors reading or writing frames.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The stream ended mid-frame (header or body cut short).
    Truncated,
    /// A frame header declared more than [`MAX_FRAME`] bytes; rejected
    /// before any allocation.
    Oversize {
        /// The length the header claimed.
        declared: u64,
    },
    /// Unknown frame tag.
    BadTag(u8),
    /// A frame body did not decode as its tag requires.
    Malformed(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::Truncated => write!(f, "stream ended mid-frame"),
            TransportError::Oversize { declared } => {
                write!(f, "frame declares {declared} bytes (max {MAX_FRAME})")
            }
            TransportError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            TransportError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    // lint:allow(unchecked-wire-narrowing): encoder-side length of data we
    // produced ourselves; `write_frame` rejects any body over MAX_FRAME
    // (16 MiB, far below u32::MAX) before these bytes reach the wire.
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Cursor over a fully-read frame body.  Every length-prefixed field is
/// bounds-checked against the remaining body before it is sliced, so a
/// forged inner length can never trigger an allocation beyond the already
/// size-capped frame.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Convert an exactly-`N`-byte slice into an array without a panic path:
/// `Body::take` already guarantees the width, but attacker-reachable decode
/// code keeps every conversion fallible on principle.
fn fixed<const N: usize>(bytes: &[u8]) -> Result<[u8; N], TransportError> {
    <[u8; N]>::try_from(bytes).map_err(|_| TransportError::Truncated)
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.buf.len() - self.pos < n {
            return Err(TransportError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TransportError> {
        Ok(u16::from_be_bytes(fixed(self.take(2)?)?))
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        Ok(u32::from_be_bytes(fixed(self.take(4)?)?))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        Ok(u64::from_be_bytes(fixed(self.take(8)?)?))
    }

    fn bytes(&mut self) -> Result<&'a [u8], TransportError> {
        let declared = self.u32()?;
        let len = usize::try_from(declared).map_err(|_| TransportError::Oversize {
            declared: u64::from(declared),
        })?;
        self.take(len)
    }

    fn array32(&mut self) -> Result<[u8; 32], TransportError> {
        fixed(self.take(32)?)
    }

    fn finish(self) -> Result<(), TransportError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(TransportError::Malformed("trailing bytes in frame body"))
        }
    }
}

impl Frame {
    /// Encode tag + body (without the outer length header).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello {
                version,
                fingerprint,
                role,
                id,
            } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(fingerprint);
                out.push(*role);
                out.extend_from_slice(&id.to_be_bytes());
            }
            Frame::Challenge { nonce } => {
                out.push(TAG_CHALLENGE);
                out.extend_from_slice(nonce);
            }
            Frame::AuthProof { signature } => {
                out.push(TAG_AUTH_PROOF);
                put_bytes(&mut out, signature);
            }
            Frame::AuthOk => out.push(TAG_AUTH_OK),
            Frame::AuthReject { reason } => {
                out.push(TAG_AUTH_REJECT);
                put_bytes(&mut out, reason.as_bytes());
            }
            Frame::RoundOpen { round } => {
                out.push(TAG_ROUND_OPEN);
                out.extend_from_slice(&round.to_be_bytes());
            }
            Frame::Protocol { payload } => {
                out.push(TAG_PROTOCOL);
                put_bytes(&mut out, payload);
            }
            Frame::Cleartext {
                round,
                certified,
                payload,
            } => {
                out.push(TAG_CLEARTEXT);
                out.extend_from_slice(&round.to_be_bytes());
                out.push(u8::from(*certified));
                put_bytes(&mut out, payload);
            }
            Frame::Goodbye => out.push(TAG_GOODBYE),
            Frame::Resume { next_round } => {
                out.push(TAG_RESUME);
                out.extend_from_slice(&next_round.to_be_bytes());
            }
        }
        out
    }

    /// Decode a tag + body read off the wire.
    fn decode(bytes: &[u8]) -> Result<Frame, TransportError> {
        let mut r = Body { buf: bytes, pos: 0 };
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                version: r.u16()?,
                fingerprint: r.array32()?,
                role: r.u8()?,
                id: r.u32()?,
            },
            TAG_CHALLENGE => Frame::Challenge {
                nonce: r.array32()?,
            },
            TAG_AUTH_PROOF => Frame::AuthProof {
                signature: r.bytes()?.to_vec(),
            },
            TAG_AUTH_OK => Frame::AuthOk,
            TAG_AUTH_REJECT => Frame::AuthReject {
                reason: String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| TransportError::Malformed("reject reason is not utf-8"))?,
            },
            TAG_ROUND_OPEN => Frame::RoundOpen { round: r.u64()? },
            TAG_PROTOCOL => Frame::Protocol {
                payload: r.bytes()?.to_vec(),
            },
            TAG_CLEARTEXT => Frame::Cleartext {
                round: r.u64()?,
                certified: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(TransportError::Malformed("certified flag is not 0/1")),
                },
                payload: r.bytes()?.to_vec(),
            },
            TAG_GOODBYE => Frame::Goodbye,
            TAG_RESUME => Frame::Resume {
                next_round: r.u64()?,
            },
            tag => return Err(TransportError::BadTag(tag)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Write one frame: length header, then tag + body.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), TransportError> {
    write_encoded(w, &frame.encode()).map(|_| ())
}

/// Write an already-encoded tag + body; returns the wire size (header
/// included) so callers can meter bytes without re-encoding.
fn write_encoded<W: Write>(w: &mut W, body: &[u8]) -> Result<u64, TransportError> {
    // A real check, not a debug_assert: an over-budget body must never put
    // a truncated length header on the wire in release builds either.
    let header = u32::try_from(body.len())
        .ok()
        .filter(|_| body.len() <= MAX_FRAME)
        .ok_or(TransportError::Oversize {
            declared: body.len() as u64,
        })?;
    w.write_all(&header.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(4 + u64::from(header))
}

/// Read one frame.  `Ok(None)` means the peer closed the stream cleanly at
/// a frame boundary; EOF anywhere else is [`TransportError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, TransportError> {
    Ok(read_frame_counted(r)?.map(|(frame, _)| frame))
}

/// [`read_frame`] plus the frame's wire size (header included).
fn read_frame_counted<R: Read>(r: &mut R) -> Result<Option<(Frame, u64)>, TransportError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(TransportError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    let declared = u64::from(u32::from_be_bytes(header));
    // The whole point of the header check: a forged length is refused
    // *here*, before the body buffer below ever exists.
    let len = match usize::try_from(declared) {
        Ok(len) if len <= MAX_FRAME => len,
        _ => return Err(TransportError::Oversize { declared }),
    };
    if len == 0 {
        return Err(TransportError::Malformed("empty frame"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TransportError::Truncated
        } else {
            TransportError::Io(e)
        }
    })?;
    Frame::decode(&body).map(|frame| Some((frame, 4 + declared)))
}

/// Frame and byte counters for one node's transport edge, shared by every
/// [`FramedConn`] the node owns (cheap `Counter` clones).  A `Default`
/// instance is detached — it records but renders nowhere — so metering is
/// unconditional and costs two relaxed atomic adds per frame.
#[derive(Clone, Debug, Default)]
pub struct TransportMetrics {
    /// Frames written, across all connections sharing this instance.
    pub frames_sent: Counter,
    /// Frames fully read and decoded.
    pub frames_received: Counter,
    /// Wire bytes written (length headers included).
    pub bytes_sent: Counter,
    /// Wire bytes consumed by successfully decoded frames.
    pub bytes_received: Counter,
}

impl TransportMetrics {
    /// Counters registered on `registry` as
    /// `dissent_transport_{frames,bytes}_total{dir="sent"|"received"}`.
    pub fn registered(registry: &Registry) -> Self {
        let frames = "dissent_transport_frames_total";
        let frames_help = "Transport frames by direction.";
        let bytes = "dissent_transport_bytes_total";
        let bytes_help = "Transport wire bytes (headers included) by direction.";
        TransportMetrics {
            frames_sent: registry.counter_with(frames, frames_help, &[("dir", "sent")]),
            frames_received: registry.counter_with(frames, frames_help, &[("dir", "received")]),
            bytes_sent: registry.counter_with(bytes, bytes_help, &[("dir", "sent")]),
            bytes_received: registry.counter_with(bytes, bytes_help, &[("dir", "received")]),
        }
    }
}

/// A frame-oriented wrapper over any blocking byte stream.
pub struct FramedConn<S> {
    stream: S,
    metrics: TransportMetrics,
}

impl<S: Read + Write> FramedConn<S> {
    /// Wrap a connected stream (with detached, render-nowhere metrics).
    pub fn new(stream: S) -> Self {
        FramedConn {
            stream,
            metrics: TransportMetrics::default(),
        }
    }

    /// Wrap a connected stream, metering frames/bytes into `metrics`.
    pub fn with_metrics(stream: S, metrics: TransportMetrics) -> Self {
        FramedConn { stream, metrics }
    }

    /// Send one frame (length header + tag + body, flushed).
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let wire = write_encoded(&mut self.stream, &frame.encode())?;
        self.metrics.frames_sent.inc();
        self.metrics.bytes_sent.add(wire);
        Ok(())
    }

    /// Receive one frame; `Ok(None)` is a clean close.
    pub fn recv(&mut self) -> Result<Option<Frame>, TransportError> {
        match read_frame_counted(&mut self.stream)? {
            Some((frame, wire)) => {
                self.metrics.frames_received.inc();
                self.metrics.bytes_received.add(wire);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Access the wrapped stream (e.g. to set socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

impl FramedConn<TcpStream> {
    /// An independently-owned handle to the same socket, so one thread can
    /// block in [`FramedConn::recv`] while another sends.  The clone meters
    /// into the same counters.
    pub fn try_clone(&self) -> io::Result<FramedConn<TcpStream>> {
        Ok(FramedConn {
            stream: self.stream.try_clone()?,
            metrics: self.metrics.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut cur = Cursor::new(wire);
        assert_eq!(read_frame(&mut cur).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: [0xAB; 32],
            role: 1,
            id: 42,
        });
        roundtrip(Frame::Challenge { nonce: [0x11; 32] });
        roundtrip(Frame::AuthProof {
            signature: vec![1, 2, 3, 4],
        });
        roundtrip(Frame::AuthOk);
        roundtrip(Frame::AuthReject {
            reason: "wrong group".into(),
        });
        roundtrip(Frame::RoundOpen { round: 7 });
        roundtrip(Frame::Protocol {
            payload: vec![9; 100],
        });
        roundtrip(Frame::Cleartext {
            round: 3,
            certified: true,
            payload: vec![0; 64],
        });
        roundtrip(Frame::Goodbye);
        roundtrip(Frame::Resume { next_round: 11 });
    }

    #[test]
    fn framed_conn_meters_frames_and_bytes() {
        let metrics = TransportMetrics::default();
        let mut sender = FramedConn::with_metrics(Cursor::new(Vec::new()), metrics.clone());
        let frame = Frame::Protocol {
            payload: vec![7; 100],
        };
        sender.send(&frame).unwrap();
        sender.send(&Frame::Goodbye).unwrap();
        assert_eq!(metrics.frames_sent.get(), 2);
        // Protocol: 4 header + 1 tag + 4 inner length + 100 payload;
        // Goodbye: 4 header + 1 tag.
        assert_eq!(metrics.bytes_sent.get(), 109 + 5);

        let wire = sender.get_ref().get_ref().clone();
        let mut receiver = FramedConn::with_metrics(Cursor::new(wire), metrics.clone());
        assert_eq!(receiver.recv().unwrap(), Some(frame));
        assert_eq!(receiver.recv().unwrap(), Some(Frame::Goodbye));
        assert_eq!(receiver.recv().unwrap(), None);
        assert_eq!(metrics.frames_received.get(), 2);
        assert_eq!(metrics.bytes_received.get(), metrics.bytes_sent.get());
    }

    #[test]
    fn forged_length_header_is_rejected_before_allocation() {
        // 0xFFFF_FFFF declared bytes: the reader must refuse from the
        // 4-byte header alone.  (If it tried to allocate first, this test
        // would OOM rather than return `Oversize`.)
        let wire = 0xFFFF_FFFFu32.to_be_bytes().to_vec();
        match read_frame(&mut Cursor::new(wire)) {
            Err(TransportError::Oversize { declared }) => assert_eq!(declared, 0xFFFF_FFFF),
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_malformed() {
        let wire = 0u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(wire)),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn eof_mid_header_and_mid_body_are_truncated() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Protocol {
                payload: vec![5; 32],
            },
        )
        .unwrap();
        // Cut inside the body.
        let cut_body = wire[..wire.len() - 7].to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(cut_body)),
            Err(TransportError::Truncated)
        ));
        // Cut inside the header.
        let cut_header = wire[..2].to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(cut_header)),
            Err(TransportError::Truncated)
        ));
    }

    #[test]
    fn forged_inner_length_cannot_outrun_the_body() {
        // A Protocol frame whose *inner* length field claims more bytes
        // than the body holds: bounds-checked before slicing.
        let mut body = vec![TAG_PROTOCOL];
        body.extend_from_slice(&0xFFFF_0000u32.to_be_bytes());
        body.extend_from_slice(&[0u8; 8]);
        let mut wire = (body.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&body);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire)),
            Err(TransportError::Truncated)
        ));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        let mut wire = 1u32.to_be_bytes().to_vec();
        wire.push(0x7F);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire)),
            Err(TransportError::BadTag(0x7F))
        ));
        let mut wire = 2u32.to_be_bytes().to_vec();
        wire.push(TAG_GOODBYE);
        wire.push(0x00);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire)),
            Err(TransportError::Malformed(_))
        ));
    }
}
