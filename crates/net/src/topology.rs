//! Testbed topologies.
//!
//! The evaluation section of the paper uses four environments; each is
//! reproduced here as a [`Topology`] preset:
//!
//! * **DeterLab** (§5.2): servers share a 100 Mbps network with 10 ms
//!   latency; clients share a 100 Mbps uplink with 50 ms latency to their
//!   server.  Used for Figures 7, 8 and 9.
//! * **PlanetLab** (§5.1/5.2): 16 EC2 servers + 1 at Yale (~14 ms RTT among
//!   them), clients scattered across the public Internet with heavy-tailed
//!   latencies and limited bandwidth.  Used for Figure 6 and the PlanetLab
//!   series of Figure 7.
//! * **Emulab WiFi LAN** (§5.4): every node hangs off a 24 Mbps, 10 ms link —
//!   the local-area anonymity scenario of Figures 10 and 11.
//! * **Internet path / Tor hops**: generic wide-area links used by the web
//!   browsing model in `dissent-apps`.

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// A complete topology: how clients reach their upstream server and how
/// servers reach each other.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (appears in experiment output).
    pub name: String,
    /// Link from a client to its upstream server.
    pub client_link: Link,
    /// Link between any two servers.
    pub server_link: Link,
    /// Link from the exit/gateway to the public Internet (web workloads).
    pub internet_link: Link,
    /// Number of servers.
    pub num_servers: usize,
    /// Number of clients.
    pub num_clients: usize,
}

impl Topology {
    /// The DeterLab configuration of §5.2: `num_servers` servers on a
    /// 100 Mbps / 10 ms network, clients on 100 Mbps / 50 ms uplinks.
    pub fn deterlab(num_clients: usize, num_servers: usize) -> Self {
        Topology {
            name: format!("deterlab-{num_clients}c-{num_servers}s"),
            client_link: Link::new_ms_mbps(50.0, 100.0),
            server_link: Link::new_ms_mbps(10.0, 100.0),
            internet_link: Link::new_ms_mbps(20.0, 100.0),
            num_servers,
            num_clients,
        }
    }

    /// The PlanetLab/EC2 configuration of §5.2: servers co-located (EC2 US
    /// East + Yale, ~14 ms RTT → 7 ms one-way), clients on the public
    /// Internet with higher latency, lower bandwidth and heavy jitter.
    pub fn planetlab(num_clients: usize, num_servers: usize) -> Self {
        Topology {
            name: format!("planetlab-{num_clients}c-{num_servers}s"),
            client_link: Link::new_ms_mbps(80.0, 10.0).with_jitter_ms(40.0),
            server_link: Link::new_ms_mbps(7.0, 300.0),
            internet_link: Link::new_ms_mbps(40.0, 50.0),
            num_servers,
            num_clients,
        }
    }

    /// The Emulab WiFi LAN of §5.4: 24 Mbps links with 10 ms latency, a
    /// handful of servers and clients, one gateway to the Internet.
    pub fn emulab_wifi(num_clients: usize, num_servers: usize) -> Self {
        Topology {
            name: format!("emulab-wifi-{num_clients}c-{num_servers}s"),
            client_link: Link::new_ms_mbps(10.0, 24.0),
            server_link: Link::new_ms_mbps(10.0, 24.0),
            internet_link: Link::new_ms_mbps(20.0, 100.0),
            num_servers,
            num_clients,
        }
    }

    /// A generic wide-area path used to model Tor relay hops and direct
    /// Internet access in the browsing comparison.
    pub fn wide_area_hop() -> Link {
        Link::new_ms_mbps(40.0, 20.0)
    }

    /// Clients per server under the balanced assignment used throughout the
    /// evaluation (client `i` attaches to server `i mod M`).
    pub fn clients_per_server(&self) -> usize {
        self.num_clients.div_ceil(self.num_servers.max(1))
    }

    /// The upstream server of a client under the balanced assignment.
    pub fn upstream_server(&self, client: usize) -> usize {
        client % self.num_servers.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterlab_matches_paper_parameters() {
        let t = Topology::deterlab(640, 32);
        assert_eq!(t.num_clients, 640);
        assert_eq!(t.num_servers, 32);
        assert_eq!(t.server_link.latency_us, 10_000);
        assert_eq!(t.client_link.latency_us, 50_000);
        assert_eq!(t.client_link.bandwidth_bps, 100_000_000);
        assert_eq!(t.clients_per_server(), 20);
    }

    #[test]
    fn emulab_wifi_is_24mbps() {
        let t = Topology::emulab_wifi(24, 5);
        assert_eq!(t.client_link.bandwidth_bps, 24_000_000);
        assert_eq!(t.client_link.latency_us, 10_000);
    }

    #[test]
    fn planetlab_clients_are_slower_and_jittery() {
        let t = Topology::planetlab(560, 17);
        assert!(t.client_link.latency_us > t.server_link.latency_us);
        assert!(t.client_link.jitter_us > 0);
        assert!(t.client_link.bandwidth_bps < t.server_link.bandwidth_bps);
    }

    #[test]
    fn balanced_assignment() {
        let t = Topology::deterlab(10, 3);
        assert_eq!(t.upstream_server(0), 0);
        assert_eq!(t.upstream_server(4), 1);
        assert_eq!(t.upstream_server(8), 2);
        assert_eq!(t.clients_per_server(), 4);
    }

    #[test]
    fn zero_servers_does_not_divide_by_zero() {
        let t = Topology {
            num_servers: 0,
            ..Topology::deterlab(5, 1)
        };
        assert_eq!(t.upstream_server(3), 0);
        assert_eq!(t.clients_per_server(), 5);
    }
}
