//! Link models: latency + bandwidth + jitter.
//!
//! Every figure in the paper's evaluation is ultimately a function of how
//! long messages of a given size take to cross links of a given latency and
//! bandwidth (plus computation).  A [`Link`] captures exactly those terms;
//! topologies (DeterLab LAN, PlanetLab wide-area, Emulab WiFi) are built from
//! them in [`crate::topology`].

use crate::sim::{SimTime, MILLISECOND, SECOND};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A unidirectional network link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way propagation latency in microseconds.
    pub latency_us: SimTime,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Random extra delay, uniform in `[0, jitter_us]`, added per message.
    pub jitter_us: SimTime,
}

impl Link {
    /// Construct a link from millisecond latency and Mbit/s bandwidth.
    pub fn new_ms_mbps(latency_ms: f64, bandwidth_mbps: f64) -> Self {
        Link {
            latency_us: (latency_ms * MILLISECOND as f64) as SimTime,
            bandwidth_bps: (bandwidth_mbps * 1_000_000.0) as u64,
            jitter_us: 0,
        }
    }

    /// Add jitter (milliseconds) to the link.
    pub fn with_jitter_ms(mut self, jitter_ms: f64) -> Self {
        self.jitter_us = (jitter_ms * MILLISECOND as f64) as SimTime;
        self
    }

    /// Serialization time for a message of `bytes` on this link.
    pub fn serialization_time(&self, bytes: usize) -> SimTime {
        if self.bandwidth_bps == 0 {
            return 0;
        }
        ((bytes as u128 * 8 * SECOND as u128) / self.bandwidth_bps as u128) as SimTime
    }

    /// Total one-way transfer time (latency + serialization), no jitter.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        self.latency_us + self.serialization_time(bytes)
    }

    /// Transfer time including a random jitter sample.
    pub fn transfer_time_jittered<R: Rng + ?Sized>(&self, bytes: usize, rng: &mut R) -> SimTime {
        let jitter = if self.jitter_us == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter_us)
        };
        self.transfer_time(bytes) + jitter
    }

    /// Round-trip time for a small control message.
    pub fn rtt(&self) -> SimTime {
        self.latency_us * 2
    }
}

impl Default for Link {
    fn default() -> Self {
        // 10 ms, 100 Mbps — the DeterLab server-to-server link of §5.2.
        Link::new_ms_mbps(10.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialization_time_scales_with_size_and_bandwidth() {
        let link = Link::new_ms_mbps(0.0, 100.0); // 100 Mbps
                                                  // 1,250,000 bytes = 10 Mbit → 0.1 s at 100 Mbps.
        assert_eq!(link.serialization_time(1_250_000), 100_000);
        let slow = Link::new_ms_mbps(0.0, 1.0);
        assert_eq!(slow.serialization_time(1_250_000), 10_000_000);
        assert_eq!(link.serialization_time(0), 0);
    }

    #[test]
    fn transfer_time_adds_latency() {
        let link = Link::new_ms_mbps(50.0, 100.0);
        assert_eq!(link.transfer_time(0), 50_000);
        assert_eq!(link.transfer_time(1_250_000), 50_000 + 100_000);
        assert_eq!(link.rtt(), 100_000);
    }

    #[test]
    fn zero_bandwidth_means_no_serialization_delay() {
        let link = Link {
            latency_us: 10,
            bandwidth_bps: 0,
            jitter_us: 0,
        };
        assert_eq!(link.transfer_time(1 << 20), 10);
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = Link::new_ms_mbps(10.0, 100.0).with_jitter_ms(5.0);
        for _ in 0..200 {
            let t = link.transfer_time_jittered(1000, &mut rng);
            let base = link.transfer_time(1000);
            assert!(t >= base && t <= base + 5_000);
        }
    }
}
