//! Event-driven driver for pipelined DC-net rounds.
//!
//! The paper's headline scaling result rests on pipelining (§3.6, Figure 8):
//! clients keep ciphertexts for several future rounds in flight, so round
//! *latency* (dominated by client links and stragglers) stops gating round
//! *throughput* (dominated by server processing).  This module simulates
//! exactly that message flow on the discrete-event core: every
//! `ClientSubmit`, `ServerCommit`, `ServerReveal` and `Certify` transfer is
//! scheduled through the [`EventQueue`] with per-link latency/bandwidth from
//! a [`Topology`], computation charged by a [`CostModel`], and per-round
//! client behaviour drawn from a [`ChurnModel`].
//!
//! The driver mirrors the batch-pipelined engine in `dissent-core`
//! (`PipelinedSession`): a batch of `window` rounds opens at once, clients
//! submit ciphertexts for every round of the batch back-to-back, the
//! servers' (serialized) processing pipeline drains the rounds in order, and
//! the next batch opens when the last cleartext of the current batch is
//! delivered.  Message sizes come from [`WireSizes`] — `dissent-core`
//! derives them from the real typed-message encodings.
//!
//! Internally the per-group simulation state lives in [`GroupSim`], keyed by
//! a group index on every queue event: [`SimDriver`] drives exactly one
//! group, and `federation::FederatedSimDriver` drives G of them off the same
//! [`EventQueue`] — one shared virtual clock, per-group topologies and
//! churn, interleaved by event time.

use crate::churn::{ChurnModel, ClientBehavior};
use crate::costmodel::CostModel;
use crate::policy::WindowPolicy;
use crate::sim::{to_secs, EventQueue, SimTime, Stats};
use crate::topology::Topology;
use dissent_metrics::{Counter, Histogram, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The simulator's round instruments — the same shapes (and, when bound to
/// a registry, the same metric names) the real node path exposes, so
/// `experiments` sweeps and a scraped `dissent-server` read one catalog.
#[derive(Clone)]
pub struct SimMetrics {
    /// Virtual-clock latency from round open to last cleartext delivery,
    /// recorded in microseconds, exposed in seconds.
    pub round_latency: Histogram,
    /// Rounds driven to completion.
    pub rounds_completed: Counter,
}

impl Default for SimMetrics {
    fn default() -> Self {
        SimMetrics {
            round_latency: Histogram::detached_latency(),
            rounds_completed: Counter::detached(),
        }
    }
}

impl SimMetrics {
    /// Instruments registered on `registry` as
    /// `dissent_sim_round_latency_seconds` / `dissent_sim_rounds_total`.
    pub fn registered(registry: &Registry) -> Self {
        SimMetrics {
            round_latency: registry.latency_histogram(
                "dissent_sim_round_latency_seconds",
                "Simulated round-open-to-delivery latency.",
            ),
            rounds_completed: registry
                .counter("dissent_sim_rounds_total", "Simulated rounds completed."),
        }
    }

    /// Instruments registered under the same names with a `shard` label, so
    /// one registry can aggregate a federated sweep per group
    /// (`dissent_sim_rounds_total{shard="g3"}`).
    pub fn registered_for_shard(registry: &Registry, shard: &str) -> Self {
        let labels = [("shard", shard)];
        SimMetrics {
            round_latency: registry.latency_histogram_with(
                "dissent_sim_round_latency_seconds",
                "Simulated round-open-to-delivery latency.",
                &labels,
            ),
            rounds_completed: registry.counter_with(
                "dissent_sim_rounds_total",
                "Simulated rounds completed.",
                &labels,
            ),
        }
    }
}

/// On-wire size in bytes of each protocol message kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSizes {
    /// One client ciphertext submission.
    pub client_submit: usize,
    /// One server commitment broadcast.
    pub server_commit: usize,
    /// One revealed server ciphertext.
    pub server_reveal: usize,
    /// One certification signature.
    pub certify: usize,
    /// The signed cleartext pushed down to each client.
    pub cleartext_push: usize,
}

impl WireSizes {
    /// Rough sizes for a round with `total_len` cleartext bytes — header
    /// estimates only; `dissent-core::messages::sim_wire_sizes` derives the
    /// exact figures from the typed-message encodings.
    pub fn for_cleartext(total_len: usize) -> Self {
        WireSizes {
            client_submit: total_len + 21,
            server_commit: 45,
            server_reveal: total_len + 17,
            certify: 81,
            cleartext_push: total_len + 81,
        }
    }
}

/// Configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Links and node counts.
    pub topology: Topology,
    /// Computation-cost model.
    pub cost: CostModel,
    /// Per-round client behaviour.
    pub churn: ChurnModel,
    /// Message sizes (see [`WireSizes`]).
    pub sizes: WireSizes,
    /// Cleartext length per round (drives computation costs).
    pub total_len: usize,
    /// Pipeline window W: rounds kept in flight per batch.
    pub window: usize,
    /// Number of rounds to simulate.
    pub rounds: usize,
    /// Submission-window closure policy (§5.1): the driver schedules each
    /// round's `WindowClosed` event exactly as the policy dictates — count
    /// triggers, multiplier timers and hard deadlines all flow through the
    /// event queue.  Paper default: 95 % then 1.1×, 120 s hard deadline.
    pub policy: WindowPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// A configuration with the paper's defaults for the tunables.
    pub fn new(
        topology: Topology,
        churn: ChurnModel,
        total_len: usize,
        window: usize,
        rounds: usize,
    ) -> Self {
        SimConfig {
            topology,
            cost: CostModel::default(),
            churn,
            sizes: WireSizes::for_cleartext(total_len),
            total_len,
            window: window.max(1),
            rounds,
            policy: WindowPolicy::default(),
            seed: 0x51D,
        }
    }
}

/// What one simulated run measured.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Topology label.
    pub topology: String,
    /// Pipeline window used.
    pub window: usize,
    /// Rounds that ran to completion.
    pub rounds_completed: usize,
    /// Total virtual duration.
    pub duration: SimTime,
    /// Per-round latency (seconds) from batch open to last cleartext
    /// delivery of that round.
    pub round_latency: Stats,
    /// Per-round participant count: submissions that made it in before the
    /// window-closure policy fired.
    pub participants: Stats,
    /// Total protocol messages exchanged.
    pub messages: u64,
    /// Round throughput.
    pub rounds_per_sec: f64,
    /// Message throughput.
    pub messages_per_sec: f64,
}

/// Events flowing through the queue — one per protocol-message arrival or
/// phase completion.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SimEvent {
    /// A `ClientSubmit` reached the upstream server.
    SubmitArrived {
        /// Global round index within the group's run.
        round: usize,
    },
    /// A scheduled closure for a round's submission window fired: a fixed
    /// window elapsing, a policy hard deadline, an armed multiplier timer,
    /// or the degenerate all-offline round.  Ignored if the window already
    /// closed earlier (e.g. every client arrived before the deadline).
    WindowClosed {
        /// Round whose window closes.
        round: usize,
    },
    /// Commit/reveal/certify exchange finished; the round output is signed.
    Certified {
        /// Round whose output is signed.
        round: usize,
    },
    /// One client received the signed cleartext.
    Delivered {
        /// Round whose cleartext arrived.
        round: usize,
    },
}

/// A queue entry: which group the event belongs to, and the event.  One
/// shared queue interleaves all groups on a single virtual clock.
pub(crate) type GroupEvent = (usize, SimEvent);

#[derive(Clone, Copy, Debug, Default)]
struct RoundTrack {
    open_time: SimTime,
    online: usize,
    arrived: usize,
    /// A `FractionThenMultiplier` policy reached its fraction target and
    /// scheduled the multiplier closure (armed at most once per round).
    armed: bool,
    closed: bool,
    delivered: usize,
    complete: bool,
}

/// The per-group simulation state: one DC-net group's pipelined rounds.
/// All scheduling goes through a caller-owned [`EventQueue`] so many groups
/// can share one virtual clock; `gid` tags every scheduled event with the
/// group it belongs to.
pub(crate) struct GroupSim {
    cfg: SimConfig,
    rng: StdRng,
    rounds: Vec<RoundTrack>,
    /// When the server pipeline stage (pad expansion + XOR + signing
    /// compute) frees up — successive rounds serialize on it while their
    /// network exchanges overlap.
    server_busy_until: SimTime,
    batch_end: usize,
    batch_remaining: usize,
    completed: usize,
    messages: u64,
    latency: Stats,
    participants: Stats,
    metrics: SimMetrics,
}

impl GroupSim {
    pub(crate) fn new(cfg: SimConfig, metrics: SimMetrics) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let rounds = vec![RoundTrack::default(); cfg.rounds];
        GroupSim {
            cfg,
            rng,
            rounds,
            server_busy_until: 0,
            batch_end: 0,
            batch_remaining: 0,
            completed: 0,
            messages: 0,
            latency: Stats::new(),
            participants: Stats::new(),
            metrics,
        }
    }

    pub(crate) fn rounds_configured(&self) -> usize {
        self.cfg.rounds
    }

    pub(crate) fn finished(&self) -> bool {
        self.completed == self.cfg.rounds
    }

    /// Dispatch one of this group's events popped off the shared queue.
    pub(crate) fn handle(&mut self, gid: usize, queue: &mut EventQueue<GroupEvent>, ev: SimEvent) {
        match ev {
            SimEvent::SubmitArrived { round } => self.submit_arrived(gid, queue, round),
            SimEvent::WindowClosed { round } => {
                if !self.rounds[round].closed {
                    self.close_window(gid, queue, round);
                }
            }
            SimEvent::Certified { round } => self.certified(gid, queue, round),
            SimEvent::Delivered { round } => {
                self.rounds[round].delivered += 1;
                if self.rounds[round].delivered >= self.rounds[round].online {
                    self.complete_round(gid, queue, round);
                }
            }
        }
    }

    /// Open a batch of up to `window` rounds: every online client schedules
    /// its `ClientSubmit` transfers for all rounds of the batch, serialized
    /// back-to-back into its uplink (the "ciphertexts in flight").
    pub(crate) fn start_batch(
        &mut self,
        gid: usize,
        queue: &mut EventQueue<GroupEvent>,
        first: usize,
    ) {
        let end = (first + self.cfg.window).min(self.cfg.rounds);
        self.batch_end = end;
        self.batch_remaining = end - first;
        let now = queue.now();
        let n = self.cfg.topology.num_clients;
        let m = self.cfg.topology.num_servers.max(1);
        let compute = self.cfg.cost.client_round_compute(self.cfg.total_len, m);
        let stagger = self
            .cfg
            .topology
            .client_link
            .serialization_time(self.cfg.sizes.client_submit);
        for round in first..end {
            let mut online = 0usize;
            for _ in 0..n {
                match self.cfg.churn.sample(&mut self.rng) {
                    ClientBehavior::Offline => {}
                    ClientBehavior::Submits { delay } => {
                        online += 1;
                        let transfer = self
                            .cfg
                            .topology
                            .client_link
                            .transfer_time_jittered(self.cfg.sizes.client_submit, &mut self.rng);
                        let in_flight = (round - first) as SimTime * stagger;
                        self.messages += 1;
                        queue.schedule(
                            delay + compute + transfer + in_flight,
                            (gid, SimEvent::SubmitArrived { round }),
                        );
                    }
                }
            }
            self.rounds[round] = RoundTrack {
                open_time: now,
                online,
                ..RoundTrack::default()
            };
            // Time-driven closure per policy: a fixed window always elapses;
            // the adaptive policies get their hard deadline as a backstop
            // (arrivals close them earlier via `submit_arrived`).  A round
            // with every client offline closes immediately — there is
            // nothing to wait for and §3.7 requires empty rounds to
            // complete so the pipeline keeps draining.
            if online == 0 {
                queue.schedule(0, (gid, SimEvent::WindowClosed { round }));
            } else {
                match self.cfg.policy {
                    WindowPolicy::Fixed { window } => {
                        queue.schedule(window, (gid, SimEvent::WindowClosed { round }));
                    }
                    WindowPolicy::WaitAll { hard_deadline }
                    | WindowPolicy::FractionThenMultiplier { hard_deadline, .. } => {
                        queue.schedule(hard_deadline, (gid, SimEvent::WindowClosed { round }));
                    }
                }
            }
        }
    }

    /// One `ClientSubmit` arrived: feed the window-closure policy.
    /// `WaitAll` closes once every online client is in;
    /// `FractionThenMultiplier` arms its multiplier timer when the fraction
    /// target is reached; `Fixed` ignores arrivals entirely.
    fn submit_arrived(&mut self, gid: usize, queue: &mut EventQueue<GroupEvent>, round: usize) {
        let now = queue.now();
        let t = &mut self.rounds[round];
        t.arrived += 1;
        if t.closed {
            return;
        }
        let (arrived, armed, online, open_time) = (t.arrived, t.armed, t.online, t.open_time);
        match self.cfg.policy {
            WindowPolicy::Fixed { .. } => {}
            WindowPolicy::WaitAll { .. } => {
                if arrived >= online {
                    self.close_window(gid, queue, round);
                }
            }
            WindowPolicy::FractionThenMultiplier {
                multiplier,
                hard_deadline,
                ..
            } => {
                let needed = self
                    .cfg
                    .policy
                    .arrival_target(online)
                    .expect("fraction policy has a target");
                if !armed && arrived >= needed {
                    self.rounds[round].armed = true;
                    // Both candidate closures are *durations measured from
                    // this window's open*: the multiplier timer closes at
                    // `multiplier ×` the time the fraction target took, and
                    // the policy's hard deadline caps the window as a whole.
                    // Convert each to absolute simulated time before taking
                    // the minimum, so the armed timer can never outlive the
                    // `open_time + hard_deadline` backstop scheduled when
                    // the batch opened — regardless of how far from t=0 the
                    // batch opened (`open_time > 0` for every batch after
                    // the first) or how late the target arrival landed.
                    let elapsed = now.saturating_sub(open_time);
                    let timer_close =
                        open_time.saturating_add(((elapsed as f64) * multiplier) as SimTime);
                    let backstop = open_time.saturating_add(hard_deadline);
                    let close_at = timer_close.min(backstop).max(now);
                    queue.schedule_at(close_at, (gid, SimEvent::WindowClosed { round }));
                }
            }
        }
    }

    /// The submission window for `round` closed: run the server phase.  The
    /// compute stage (pad expansion over the participants, XOR, hashing,
    /// signing) is a serialized pipeline stage shared by consecutive rounds;
    /// the commit/reveal/certify exchanges of different rounds overlap.
    fn close_window(&mut self, gid: usize, queue: &mut EventQueue<GroupEvent>, round: usize) {
        let now = queue.now();
        let t = &mut self.rounds[round];
        t.closed = true;
        self.participants.push(t.arrived as f64);
        let participating = t.arrived.max(1);
        let m = self.cfg.topology.num_servers.max(1);
        let own = participating.div_ceil(m);
        let link = &self.cfg.topology.server_link;

        let start = now.max(self.server_busy_until);
        let compute = self
            .cfg
            .cost
            .server_round_compute(self.cfg.total_len, participating, own, m);
        self.server_busy_until = start + compute;

        // Inventory lists, then commitments, then full reveals, then
        // signatures — each an all-to-all exchange among the M servers.
        let inventory = link.rtt() + link.serialization_time(participating * 4 * m);
        let commits = link.latency_us + link.serialization_time(self.cfg.sizes.server_commit * m);
        let reveals = link.latency_us
            + link.serialization_time(self.cfg.sizes.server_reveal * m.saturating_sub(1));
        let certs = link.latency_us + link.serialization_time(self.cfg.sizes.certify * m);
        self.messages += 4 * (m as u64) * (m as u64);

        let done = start + compute + inventory + commits + reveals + certs;
        queue.schedule_at(done, (gid, SimEvent::Certified { round }));
    }

    /// The round output is certified: push the signed cleartext to every
    /// online client over its downlink.
    fn certified(&mut self, gid: usize, queue: &mut EventQueue<GroupEvent>, round: usize) {
        let online = self.rounds[round].online;
        if online == 0 {
            self.complete_round(gid, queue, round);
            return;
        }
        self.messages += online as u64;
        for _ in 0..online {
            let transfer = self
                .cfg
                .topology
                .client_link
                .transfer_time_jittered(self.cfg.sizes.cleartext_push, &mut self.rng);
            queue.schedule(transfer, (gid, SimEvent::Delivered { round }));
        }
    }

    fn complete_round(&mut self, gid: usize, queue: &mut EventQueue<GroupEvent>, round: usize) {
        let t = &mut self.rounds[round];
        if t.complete {
            return;
        }
        t.complete = true;
        self.completed += 1;
        let secs = to_secs(queue.now() - t.open_time);
        self.latency.push(secs);
        self.metrics.rounds_completed.inc();
        self.metrics.round_latency.observe(virtual_micros(secs));
        self.batch_remaining -= 1;
        // Pipeline boundary: the next batch opens once every round of the
        // current batch has delivered (layout/expulsion changes take effect
        // here in the real engine).
        if self.batch_remaining == 0 && self.batch_end < self.cfg.rounds {
            self.start_batch(gid, queue, self.batch_end);
        }
    }

    /// Fold this group's measurements into a report; `duration` is the
    /// caller's virtual clock (the shared queue's end time).
    pub(crate) fn report(self, duration: SimTime) -> SimReport {
        let duration = duration.max(1);
        let secs = to_secs(duration);
        SimReport {
            topology: self.cfg.topology.name.clone(),
            window: self.cfg.window,
            rounds_completed: self.completed,
            duration,
            round_latency: self.latency,
            participants: self.participants,
            messages: self.messages,
            rounds_per_sec: self.completed as f64 / secs,
            messages_per_sec: self.messages as f64 / secs,
        }
    }
}

/// The event-driven pipelined round driver for a single group.
pub struct SimDriver {
    queue: EventQueue<GroupEvent>,
    group: GroupSim,
}

impl SimDriver {
    /// Set up a driver for one configuration (detached instruments).
    pub fn new(cfg: SimConfig) -> Self {
        SimDriver::with_metrics(cfg, SimMetrics::default())
    }

    /// Set up a driver recording into `metrics` (shared instruments let
    /// one registry aggregate a whole sweep).
    pub fn with_metrics(cfg: SimConfig, metrics: SimMetrics) -> Self {
        SimDriver {
            queue: EventQueue::new(),
            group: GroupSim::new(cfg, metrics),
        }
    }

    /// Run the configured number of rounds and report.
    pub fn run(mut self) -> SimReport {
        if self.group.rounds_configured() > 0 {
            self.group.start_batch(0, &mut self.queue, 0);
        }
        while let Some((_, (_, event))) = self.queue.pop() {
            self.group.handle(0, &mut self.queue, event);
            if self.group.finished() {
                break;
            }
        }
        let duration = self.queue.now();
        self.group.report(duration)
    }
}

/// Convenience wrapper: simulate one configuration.
pub fn simulate(cfg: SimConfig) -> SimReport {
    SimDriver::new(cfg).run()
}

/// Simulate one configuration with instruments registered on `registry`
/// (see [`SimMetrics::registered`] for the metric names).
pub fn simulate_with_metrics(cfg: SimConfig, registry: &Registry) -> SimReport {
    SimDriver::with_metrics(cfg, SimMetrics::registered(registry)).run()
}

/// Virtual seconds → whole microseconds for histogram recording.
fn virtual_micros(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e6) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize) -> SimConfig {
        SimConfig::new(
            Topology::deterlab(100, 8),
            ChurnModel::deterlab(),
            4_000,
            window,
            24,
        )
    }

    #[test]
    fn all_rounds_complete_and_latency_is_sane() {
        let report = simulate(config(1));
        assert_eq!(report.rounds_completed, 24);
        assert_eq!(report.round_latency.len(), 24);
        let mean = report.round_latency.mean();
        // §5.2: small DeterLab groups run sub-second to ~1 s rounds.
        assert!(mean > 0.05 && mean < 5.0, "mean latency {mean}");
        assert!(report.messages > 0);
    }

    #[test]
    fn registry_histogram_tracks_the_report() {
        let registry = Registry::new();
        let report = simulate_with_metrics(config(2), &registry);
        assert_eq!(
            registry.counter_value("dissent_sim_rounds_total", &[]),
            Some(u64::try_from(report.rounds_completed).unwrap())
        );
        let hist = registry.latency_histogram("dissent_sim_round_latency_seconds", "");
        assert_eq!(
            hist.count(),
            u64::try_from(report.round_latency.len()).unwrap()
        );
        // Bucket-interpolated quantiles track the exact per-sample stats
        // within a bucket's width.
        let p50 = hist.quantile(0.5);
        assert!(p50 > 0.0, "p50 {p50}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(config(2));
        let b = simulate(config(2));
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.round_latency.samples(), b.round_latency.samples());
    }

    #[test]
    fn pipelining_raises_throughput() {
        // Figure 8's point: with W rounds in flight, the client-side latency
        // is amortized over the batch, so rounds/sec rises with the window.
        let w1 = simulate(config(1));
        let w4 = simulate(config(4));
        assert!(
            w4.rounds_per_sec > 1.5 * w1.rounds_per_sec,
            "W=4 {} rounds/s vs W=1 {} rounds/s",
            w4.rounds_per_sec,
            w1.rounds_per_sec
        );
        // Same work, less wall-clock: message throughput rises too.
        assert!(w4.messages_per_sec > w1.messages_per_sec);
    }

    #[test]
    fn wide_area_latency_dominates_and_pipelining_still_helps() {
        let mk = |w| {
            SimConfig::new(
                Topology::planetlab(200, 8),
                ChurnModel::planetlab(),
                4_000,
                w,
                16,
            )
        };
        let w1 = simulate(mk(1));
        let w8 = simulate(mk(8));
        assert_eq!(w1.rounds_completed, 16);
        assert!(w8.rounds_per_sec > w1.rounds_per_sec);
    }

    #[test]
    fn window_policy_drives_closure() {
        // Straggler-heavy wide-area churn (5 % Pareto tail): the closure
        // policy visibly changes what the simulator reports.  A flat
        // 95 %-cutoff is exactly FractionThenMultiplier with multiplier 1.0
        // (close the instant the 95th submission lands); giving stragglers
        // 5x the elapsed time must admit strictly more of them.
        let run = |policy: WindowPolicy| {
            let mut cfg = SimConfig::new(
                Topology::planetlab(100, 8),
                ChurnModel::planetlab(),
                4_000,
                1,
                8,
            );
            cfg.policy = policy;
            simulate(cfg)
        };
        let ftm = |multiplier: f64| WindowPolicy::FractionThenMultiplier {
            fraction: 0.95,
            multiplier,
            hard_deadline: 120 * crate::sim::SECOND,
        };
        let flat = run(ftm(1.0));
        let slack = run(ftm(5.0));
        assert_eq!(flat.rounds_completed, 8);
        assert_eq!(slack.rounds_completed, 8);
        assert!(
            slack.participants.mean() > flat.participants.mean(),
            "5x slack {} vs flat {} participants",
            slack.participants.mean(),
            flat.participants.mean()
        );
        assert!(slack.round_latency.mean() >= flat.round_latency.mean());
    }

    #[test]
    fn wait_all_pays_for_stragglers_the_cutoff_avoids() {
        // Figure 6's comparison: waiting for everyone includes at least as
        // many participants but costs far more latency than the paper's
        // 95 %-then-1.1x policy under the same churn.
        let run = |policy: WindowPolicy| {
            let mut cfg = SimConfig::new(
                Topology::planetlab(100, 8),
                ChurnModel::planetlab(),
                4_000,
                1,
                8,
            );
            cfg.policy = policy;
            simulate(cfg)
        };
        let wait_all = run(WindowPolicy::WaitAll {
            hard_deadline: 120 * crate::sim::SECOND,
        });
        let cutoff = run(WindowPolicy::default());
        assert_eq!(wait_all.rounds_completed, 8);
        assert_eq!(cutoff.rounds_completed, 8);
        assert!(wait_all.participants.mean() >= cutoff.participants.mean());
        assert!(
            wait_all.round_latency.mean() > 2.0 * cutoff.round_latency.mean(),
            "wait-all {} s vs cutoff {} s",
            wait_all.round_latency.mean(),
            cutoff.round_latency.mean()
        );
    }

    #[test]
    fn fixed_window_closes_on_the_clock() {
        // A tiny fixed window ignores arrivals entirely: it admits fewer
        // participants than the adaptive default and its closure time does
        // not react to stragglers.
        let run = |policy: WindowPolicy| {
            let mut cfg = SimConfig::new(
                Topology::planetlab(100, 8),
                ChurnModel::planetlab(),
                4_000,
                1,
                8,
            );
            cfg.policy = policy;
            simulate(cfg)
        };
        let fixed = run(WindowPolicy::Fixed {
            window: crate::sim::SECOND,
        });
        let adaptive = run(WindowPolicy::default());
        assert_eq!(fixed.rounds_completed, 8);
        assert!(
            fixed.participants.mean() < adaptive.participants.mean(),
            "fixed {} vs adaptive {} participants",
            fixed.participants.mean(),
            adaptive.participants.mean()
        );
    }

    #[test]
    fn total_churn_does_not_deadlock() {
        let mut cfg = config(4);
        cfg.churn = ChurnModel::reliable_lan().with_dos_fraction(1.0);
        let report = simulate(cfg);
        assert_eq!(report.rounds_completed, 24, "empty rounds must still close");
    }

    #[test]
    fn server_pipeline_serializes_compute() {
        // With an expensive server phase and cheap links, W=4 cannot be more
        // than ~4x faster than W=1 — the serialized compute stage bounds it.
        let mut w1 = config(1);
        w1.cost.server_parallelism = 0.05;
        let mut w4 = config(4);
        w4.cost.server_parallelism = 0.05;
        let r1 = simulate(w1);
        let r4 = simulate(w4);
        assert!(r4.rounds_per_sec < 5.0 * r1.rounds_per_sec);
    }

    #[test]
    fn armed_multiplier_timer_never_outlives_hard_deadline() {
        // Regression for the close_at units audit (ISSUE 7): with
        // `open_time > 0` (every batch after the first opens mid-run) and a
        // multiplier large enough that `elapsed × multiplier` exceeds the
        // policy's hard deadline, the armed timer must fire at
        // `open_time + hard_deadline` — the deadline is measured from the
        // window's open, not from t=0 and not from the arrival.
        let hard = 10 * crate::sim::SECOND;
        let open = 7 * crate::sim::SECOND;
        let mut cfg = config(1);
        cfg.policy = WindowPolicy::FractionThenMultiplier {
            fraction: 0.5,
            multiplier: 100.0,
            hard_deadline: hard,
        };
        let mut queue = EventQueue::new();
        let mut group = GroupSim::new(cfg, SimMetrics::default());
        group.rounds[0] = RoundTrack {
            open_time: open,
            online: 2,
            ..RoundTrack::default()
        };
        // Advance the virtual clock to one second past the (late) open by
        // draining a marker event, then land the fraction-target arrival.
        queue.schedule_at(
            open + crate::sim::SECOND,
            (0, SimEvent::SubmitArrived { round: 9 }),
        );
        queue.pop().unwrap();
        group.submit_arrived(0, &mut queue, 0);
        assert!(group.rounds[0].armed, "fraction target must arm the timer");
        // elapsed = 1 s, multiplier 100 ⇒ naive timer = open + 100 s; the
        // scheduled closure must instead sit exactly at open + hard.
        let (at, (gid, event)) = queue.pop().unwrap();
        assert_eq!(gid, 0);
        assert!(matches!(event, SimEvent::WindowClosed { round: 0 }));
        assert_eq!(at, open + hard);
    }
}
