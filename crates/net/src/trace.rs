//! Synthetic PlanetLab submission-time traces.
//!
//! To pick a window-closure policy, the paper's authors collected a 24-hour
//! trace from a 500+ client PlanetLab deployment with a static 120-second
//! window, then replayed it against candidate policies (§5.1, Figure 6).
//! The original trace is not available, so this module generates a synthetic
//! trace with the same qualitative structure: a population of clients whose
//! per-round submission delays follow a heavy-tailed distribution, a few
//! percent of clients offline per round, and slow drift in the online
//! population over the (simulated) day.

use crate::churn::{ChurnModel, ClientBehavior};
use crate::sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One round of the trace: every client's behaviour.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceRound {
    /// Round index within the trace.
    pub round: u64,
    /// Per-client behaviour (index = client id).
    pub clients: Vec<ClientBehavior>,
}

impl TraceRound {
    /// Delays of the clients that submitted, unsorted.
    pub fn submission_delays(&self) -> Vec<SimTime> {
        self.clients.iter().filter_map(|c| c.delay()).collect()
    }

    /// Number of clients that submitted at all.
    pub fn submitted(&self) -> usize {
        self.clients.iter().filter(|c| c.delay().is_some()).count()
    }
}

/// A multi-round submission trace for a fixed client population.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubmissionTrace {
    /// The rounds of the trace, in order.
    pub rounds: Vec<TraceRound>,
    /// Nominal population size.
    pub num_clients: usize,
}

/// Parameters of the synthetic trace generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of clients in the deployment (the paper used "over 500").
    pub num_clients: usize,
    /// Number of rounds to generate.
    pub num_rounds: usize,
    /// Base churn/straggler model.
    pub churn: ChurnModel,
    /// Amplitude of the diurnal drift in the offline probability (0–1).
    pub diurnal_amplitude: f64,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_clients: 560,
            num_rounds: 400,
            churn: ChurnModel::planetlab(),
            diurnal_amplitude: 0.02,
            seed: 0xD15C0,
        }
    }
}

/// Generate a synthetic submission trace.
pub fn generate(config: &TraceConfig) -> SubmissionTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rounds = Vec::with_capacity(config.num_rounds);
    for r in 0..config.num_rounds {
        // Slow sinusoidal drift of the offline probability across the trace,
        // standing in for the diurnal variation the paper observed over its
        // 24-hour collection window.
        let phase = (r as f64 / config.num_rounds.max(1) as f64) * std::f64::consts::TAU;
        let drift = config.diurnal_amplitude * (phase.sin() + 1.0) / 2.0;
        let model = ChurnModel {
            offline_prob: (config.churn.offline_prob + drift).clamp(0.0, 1.0),
            ..config.churn.clone()
        };
        let mut clients = Vec::with_capacity(config.num_clients);
        for _ in 0..config.num_clients {
            clients.push(model.sample(&mut rng));
        }
        // Occasionally a correlated burst of failures (a PlanetLab site going
        // down) takes a contiguous block of clients offline together.
        if rng.gen_bool(0.02) {
            let start = rng.gen_range(0..config.num_clients.max(1));
            let len = rng.gen_range(1..=(config.num_clients / 20).max(1));
            for c in clients.iter_mut().skip(start).take(len) {
                *c = ClientBehavior::Offline;
            }
        }
        rounds.push(TraceRound {
            round: r as u64,
            clients,
        });
    }
    SubmissionTrace {
        rounds,
        num_clients: config.num_clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::to_secs;

    #[test]
    fn trace_has_requested_shape() {
        let config = TraceConfig {
            num_clients: 100,
            num_rounds: 50,
            ..TraceConfig::default()
        };
        let trace = generate(&config);
        assert_eq!(trace.rounds.len(), 50);
        assert!(trace.rounds.iter().all(|r| r.clients.len() == 100));
        assert_eq!(trace.num_clients, 100);
    }

    #[test]
    fn trace_is_reproducible_for_a_seed() {
        let config = TraceConfig {
            num_clients: 50,
            num_rounds: 20,
            ..TraceConfig::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        for (ra, rb) in a.rounds.iter().zip(b.rounds.iter()) {
            assert_eq!(ra.clients, rb.clients);
        }
        let other = generate(&TraceConfig { seed: 1, ..config });
        assert_ne!(a.rounds[0].clients, other.rounds[0].clients);
    }

    #[test]
    fn most_clients_submit_most_rounds() {
        let trace = generate(&TraceConfig {
            num_clients: 500,
            num_rounds: 100,
            ..TraceConfig::default()
        });
        let avg_submitted: f64 = trace
            .rounds
            .iter()
            .map(|r| r.submitted() as f64)
            .sum::<f64>()
            / trace.rounds.len() as f64;
        assert!(avg_submitted > 400.0, "avg submitted = {avg_submitted}");
    }

    #[test]
    fn trace_contains_heavy_stragglers() {
        // The point of the Figure-6 experiment is that waiting for the
        // slowest client is an order of magnitude worse than cutting off at
        // 95%; the trace must therefore contain delays far beyond the body.
        let trace = generate(&TraceConfig::default());
        let mut worst_ratio: f64 = 0.0;
        for round in &trace.rounds {
            let mut delays: Vec<f64> = round
                .submission_delays()
                .iter()
                .map(|&d| to_secs(d))
                .collect();
            if delays.len() < 20 {
                continue;
            }
            delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p95 = delays[(delays.len() as f64 * 0.95) as usize - 1];
            let max = *delays.last().unwrap();
            worst_ratio = worst_ratio.max(max / p95.max(1e-6));
        }
        assert!(worst_ratio > 5.0, "worst straggler ratio = {worst_ratio}");
    }
}
