//! Property-based tests for the cryptographic substrate.

use dissent_crypto::bigint::BigUint;
use dissent_crypto::group::{Group, Scalar};
use dissent_crypto::padding::{self, Decoded};
use dissent_crypto::prng::DetPrng;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn big(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- bigint arithmetic cross-checked against u128 ----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(big(a as u128).add(&big(b as u128)), big(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(big(a as u128).mul(&big(b as u128)), big(a as u128 * b as u128));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(big(hi).sub(&big(lo)), big(hi - lo));
        if hi != lo {
            prop_assert!(big(lo).checked_sub(&big(hi)).is_none());
        }
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(q, big(a / b));
        prop_assert_eq!(r, big(a % b));
    }

    #[test]
    fn div_rem_reconstructs_large(a_hex in "[1-9a-f][0-9a-f]{10,80}", b_hex in "[1-9a-f][0-9a-f]{5,40}") {
        let a = BigUint::from_hex(&a_hex).unwrap();
        let b = BigUint::from_hex(&b_hex).unwrap();
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&data);
        prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v.clone());
        prop_assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
    }

    #[test]
    fn shifts_match_u128(a in any::<u64>(), s in 0usize..60) {
        prop_assert_eq!(big(a as u128).shl(s), big((a as u128) << s));
        prop_assert_eq!(big(a as u128).shr(s), big((a as u128) >> s));
    }

    #[test]
    fn modpow_agrees_with_two_step(a in 2u64.., e1 in 0u64..1000, e2 in 0u64..1000) {
        // a^(e1+e2) == a^e1 * a^e2 (mod p)
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(a);
        let lhs = a.modpow(&BigUint::from_u64(e1 + e2), &p);
        let rhs = a.modpow(&BigUint::from_u64(e1), &p)
            .mod_mul(&a.modpow(&BigUint::from_u64(e2), &p), &p);
        prop_assert_eq!(lhs, rhs);
    }

    // ---- group laws ----

    #[test]
    fn group_exponent_homomorphism(seed in any::<u64>()) {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = group.random_scalar(&mut rng);
        let b = group.random_scalar(&mut rng);
        let lhs = group.exp_base(&group.scalar_add(&a, &b));
        let rhs = group.mul(&group.exp_base(&a), &group.exp_base(&b));
        prop_assert_eq!(lhs, rhs);
        let prod = group.exp_base(&group.scalar_mul(&a, &b));
        prop_assert_eq!(group.exp(&group.exp_base(&a), &b), prod);
    }

    #[test]
    fn scalar_inverse_law(seed in any::<u64>()) {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = group.random_scalar(&mut rng);
        if let Some(inv) = group.scalar_inv(&a) {
            prop_assert_eq!(group.scalar_mul(&a, &inv), Scalar::one());
        }
    }

    #[test]
    fn elgamal_round_trip(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..28)) {
        use dissent_crypto::{DhKeyPair, ElGamal};
        let group = Group::testing_256();
        let eg = ElGamal::new(group.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = DhKeyPair::generate(&group, &mut rng);
        let ct = eg.encrypt_bytes(&mut rng, kp.public(), &msg).unwrap();
        prop_assert_eq!(eg.decrypt_bytes(kp.secret(), &ct).unwrap(), msg);
    }

    #[test]
    fn schnorr_sign_verify(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        use dissent_crypto::schnorr::{self, SigningKeyPair};
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, &msg);
        prop_assert!(schnorr::verify(&group, kp.public(), &msg, &sig));
        let mut other = msg.clone();
        other.push(0x7f);
        prop_assert!(!schnorr::verify(&group, kp.public(), &other, &sig));
    }

    // ---- padding ----

    #[test]
    fn padding_round_trip(msg in proptest::collection::vec(any::<u8>(), 0..300), extra in 0usize..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = msg.len() + padding::OVERHEAD + extra;
        let wire = padding::encode(&mut rng, &msg, slot).unwrap();
        prop_assert_eq!(wire.len(), slot);
        prop_assert_eq!(padding::decode(&wire), Decoded::Message(msg));
    }

    #[test]
    fn padding_detects_any_single_bit_flip(msg in proptest::collection::vec(any::<u8>(), 1..100), bit_sel in any::<u32>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = msg.len() + padding::OVERHEAD;
        let wire = padding::encode(&mut rng, &msg, slot).unwrap();
        let bit = (bit_sel as usize) % (slot * 8);
        let mut corrupted = wire.clone();
        corrupted[bit / 8] ^= 1 << (7 - bit % 8);
        prop_assert_ne!(padding::decode(&corrupted), Decoded::Message(msg));
    }

    // ---- PRNG determinism ----

    #[test]
    fn prng_chunking_invariant(key in any::<[u8; 32]>(), splits in proptest::collection::vec(1usize..100, 1..6)) {
        let total: usize = splits.iter().sum();
        let whole = DetPrng::new(&key, b"prop").bytes(total);
        let mut chunked = Vec::new();
        let mut prng = DetPrng::new(&key, b"prop");
        for s in &splits {
            chunked.extend(prng.bytes(*s));
        }
        prop_assert_eq!(whole, chunked);
    }
}
