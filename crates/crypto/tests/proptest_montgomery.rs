//! Property-based equivalence tests for the Montgomery exponentiation
//! engine: every accelerated path (`mont_mul`, window/sliding exponentiation,
//! fixed-base tables, combs, simultaneous double exponentiation) must agree
//! with the naive square-and-multiply reference across all four group
//! parameter sets (256 → 2048 bits).

use dissent_crypto::bigint::BigUint;
use dissent_crypto::group::Group;
use dissent_crypto::montgomery::MontgomeryCtx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four parameter sets, smallest to largest.
fn groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

/// A deterministic value below `p`, derived from a seed.
fn value_below(p: &BigUint, seed: u64) -> BigUint {
    let mut rng = StdRng::seed_from_u64(seed);
    BigUint::random_below(&mut rng, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mont_mul_matches_mod_mul_all_sizes(seed in any::<u64>()) {
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let a = value_below(p, seed);
            let b = value_below(p, seed.wrapping_add(1));
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            prop_assert_eq!(got, a.mod_mul(&b, p));
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul_all_sizes(seed in any::<u64>()) {
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let a = ctx.to_mont(&value_below(p, seed));
            prop_assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
        }
    }

    #[test]
    fn sliding_window_pow_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        // Moderate exponents keep the naive reference fast even at 2048 bits
        // while still exercising every modulus width; full-width exponents
        // are covered by the deterministic test below.
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            prop_assert_eq!(ctx.pow(&base, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn fixed_window_table_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            let table = ctx.precompute(&base);
            prop_assert_eq!(ctx.pow_with_table(&table, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn comb_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            let comb = ctx.precompute_comb(&base, p.bit_len());
            prop_assert_eq!(ctx.pow_comb(&comb, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn pow2_matches_naive_product(seed in any::<u64>(), ea_bits in 1usize..150, eb_bits in 1usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let g = BigUint::random_below(&mut rng, p);
            let h = BigUint::random_below(&mut rng, p);
            let a = BigUint::random_bits(&mut rng, ea_bits);
            let b = BigUint::random_bits(&mut rng, eb_bits);
            let expect = g
                .modpow_naive(&a, p)
                .mod_mul(&h.modpow_naive(&b, p), p);
            prop_assert_eq!(ctx.pow2(&g, &a, &h, &b), expect);
        }
    }

    #[test]
    fn modpow_delegation_is_transparent(seed in any::<u64>(), exp_bits in 32usize..200) {
        // Public `modpow` (which routes through Montgomery for odd moduli)
        // must be indistinguishable from the naive reference.
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            prop_assert_eq!(base.modpow(&e, p), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn group_exp_apis_agree(seed in any::<u64>()) {
        // Group::exp, Group::exp_base and Group::multi_exp against each
        // other and the exponent laws, on the fast test group.
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);
        let a = group.exp_base(&x);
        prop_assert_eq!(&a, &group.exp(&group.generator(), &x));
        let b = group.exp_base(&y);
        let multi = group.multi_exp(&a, &y, &b, &x);
        prop_assert_eq!(&multi, &group.mul(&group.exp(&a, &y), &group.exp(&b, &x)));
    }
}

/// Full-width exponents and algebraic edge cases, once per parameter set
/// (deterministic so the slow 2048-bit naive reference runs a bounded number
/// of times).
#[test]
fn full_width_exponent_and_edge_cases() {
    for group in groups() {
        let p = group.modulus();
        let ctx = MontgomeryCtx::new(p).unwrap();
        let one = BigUint::one();
        let p_minus_1 = p.sub(&one);
        let base = value_below(p, 0xFEED);

        // One full-width exponent (the group order) per size.
        let q = group.order();
        assert_eq!(ctx.pow(&base, q), base.modpow_naive(q, p));

        // Exponent 0 and 1.
        assert_eq!(ctx.pow(&base, &BigUint::zero()), one);
        assert_eq!(ctx.pow(&base, &one), base);

        // Base ≡ 0 (both the canonical 0 and the unreduced p).
        assert_eq!(
            ctx.pow(&BigUint::zero(), &BigUint::from_u64(5)),
            BigUint::zero()
        );
        assert_eq!(ctx.pow(p, &BigUint::from_u64(5)), BigUint::zero());
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), one);

        // Base p−1 has order 2; exponent p−1 is Fermat's little theorem.
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(2)), one);
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(3)), p_minus_1);
        assert_eq!(ctx.pow(&base, &p_minus_1), one);
    }
}
