//! Property-based equivalence tests for the Montgomery exponentiation
//! engine: every accelerated path (`mont_mul`, window/sliding exponentiation,
//! fixed-base tables, combs, simultaneous double exponentiation) must agree
//! with the naive square-and-multiply reference across all four group
//! parameter sets (256 → 2048 bits).

use dissent_crypto::bigint::BigUint;
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_crypto::montgomery::{pippenger_window, MontgomeryCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four parameter sets, smallest to largest.
fn groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

/// A deterministic value below `p`, derived from a seed.
fn value_below(p: &BigUint, seed: u64) -> BigUint {
    let mut rng = StdRng::seed_from_u64(seed);
    BigUint::random_below(&mut rng, p)
}

/// `acc · b^e` — the naive fold step for multi-exponentiation references.
fn g_mul_exp(group: &Group, acc: &Element, b: &Element, e: &Scalar) -> Element {
    group.mul(acc, &group.exp(b, e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mont_mul_matches_mod_mul_all_sizes(seed in any::<u64>()) {
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let a = value_below(p, seed);
            let b = value_below(p, seed.wrapping_add(1));
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            prop_assert_eq!(got, a.mod_mul(&b, p));
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul_all_sizes(seed in any::<u64>()) {
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let a = ctx.to_mont(&value_below(p, seed));
            prop_assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
        }
    }

    #[test]
    fn sliding_window_pow_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        // Moderate exponents keep the naive reference fast even at 2048 bits
        // while still exercising every modulus width; full-width exponents
        // are covered by the deterministic test below.
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            prop_assert_eq!(ctx.pow(&base, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn fixed_window_table_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            let table = ctx.precompute(&base);
            prop_assert_eq!(ctx.pow_with_table(&table, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn comb_matches_naive(seed in any::<u64>(), exp_bits in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            let comb = ctx.precompute_comb(&base, p.bit_len());
            prop_assert_eq!(ctx.pow_comb(&comb, &e), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn pow2_matches_naive_product(seed in any::<u64>(), ea_bits in 1usize..150, eb_bits in 1usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let g = BigUint::random_below(&mut rng, p);
            let h = BigUint::random_below(&mut rng, p);
            let a = BigUint::random_bits(&mut rng, ea_bits);
            let b = BigUint::random_bits(&mut rng, eb_bits);
            let expect = g
                .modpow_naive(&a, p)
                .mod_mul(&h.modpow_naive(&b, p), p);
            prop_assert_eq!(ctx.pow2(&g, &a, &h, &b), expect);
        }
    }

    #[test]
    fn modpow_delegation_is_transparent(seed in any::<u64>(), exp_bits in 32usize..200) {
        // Public `modpow` (which routes through Montgomery for odd moduli)
        // must be indistinguishable from the naive reference.
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let base = BigUint::random_below(&mut rng, p);
            let e = BigUint::random_bits(&mut rng, exp_bits);
            prop_assert_eq!(base.modpow(&e, p), base.modpow_naive(&e, p));
        }
    }

    #[test]
    fn pow_n_matches_naive_fold_all_sizes(seed in any::<u64>(), n in 1usize..=8, exp_bits in 1usize..160) {
        // `pow_n` (dispatching Straus) against the fold of naive
        // exponentiations, at every modulus width.
        let mut rng = StdRng::seed_from_u64(seed);
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let bases: Vec<BigUint> = (0..n).map(|_| BigUint::random_below(&mut rng, p)).collect();
            let exps: Vec<BigUint> = (0..n).map(|_| BigUint::random_bits(&mut rng, exp_bits)).collect();
            let base_refs: Vec<&BigUint> = bases.iter().collect();
            let exp_refs: Vec<&BigUint> = exps.iter().collect();
            let expect = bases.iter().zip(&exps).fold(BigUint::one(), |acc, (b, e)| {
                acc.mod_mul(&b.modpow_naive(e, p), p)
            });
            prop_assert_eq!(ctx.pow_n(&base_refs, &exp_refs), expect);
        }
    }

    #[test]
    fn pow_n_pippenger_matches_naive_fold(seed in any::<u64>(), n in 1usize..=12, c in 1usize..=9) {
        // The bucketed path explicitly, at every window width (the `pow_n`
        // dispatcher would only pick it for large n).
        let mut rng = StdRng::seed_from_u64(seed);
        let group = Group::testing_256();
        let p = group.modulus();
        let ctx = MontgomeryCtx::new(p).unwrap();
        let bases: Vec<BigUint> = (0..n).map(|_| BigUint::random_below(&mut rng, p)).collect();
        let exps: Vec<BigUint> = (0..n).map(|_| BigUint::random_below(&mut rng, p)).collect();
        let base_refs: Vec<&BigUint> = bases.iter().collect();
        let exp_refs: Vec<&BigUint> = exps.iter().collect();
        let expect = bases.iter().zip(&exps).fold(BigUint::one(), |acc, (b, e)| {
            acc.mod_mul(&b.modpow_naive(e, p), p)
        });
        prop_assert_eq!(ctx.pow_n_pippenger(&base_refs, &exp_refs, c), expect);
    }

    #[test]
    fn multi_exp_n_matches_fold_with_degenerate_exponents(seed in any::<u64>(), n in 1usize..=8) {
        // Group-level multi_exp_n with a mix of random, zero, one, and q-1
        // exponents plus deliberately repeated bases (the dedup path).
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let distinct: Vec<Element> = (0..3)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let q_minus_1 = group.scalar_neg(&Scalar::one());
        let mut bases: Vec<Element> = Vec::new();
        let mut exps: Vec<Scalar> = Vec::new();
        for i in 0..n {
            // Repeat bases round-robin so every batch larger than 3 hits the
            // collapse-by-summing path.
            bases.push(distinct[i % distinct.len()].clone());
            exps.push(match i % 4 {
                0 => group.random_scalar(&mut rng),
                1 => Scalar::zero(),
                2 => Scalar::one(),
                _ => q_minus_1.clone(),
            });
        }
        let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(exps.iter()).collect();
        let expect = bases
            .iter()
            .zip(&exps)
            .fold(group.identity(), |acc, (b, e)| g_mul_exp(&group, &acc, b, e));
        prop_assert_eq!(group.multi_exp_n(&pairs), expect);
    }

    #[test]
    fn multi_exp_n_large_batch_crosses_into_pippenger(seed in any::<u64>()) {
        // A batch big enough that the dispatcher takes the bucketed path
        // (asserted via the cost model), still equal to the fold of exps.
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 600;
        prop_assert!(pippenger_window(n, group.order().bit_len()).is_some());
        let bases: Vec<Element> = (0..n)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let exps: Vec<Scalar> = (0..n).map(|_| group.random_scalar(&mut rng)).collect();
        let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(exps.iter()).collect();
        let expect = bases
            .iter()
            .zip(&exps)
            .fold(group.identity(), |acc, (b, e)| g_mul_exp(&group, &acc, b, e));
        prop_assert_eq!(group.multi_exp_n(&pairs), expect);
    }

    #[test]
    fn exp_mul_batch_matches_per_entry_mul_exp(seed in any::<u64>()) {
        // The batched fixed-base multiply-exponentiate (the shuffle
        // prover's re-randomization engine) against the per-entry
        // `mul(f, exp(base, e))` reference, on every parameter set, with
        // degenerate exponents mixed in, for the generator, a registered
        // base, an unregistered base above the comb-build threshold, and an
        // unregistered base below it (the per-entry fallback).
        for group in groups() {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = group.order();
            let base = group.exp_base(&group.random_scalar(&mut rng));
            let factors: Vec<Element> = (0..5)
                .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
                .collect();
            let mut exps: Vec<Scalar> = (0..3).map(|_| group.random_scalar(&mut rng)).collect();
            exps.push(Scalar::zero());
            exps.push(Scalar::from_biguint(q.sub(&BigUint::one()), &group));
            let pairs: Vec<(&Element, &Scalar)> =
                factors.iter().zip(exps.iter()).collect();
            let gen = group.generator();
            for b in [&gen, &base] {
                let expected: Vec<Element> = pairs
                    .iter()
                    .map(|(f, e)| group.mul(f, &group.exp(b, e)))
                    .collect();
                prop_assert_eq!(group.exp_mul_batch(b, &pairs), expected.clone());
                // Small batch (below the comb-build threshold) hits the
                // per-entry fallback for unregistered bases.
                prop_assert_eq!(group.exp_mul_batch(b, &pairs[..2]), expected[..2].to_vec());
                group.register_fixed_base(b);
                prop_assert_eq!(group.exp_mul_batch(b, &pairs), expected);
            }
            prop_assert_eq!(group.exp_mul_batch(&base, &[]), Vec::<Element>::new());
        }
    }

    #[test]
    fn pow_comb_mont_stays_in_domain_consistently(seed in any::<u64>()) {
        // pow_comb == from_mont(pow_comb_mont) by construction; check the
        // domain form also multiplies correctly against another factor.
        for group in groups() {
            let p = group.modulus();
            let ctx = MontgomeryCtx::new(p).unwrap();
            let base = value_below(p, seed | 1);
            let comb = ctx.precompute_comb(&base, p.bit_len());
            let e = value_below(p, seed.wrapping_add(9));
            let f = value_below(p, seed.wrapping_add(10));
            let via_mont = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&f), &ctx.pow_comb_mont(&comb, &e)));
            prop_assert_eq!(&via_mont, &f.mod_mul(&ctx.pow_comb(&comb, &e), p));
        }
    }

    #[test]
    fn group_exp_apis_agree(seed in any::<u64>()) {
        // Group::exp, Group::exp_base and Group::multi_exp against each
        // other and the exponent laws, on the fast test group.
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);
        let a = group.exp_base(&x);
        prop_assert_eq!(&a, &group.exp(&group.generator(), &x));
        let b = group.exp_base(&y);
        let multi = group.multi_exp(&a, &y, &b, &x);
        prop_assert_eq!(&multi, &group.mul(&group.exp(&a, &y), &group.exp(&b, &x)));
    }
}

/// Full-width exponents and algebraic edge cases, once per parameter set
/// (deterministic so the slow 2048-bit naive reference runs a bounded number
/// of times).
#[test]
fn full_width_exponent_and_edge_cases() {
    for group in groups() {
        let p = group.modulus();
        let ctx = MontgomeryCtx::new(p).unwrap();
        let one = BigUint::one();
        let p_minus_1 = p.sub(&one);
        let base = value_below(p, 0xFEED);

        // One full-width exponent (the group order) per size.
        let q = group.order();
        assert_eq!(ctx.pow(&base, q), base.modpow_naive(q, p));

        // Exponent 0 and 1.
        assert_eq!(ctx.pow(&base, &BigUint::zero()), one);
        assert_eq!(ctx.pow(&base, &one), base);

        // Base ≡ 0 (both the canonical 0 and the unreduced p).
        assert_eq!(
            ctx.pow(&BigUint::zero(), &BigUint::from_u64(5)),
            BigUint::zero()
        );
        assert_eq!(ctx.pow(p, &BigUint::from_u64(5)), BigUint::zero());
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), one);

        // Base p−1 has order 2; exponent p−1 is Fermat's little theorem.
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(2)), one);
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(3)), p_minus_1);
        assert_eq!(ctx.pow(&base, &p_minus_1), one);
    }
}
