//! Wide-vs-scalar oracle suite for the multi-block ChaCha20 engine.
//!
//! The contract: the portable 4-way kernel, the runtime-dispatched SIMD
//! kernel, and the stride-consuming `fill`/`apply` paths are all *byte
//! identical* to the scalar `chacha20_block` oracle — for every length,
//! chunking, seek position and counter value.  Nothing here is
//! self-consistency alone: the scalar oracle is itself pinned to the RFC
//! 8439 test vectors (including a ≥4-consecutive-block known answer whose
//! counter-1 block is the verbatim §2.3.2 vector).

use dissent_crypto::chacha::{
    chacha20_block, chacha20_blocks4, chacha20_blocks4_portable, wide_backend_name, ChaCha20,
    BLOCK_LEN, WIDE_BLOCKS, WIDE_LEN,
};
use proptest::prelude::*;

fn key_from(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, k) in key.iter_mut().enumerate() {
        *k = (seed >> (8 * (i % 8))) as u8 ^ (i as u8).wrapping_mul(0x9d);
    }
    key
}

fn nonce_from(seed: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    for (i, n) in nonce.iter_mut().enumerate() {
        *n = (seed >> (8 * (i % 8))) as u8 ^ (i as u8).wrapping_mul(0x3b);
    }
    nonce
}

/// The scalar oracle: `len` keystream bytes starting at byte 0, produced one
/// 64-byte block at a time with no buffering or striding.
fn scalar_keystream(key: &[u8; 32], nonce: &[u8; 12], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + BLOCK_LEN);
    let mut counter = 0u32;
    while out.len() < len {
        out.extend_from_slice(&chacha20_block(key, nonce, counter));
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocks4_kernels_equal_four_scalar_blocks(
        seed in any::<u64>(),
        counter in any::<u32>(),
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed.rotate_left(17));
        let mut expected = [0u8; WIDE_LEN];
        for b in 0..WIDE_BLOCKS {
            expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                .copy_from_slice(&chacha20_block(&key, &nonce, counter.wrapping_add(b as u32)));
        }
        let mut portable = [0u8; WIDE_LEN];
        chacha20_blocks4_portable(&key, &nonce, counter, &mut portable);
        prop_assert_eq!(&portable[..], &expected[..]);
        let mut dispatched = [0u8; WIDE_LEN];
        chacha20_blocks4(&key, &nonce, counter, &mut dispatched);
        prop_assert_eq!(&dispatched[..], &expected[..]);
    }

    #[test]
    fn fill_matches_scalar_oracle_for_all_lengths(
        seed in any::<u64>(),
        len in 0usize..1024,
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0xA5A5);
        let expected = scalar_keystream(&key, &nonce, len);
        let mut out = vec![0u8; len];
        ChaCha20::new(&key, &nonce).fill(&mut out);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn fill_across_stride_boundaries_matches_oracle(seed in any::<u64>()) {
        // 255/256/257 straddle the first 4-block stride, 511/512/513 the
        // second; every split of the whole stream at those lengths must
        // reassemble to the oracle stream.
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x5A5A);
        let expected = scalar_keystream(&key, &nonce, 2048);
        for &head in &[255usize, 256, 257, 511, 512, 513] {
            let mut stream = ChaCha20::new(&key, &nonce);
            let mut out = vec![0u8; 2048];
            let (a, b) = out.split_at_mut(head);
            stream.fill(a);
            stream.fill(b);
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn fill_after_arbitrary_seek_matches_oracle(
        seed in any::<u64>(),
        pos in 0u64..4096,
        len in 0usize..700,
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x1234);
        let expected = scalar_keystream(&key, &nonce, pos as usize + len);
        let mut stream = ChaCha20::new(&key, &nonce);
        stream.seek(pos);
        let mut out = vec![0u8; len];
        stream.fill(&mut out);
        prop_assert_eq!(&out[..], &expected[pos as usize..]);
    }

    #[test]
    fn apply_equals_keystream_xor_across_random_chunkings(
        seed in any::<u64>(),
        cuts in proptest::collection::vec(1usize..300, 1..6),
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x77);
        let total: usize = cuts.iter().sum();
        let msg: Vec<u8> = (0..total).map(|i| (i * 131 + 17) as u8).collect();
        let ks = scalar_keystream(&key, &nonce, total);
        let expected: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        let mut data = msg;
        let mut stream = ChaCha20::new(&key, &nonce);
        let mut start = 0;
        for &cut in &cuts {
            stream.apply(&mut data[start..start + cut]);
            start += cut;
        }
        prop_assert_eq!(data, expected);
    }
}

/// RFC 8439 §2.3.2 key/nonce, keystream blocks for counters 0..=5 — a
/// known-answer vector four-plus blocks long, so the wide 256-byte stride is
/// exercised against pinned bytes rather than self-consistency.  Bytes
/// 64..128 are verbatim the §2.3.2 block-function test vector (counter = 1),
/// anchoring the whole pin to the RFC; the remaining blocks were expanded
/// from the same scalar block function those 64 bytes validate.
const RFC8439_EXTENDED_KEYSTREAM: &str =
    "8adc91fd9ff4f0f51b0fad50ff15d637e40efda206cc52c783a74200503c1582\
     cd9833367d0a54d57d3c9e998f490ee69ca34c1ff9e939a75584c52d690a35d4\
     10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
     d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e\
     0a88837739d7bf4ef8ccacb0ea2bb9d69d56c394aa351dfda5bf459f0a2e9fe8\
     e721f89255f9c486bf21679c683d4f9c5cf2fa27865526005b06ca374c86af3b\
     dcbfbdcb83be65862ed5c20eae5a43241d6a92da6dca9a156be25297f51c2718\
     8a861e93cc3aeb129a76598baccd27453ac6941b4b4e1e5153a9fee95d1ba00e\
     69d09f0d336478ca9068335ae2b3090905fb0fe5d45115371d126e5ba85e9924\
     32729aa7d77ddc5e3cc689d8445c1ab754a7409ee8befc2bdd3868d27f6e1ad8\
     a919bfe7a39def0c7c74981952cd16b77989597e08679e57615f79691946a58f\
     f9cdab03770dd60bf523f9fba6bda60c267cd9fc2e9a85f1c41334bee30d578f";

fn rfc_key_nonce() -> ([u8; 32], [u8; 12]) {
    let mut key = [0u8; 32];
    for (i, k) in key.iter_mut().enumerate() {
        *k = i as u8;
    }
    let nonce = [
        0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
    ];
    (key, nonce)
}

fn unhex(s: &str) -> Vec<u8> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    compact
        .as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

#[test]
fn rfc8439_extended_known_answer_block_one_is_the_rfc_vector() {
    // The external anchor: bytes 64..128 of the pin are the literal RFC 8439
    // §2.3.2 serialized block for counter = 1.
    let expected = unhex(RFC8439_EXTENDED_KEYSTREAM);
    assert_eq!(expected.len(), 6 * BLOCK_LEN);
    assert_eq!(
        &expected[64..128],
        &unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        )[..]
    );
}

#[test]
fn rfc8439_extended_known_answer_wide_paths() {
    let (key, nonce) = rfc_key_nonce();
    let expected = unhex(RFC8439_EXTENDED_KEYSTREAM);
    // Scalar block function, block by block.
    for (b, chunk) in expected.chunks(BLOCK_LEN).enumerate() {
        assert_eq!(
            &chacha20_block(&key, &nonce, b as u32)[..],
            chunk,
            "scalar block {b}"
        );
    }
    // Portable 4-way and dispatched kernels over the first 4 blocks.
    let mut wide = [0u8; WIDE_LEN];
    chacha20_blocks4_portable(&key, &nonce, 0, &mut wide);
    assert_eq!(&wide[..], &expected[..WIDE_LEN], "portable4");
    let mut wide = [0u8; WIDE_LEN];
    chacha20_blocks4(&key, &nonce, 0, &mut wide);
    assert_eq!(&wide[..], &expected[..WIDE_LEN], "{}", wide_backend_name());
    // The streaming engine over all six blocks, in one gulp and in odd
    // chunks.
    let mut out = vec![0u8; expected.len()];
    ChaCha20::new(&key, &nonce).fill(&mut out);
    assert_eq!(out, expected, "one-gulp fill");
    let mut stream = ChaCha20::new(&key, &nonce);
    let mut pieces = Vec::new();
    for chunk in [1usize, 63, 64, 65, 100, 91] {
        pieces.extend(stream.keystream(chunk));
    }
    assert_eq!(pieces, expected, "chunked fill");
}

#[test]
fn fill_heads_and_tails_around_stride_boundaries() {
    // Deterministic spot checks at the exact stride edges (255/256/257 and
    // 511/512/513), filling from both an aligned start and an unaligned
    // seek — the lengths the proptests sample around, pinned explicitly.
    let key = key_from(0xDEADBEEF);
    let nonce = nonce_from(0xFEEDFACE);
    let expected = scalar_keystream(&key, &nonce, 2048);
    for &len in &[255usize, 256, 257, 511, 512, 513] {
        let mut out = vec![0u8; len];
        ChaCha20::new(&key, &nonce).fill(&mut out);
        assert_eq!(out, expected[..len], "aligned len {len}");
        for &pos in &[1usize, 63, 65, 255, 257] {
            let mut stream = ChaCha20::new(&key, &nonce);
            stream.seek(pos as u64);
            let mut out = vec![0u8; len];
            stream.fill(&mut out);
            assert_eq!(out, expected[pos..pos + len], "pos {pos} len {len}");
        }
    }
}

#[test]
fn seek_then_fill_interleaved_regression() {
    // The satellite regression: interleaved seek/fill at odd offsets must
    // match one straight-line keystream (partial-block head handling after
    // non-block-aligned seeks).
    let key = key_from(0x17_24_AB);
    let nonce = nonce_from(0x99);
    let whole = scalar_keystream(&key, &nonce, 8 * WIDE_LEN);
    let mut stream = ChaCha20::new(&key, &nonce);
    let script: &[(u64, usize)] = &[
        (3, 5),
        (61, 7),
        (129, 258),
        (1, 1),
        (511, 2),
        (513, 511),
        (255, 300),
        (64, 64),
        (1027, 513),
    ];
    for &(pos, len) in script {
        stream.seek(pos);
        let mut out = vec![0u8; len];
        stream.fill(&mut out);
        assert_eq!(
            out,
            whole[pos as usize..pos as usize + len],
            "pos {pos} len {len}"
        );
    }
}
