//! Wide-vs-scalar oracle suite for the multi-block ChaCha20 engine.
//!
//! The contract: the portable 4-way and 8-way kernels, the
//! runtime-dispatched SIMD kernels (SSE2/AVX2/AVX-512), their fused
//! keystream-XOR variants, and the stride-consuming `fill`/`apply` paths
//! are all *byte identical* to the scalar `chacha20_block` oracle — for
//! every length, chunking, seek position and counter value (including u32
//! counter wrap-around inside a stride).  Nothing here is self-consistency
//! alone: the scalar oracle is itself pinned to the RFC 8439 test vectors
//! (including an 8-consecutive-block known answer whose counter-1 block is
//! the verbatim §2.3.2 vector), and the `DISSENT_CHACHA_FORCE_*` override
//! tests re-run the oracle in subprocesses pinned to each backend this CPU
//! supports.

use dissent_crypto::chacha::{
    chacha20_block, chacha20_blocks4, chacha20_blocks4_portable, chacha20_blocks4_xor,
    chacha20_blocks8, chacha20_blocks8_portable, chacha20_blocks8_xor,
    chacha20_blocks8_xor_portable, wide8_backend_name, wide_backend_name, ChaCha20, BLOCK_LEN,
    WIDE8_BLOCKS, WIDE8_LEN, WIDE_BLOCKS, WIDE_LEN,
};
use proptest::prelude::*;

fn key_from(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, k) in key.iter_mut().enumerate() {
        *k = (seed >> (8 * (i % 8))) as u8 ^ (i as u8).wrapping_mul(0x9d);
    }
    key
}

fn nonce_from(seed: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    for (i, n) in nonce.iter_mut().enumerate() {
        *n = (seed >> (8 * (i % 8))) as u8 ^ (i as u8).wrapping_mul(0x3b);
    }
    nonce
}

/// The scalar oracle: `len` keystream bytes starting at byte 0, produced one
/// 64-byte block at a time with no buffering or striding.
fn scalar_keystream(key: &[u8; 32], nonce: &[u8; 12], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + BLOCK_LEN);
    let mut counter = 0u32;
    while out.len() < len {
        out.extend_from_slice(&chacha20_block(key, nonce, counter));
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocks4_kernels_equal_four_scalar_blocks(
        seed in any::<u64>(),
        counter in any::<u32>(),
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed.rotate_left(17));
        let mut expected = [0u8; WIDE_LEN];
        for b in 0..WIDE_BLOCKS {
            expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                .copy_from_slice(&chacha20_block(&key, &nonce, counter.wrapping_add(b as u32)));
        }
        let mut portable = [0u8; WIDE_LEN];
        chacha20_blocks4_portable(&key, &nonce, counter, &mut portable);
        prop_assert_eq!(&portable[..], &expected[..]);
        let mut dispatched = [0u8; WIDE_LEN];
        chacha20_blocks4(&key, &nonce, counter, &mut dispatched);
        prop_assert_eq!(&dispatched[..], &expected[..]);
    }

    #[test]
    fn blocks8_kernels_equal_eight_scalar_blocks(
        seed in any::<u64>(),
        counter in any::<u32>(),
    ) {
        // `counter` ranges over all of u32, so wrap-around inside the
        // stride (counter > u32::MAX - 7) is sampled too; the kernels'
        // per-lane `wrapping_add` must match eight wrapping scalar blocks.
        let key = key_from(seed);
        let nonce = nonce_from(seed.rotate_left(29));
        let mut expected = [0u8; WIDE8_LEN];
        for b in 0..WIDE8_BLOCKS {
            expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                .copy_from_slice(&chacha20_block(&key, &nonce, counter.wrapping_add(b as u32)));
        }
        let mut portable = [0u8; WIDE8_LEN];
        chacha20_blocks8_portable(&key, &nonce, counter, &mut portable);
        prop_assert_eq!(&portable[..], &expected[..]);
        let mut dispatched = [0u8; WIDE8_LEN];
        chacha20_blocks8(&key, &nonce, counter, &mut dispatched);
        prop_assert_eq!(&dispatched[..], &expected[..]);
    }

    #[test]
    fn fused_xor_kernels_equal_compute_then_xor(
        seed in any::<u64>(),
        counter in any::<u32>(),
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed.rotate_left(41));
        let base: Vec<u8> = (0..WIDE8_LEN).map(|i| (i * 37 + 11) as u8).collect();
        let mut ks = [0u8; WIDE8_LEN];
        chacha20_blocks8(&key, &nonce, counter, &mut ks);
        let expected: Vec<u8> = base.iter().zip(ks.iter()).map(|(m, k)| m ^ k).collect();
        // Dispatched fused 8-block kernel.
        let mut fused: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
        chacha20_blocks8_xor(&key, &nonce, counter, &mut fused);
        prop_assert_eq!(&fused[..], &expected[..]);
        // Portable fused 8-block kernel.
        let mut fused: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
        chacha20_blocks8_xor_portable(&key, &nonce, counter, &mut fused);
        prop_assert_eq!(&fused[..], &expected[..]);
        // Dispatched fused 4-block kernel over both halves of the stride.
        let mut fused: [u8; WIDE8_LEN] = base.try_into().unwrap();
        let (lo, hi) = fused.split_at_mut(WIDE_LEN);
        chacha20_blocks4_xor(&key, &nonce, counter, lo.try_into().unwrap());
        chacha20_blocks4_xor(
            &key,
            &nonce,
            counter.wrapping_add(WIDE_BLOCKS as u32),
            hi.try_into().unwrap(),
        );
        prop_assert_eq!(&fused[..], &expected[..]);
    }

    #[test]
    fn fused_apply_equals_fill_then_xor_after_seek(
        seed in any::<u64>(),
        pos in 0u64..4096,
        len in 0usize..2048,
    ) {
        // `apply` (keystream XORed in-register by the fused kernels) must
        // equal the two-pass form: `fill` a keystream buffer, then XOR it
        // in — for every length and stream position.
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0xC0FFEE);
        let msg: Vec<u8> = (0..len).map(|i| (i * 89 + 3) as u8).collect();
        let mut ks = vec![0u8; len];
        let mut stream = ChaCha20::new(&key, &nonce);
        stream.seek(pos);
        stream.fill(&mut ks);
        let expected: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        let mut data = msg;
        let mut stream = ChaCha20::new(&key, &nonce);
        stream.seek(pos);
        stream.apply(&mut data);
        prop_assert_eq!(data, expected);
    }

    #[test]
    fn fill_matches_scalar_oracle_for_all_lengths(
        seed in any::<u64>(),
        len in 0usize..1024,
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0xA5A5);
        let expected = scalar_keystream(&key, &nonce, len);
        let mut out = vec![0u8; len];
        ChaCha20::new(&key, &nonce).fill(&mut out);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn fill_across_stride_boundaries_matches_oracle(seed in any::<u64>()) {
        // 255/256/257 straddle the first 4-block stride, 511/512/513 the
        // 8-block stride, 1023/1024/1025 the second 8-block stride; every
        // split of the whole stream at those lengths must reassemble to
        // the oracle stream.
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x5A5A);
        let expected = scalar_keystream(&key, &nonce, 2048);
        for &head in &[255usize, 256, 257, 511, 512, 513, 1023, 1024, 1025] {
            let mut stream = ChaCha20::new(&key, &nonce);
            let mut out = vec![0u8; 2048];
            let (a, b) = out.split_at_mut(head);
            stream.fill(a);
            stream.fill(b);
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn fill_after_arbitrary_seek_matches_oracle(
        seed in any::<u64>(),
        pos in 0u64..4096,
        len in 0usize..700,
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x1234);
        let expected = scalar_keystream(&key, &nonce, pos as usize + len);
        let mut stream = ChaCha20::new(&key, &nonce);
        stream.seek(pos);
        let mut out = vec![0u8; len];
        stream.fill(&mut out);
        prop_assert_eq!(&out[..], &expected[pos as usize..]);
    }

    #[test]
    fn apply_equals_keystream_xor_across_random_chunkings(
        seed in any::<u64>(),
        cuts in proptest::collection::vec(1usize..300, 1..6),
    ) {
        let key = key_from(seed);
        let nonce = nonce_from(seed ^ 0x77);
        let total: usize = cuts.iter().sum();
        let msg: Vec<u8> = (0..total).map(|i| (i * 131 + 17) as u8).collect();
        let ks = scalar_keystream(&key, &nonce, total);
        let expected: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        let mut data = msg;
        let mut stream = ChaCha20::new(&key, &nonce);
        let mut start = 0;
        for &cut in &cuts {
            stream.apply(&mut data[start..start + cut]);
            start += cut;
        }
        prop_assert_eq!(data, expected);
    }
}

/// RFC 8439 §2.3.2 key/nonce, keystream blocks for counters 0..=7 — a
/// known-answer vector a full 8-block (512-byte) stride long, so both the
/// 4-block and the 8-block wide paths are exercised against pinned bytes
/// rather than self-consistency.  Bytes 64..128 are verbatim the §2.3.2
/// block-function test vector (counter = 1), anchoring the whole pin to the
/// RFC; the remaining blocks were expanded from the same scalar block
/// function those 64 bytes validate.
const RFC8439_EXTENDED_KEYSTREAM: &str =
    "8adc91fd9ff4f0f51b0fad50ff15d637e40efda206cc52c783a74200503c1582\
     cd9833367d0a54d57d3c9e998f490ee69ca34c1ff9e939a75584c52d690a35d4\
     10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
     d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e\
     0a88837739d7bf4ef8ccacb0ea2bb9d69d56c394aa351dfda5bf459f0a2e9fe8\
     e721f89255f9c486bf21679c683d4f9c5cf2fa27865526005b06ca374c86af3b\
     dcbfbdcb83be65862ed5c20eae5a43241d6a92da6dca9a156be25297f51c2718\
     8a861e93cc3aeb129a76598baccd27453ac6941b4b4e1e5153a9fee95d1ba00e\
     69d09f0d336478ca9068335ae2b3090905fb0fe5d45115371d126e5ba85e9924\
     32729aa7d77ddc5e3cc689d8445c1ab754a7409ee8befc2bdd3868d27f6e1ad8\
     a919bfe7a39def0c7c74981952cd16b77989597e08679e57615f79691946a58f\
     f9cdab03770dd60bf523f9fba6bda60c267cd9fc2e9a85f1c41334bee30d578f\
     182b358e096f14b1a4bbdc69357a4c4c5f3a6d4e7ea8577ca7d19e05c05507c2\
     40e8c20d0d459c67df97c8d35a51433d9202e31378df5fad8f0c815cba5b2176\
     cadfa21657898aac16038885f602a5ebbd7db48afc0f120c1c4add4da10fcad8\
     e4a302868b7881dc3ed06093ba9541d652b7616b7b2eea6c3f4bdf97595019c5";

fn rfc_key_nonce() -> ([u8; 32], [u8; 12]) {
    let mut key = [0u8; 32];
    for (i, k) in key.iter_mut().enumerate() {
        *k = i as u8;
    }
    let nonce = [
        0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
    ];
    (key, nonce)
}

fn unhex(s: &str) -> Vec<u8> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    compact
        .as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

#[test]
fn rfc8439_extended_known_answer_block_one_is_the_rfc_vector() {
    // The external anchor: bytes 64..128 of the pin are the literal RFC 8439
    // §2.3.2 serialized block for counter = 1.
    let expected = unhex(RFC8439_EXTENDED_KEYSTREAM);
    assert_eq!(expected.len(), 8 * BLOCK_LEN);
    assert_eq!(
        &expected[64..128],
        &unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        )[..]
    );
}

#[test]
fn rfc8439_extended_known_answer_wide_paths() {
    let (key, nonce) = rfc_key_nonce();
    let expected = unhex(RFC8439_EXTENDED_KEYSTREAM);
    // Scalar block function, block by block.
    for (b, chunk) in expected.chunks(BLOCK_LEN).enumerate() {
        assert_eq!(
            &chacha20_block(&key, &nonce, b as u32)[..],
            chunk,
            "scalar block {b}"
        );
    }
    // Portable 4-way and dispatched kernels over the first 4 blocks.
    let mut wide = [0u8; WIDE_LEN];
    chacha20_blocks4_portable(&key, &nonce, 0, &mut wide);
    assert_eq!(&wide[..], &expected[..WIDE_LEN], "portable4");
    let mut wide = [0u8; WIDE_LEN];
    chacha20_blocks4(&key, &nonce, 0, &mut wide);
    assert_eq!(&wide[..], &expected[..WIDE_LEN], "{}", wide_backend_name());
    // Portable 8-way and dispatched kernels over the full 8-block stride.
    let mut wide8 = [0u8; WIDE8_LEN];
    chacha20_blocks8_portable(&key, &nonce, 0, &mut wide8);
    assert_eq!(&wide8[..], &expected[..], "portable8");
    let mut wide8 = [0u8; WIDE8_LEN];
    chacha20_blocks8(&key, &nonce, 0, &mut wide8);
    assert_eq!(&wide8[..], &expected[..], "{}", wide8_backend_name());
    // The fused XOR kernel applied to the pin itself must zero the buffer.
    let mut zeroed: [u8; WIDE8_LEN] = expected.clone().try_into().unwrap();
    chacha20_blocks8_xor(&key, &nonce, 0, &mut zeroed);
    assert!(zeroed.iter().all(|&b| b == 0), "fused xor vs pinned bytes");
    // The streaming engine over all eight blocks, in one gulp and in odd
    // chunks.
    let mut out = vec![0u8; expected.len()];
    ChaCha20::new(&key, &nonce).fill(&mut out);
    assert_eq!(out, expected, "one-gulp fill");
    let mut stream = ChaCha20::new(&key, &nonce);
    let mut pieces = Vec::new();
    for chunk in [1usize, 63, 64, 65, 100, 91, 128] {
        pieces.extend(stream.keystream(chunk));
    }
    assert_eq!(pieces, expected, "chunked fill");
}

#[test]
fn fill_heads_and_tails_around_stride_boundaries() {
    // Deterministic spot checks at the exact stride edges (255/256/257
    // around the 4-block stride, 511/512/513 and 1023/1024/1025 around the
    // 8-block one), filling from both an aligned start and an unaligned
    // seek — the lengths the proptests sample around, pinned explicitly.
    let key = key_from(0xDEADBEEF);
    let nonce = nonce_from(0xFEEDFACE);
    let expected = scalar_keystream(&key, &nonce, 4096);
    for &len in &[255usize, 256, 257, 511, 512, 513, 1023, 1024, 1025] {
        let mut out = vec![0u8; len];
        ChaCha20::new(&key, &nonce).fill(&mut out);
        assert_eq!(out, expected[..len], "aligned len {len}");
        for &pos in &[1usize, 63, 65, 255, 257, 511, 513] {
            let mut stream = ChaCha20::new(&key, &nonce);
            stream.seek(pos as u64);
            let mut out = vec![0u8; len];
            stream.fill(&mut out);
            assert_eq!(out, expected[pos..pos + len], "pos {pos} len {len}");
        }
    }
}

#[test]
fn seek_then_fill_interleaved_regression() {
    // The satellite regression: interleaved seek/fill at odd offsets must
    // match one straight-line keystream (partial-block head handling after
    // non-block-aligned seeks).
    let key = key_from(0x17_24_AB);
    let nonce = nonce_from(0x99);
    let whole = scalar_keystream(&key, &nonce, 8 * WIDE_LEN);
    let mut stream = ChaCha20::new(&key, &nonce);
    let script: &[(u64, usize)] = &[
        (3, 5),
        (61, 7),
        (129, 258),
        (1, 1),
        (511, 2),
        (513, 511),
        (255, 300),
        (64, 64),
        (1027, 513),
    ];
    for &(pos, len) in script {
        stream.seek(pos);
        let mut out = vec![0u8; len];
        stream.fill(&mut out);
        assert_eq!(
            out,
            whole[pos as usize..pos as usize + len],
            "pos {pos} len {len}"
        );
    }
}

#[test]
fn fused_apply_at_stride_edges_after_seek() {
    // The fused in-place `apply` at the exact 8-block stride edges
    // (511/512/513 and 1023/1024/1025), after unaligned seeks, against the
    // scalar keystream oracle — the deterministic anchor for the
    // `fused_apply_equals_fill_then_xor_after_seek` proptest.
    let key = key_from(0xBADC0DE);
    let nonce = nonce_from(0x5EED);
    let whole = scalar_keystream(&key, &nonce, 4096);
    for &len in &[511usize, 512, 513, 1023, 1024, 1025] {
        for &pos in &[0usize, 1, 63, 255, 257, 512, 515] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 + pos) as u8).collect();
            let expected: Vec<u8> = msg
                .iter()
                .zip(&whole[pos..pos + len])
                .map(|(m, k)| m ^ k)
                .collect();
            let mut data = msg;
            let mut stream = ChaCha20::new(&key, &nonce);
            stream.seek(pos as u64);
            stream.apply(&mut data);
            assert_eq!(data, expected, "pos {pos} len {len}");
        }
    }
}

// ---------------------------------------------------------------------------
// DISSENT_CHACHA_FORCE_* override tests.
//
// The backend choice is latched in a process-wide `OnceLock`, so each
// override is exercised in a fresh subprocess: the parent re-executes this
// test binary with the env var set and a hidden child test selected, and
// the child asserts both the reported backend names and kernel correctness
// against the RFC pin under that forced dispatch.

/// Marker env vars the parent sets for the child assertions.
const EXPECT_WIDE4: &str = "DISSENT_CHACHA_TEST_EXPECT_WIDE4";
const EXPECT_WIDE8: &str = "DISSENT_CHACHA_TEST_EXPECT_WIDE8";

#[test]
fn forced_backend_child_asserts_dispatch() {
    // No-op unless spawned by `forced_backend_overrides_are_honored` below.
    let (Ok(want4), Ok(want8)) = (std::env::var(EXPECT_WIDE4), std::env::var(EXPECT_WIDE8)) else {
        return;
    };
    assert_eq!(wide_backend_name(), want4, "4-block dispatch");
    assert_eq!(wide8_backend_name(), want8, "8-block dispatch");
    // The forced backend must still produce RFC-correct keystream.
    let (key, nonce) = rfc_key_nonce();
    let expected = unhex(RFC8439_EXTENDED_KEYSTREAM);
    let mut wide = [0u8; WIDE_LEN];
    chacha20_blocks4(&key, &nonce, 0, &mut wide);
    assert_eq!(&wide[..], &expected[..WIDE_LEN], "forced {want4}");
    let mut wide8 = [0u8; WIDE8_LEN];
    chacha20_blocks8(&key, &nonce, 0, &mut wide8);
    assert_eq!(&wide8[..], &expected[..], "forced {want8}");
    let mut zeroed: [u8; WIDE8_LEN] = expected.try_into().unwrap();
    chacha20_blocks8_xor(&key, &nonce, 0, &mut zeroed);
    assert!(zeroed.iter().all(|&b| b == 0), "forced fused xor");
}

/// Spawn the child test with `envs` applied and assert it passes.
fn run_forced_child(envs: &[(&str, &str)]) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("forced_backend_child_asserts_dispatch")
        .arg("--exact")
        .arg("--nocapture")
        // A clean slate: the parent harness may itself run under overrides.
        .env_remove("DISSENT_CHACHA_FORCE_SCALAR")
        .env_remove("DISSENT_CHACHA_FORCE_BACKEND");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child test");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("1 passed"),
        "child {envs:?} failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn forced_backend_overrides_are_honored() {
    // Every backend this CPU supports, by its accepted spelling.
    let mut cases: Vec<(&str, &str, &str)> = vec![("portable", "portable4", "portable8")];
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("sse2") {
            cases.push(("sse2", "sse2", "sse2x2"));
        }
        if is_x86_feature_detected!("avx2") {
            cases.push(("avx2", "avx2", "avx2x2"));
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") {
            cases.push(("avx512", "avx512", "avx512"));
        }
    }
    for (force, want4, want8) in cases {
        run_forced_child(&[
            ("DISSENT_CHACHA_FORCE_BACKEND", force),
            (EXPECT_WIDE4, want4),
            (EXPECT_WIDE8, want8),
        ]);
    }
}

#[test]
fn force_scalar_beats_force_backend() {
    // The CI fallback lane contract: DISSENT_CHACHA_FORCE_SCALAR=1 must
    // bypass every SIMD path even when a SIMD backend is also requested.
    run_forced_child(&[
        ("DISSENT_CHACHA_FORCE_SCALAR", "1"),
        ("DISSENT_CHACHA_FORCE_BACKEND", "avx512"),
        (EXPECT_WIDE4, "portable4"),
        (EXPECT_WIDE8, "portable8"),
    ]);
    // An unknown spelling degrades to the portable kernels.
    run_forced_child(&[
        ("DISSENT_CHACHA_FORCE_BACKEND", "quantum"),
        (EXPECT_WIDE4, "portable4"),
        (EXPECT_WIDE8, "portable8"),
    ]);
}
