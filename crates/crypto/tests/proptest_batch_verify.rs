//! Adversarial soundness suite for batched proof verification.
//!
//! `schnorr::batch_verify` and `chaum_pedersen::batch_verify` fold k proofs
//! into one random-linear-combination check.  That fold must not weaken
//! soundness: for a batch of valid proofs, corrupting any *single* proof
//! scalar, proof element, statement element, or message/context byte must
//! make the whole batch reject — across all four parameter sets, at every
//! batch position.  A batch of one must agree exactly with the single
//! verifier.

use dissent_crypto::bigint::BigUint;
use dissent_crypto::chaum_pedersen::{self, DleqBatchItem, DleqProof};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_crypto::schnorr::{self, BatchItem, Signature, SigningKeyPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four parameter sets, smallest to largest.
fn groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

// ---------------------------------------------------------------------------
// Schnorr batches

/// A batch of valid signatures over distinct messages.
#[derive(Clone)]
struct SchnorrBatch {
    group: Group,
    keys: Vec<SigningKeyPair>,
    messages: Vec<Vec<u8>>,
    sigs: Vec<Signature>,
}

impl SchnorrBatch {
    fn new(group: &Group, k: usize, seed: u64) -> SchnorrBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<SigningKeyPair> = (0..k)
            .map(|_| SigningKeyPair::generate(group, &mut rng))
            .collect();
        let messages: Vec<Vec<u8>> = (0..k)
            .map(|i| format!("slot {i} ciphertext for round {seed}").into_bytes())
            .collect();
        let sigs: Vec<Signature> = keys
            .iter()
            .zip(&messages)
            .map(|(kp, m)| kp.sign(group, &mut rng, m))
            .collect();
        SchnorrBatch {
            group: group.clone(),
            keys,
            messages,
            sigs,
        }
    }

    fn verify(&self) -> bool {
        let items: Vec<BatchItem> = self
            .keys
            .iter()
            .zip(&self.messages)
            .zip(&self.sigs)
            .map(|((kp, m), s)| BatchItem {
                public: kp.public(),
                message: m,
                signature: s,
            })
            .collect();
        schnorr::batch_verify(&self.group, &items)
    }
}

/// Every way to corrupt exactly one signature/statement in a Schnorr batch.
const SCHNORR_CORRUPTIONS: usize = 6;

/// Apply corruption `which` to position `target`; the batch must reject.
fn corrupt_schnorr(batch: &mut SchnorrBatch, target: usize, which: usize) {
    let g = batch.group.clone();
    match which {
        // Proof scalar: response bumped by one.
        0 => {
            batch.sigs[target].response = g.scalar_add(&batch.sigs[target].response, &Scalar::one())
        }
        // Proof element: commitment multiplied by the generator.
        1 => batch.sigs[target].commitment = g.mul(&batch.sigs[target].commitment, &g.generator()),
        // Statement element: the public key replaced with an unrelated one
        // (still a subgroup member, so this tests the equation — not the
        // membership screening).
        2 => batch.keys[target] = SigningKeyPair::from_seed(&g, b"forged-statement-key"),
        // Message byte flip (middle of the message).
        3 => {
            let mid = batch.messages[target].len() / 2;
            batch.messages[target][mid] ^= 0x40;
        }
        // Non-member commitment (order-2q element): the membership screen
        // must catch it.
        4 => {
            let minus_one = Element::from_biguint_unchecked(g.modulus().sub(&BigUint::one()));
            batch.sigs[target].commitment = g.mul(&batch.sigs[target].commitment, &minus_one);
        }
        // Cross-wiring: signature swapped with its neighbour's.
        5 => {
            let other = (target + 1) % batch.sigs.len();
            batch.sigs.swap(target, other);
        }
        _ => unreachable!(),
    }
}

#[test]
fn schnorr_single_corruption_rejects_across_all_groups() {
    for group in groups() {
        let k = 3;
        let valid = SchnorrBatch::new(&group, k, 0xBEEF);
        assert!(valid.verify(), "valid batch accepted ({})", group.name());
        for target in 0..k {
            for which in 0..SCHNORR_CORRUPTIONS {
                // Swapping needs at least two distinct entries.
                if which == 5 && k < 2 {
                    continue;
                }
                let mut batch = valid.clone();
                corrupt_schnorr(&mut batch, target, which);
                assert!(
                    !batch.verify(),
                    "corruption {which} at position {target} accepted ({})",
                    group.name()
                );
            }
        }
    }
}

#[test]
fn schnorr_batch_of_one_agrees_with_single_verify() {
    for group in groups() {
        for which in 0..SCHNORR_CORRUPTIONS {
            if which == 5 {
                continue; // swap needs two entries
            }
            let mut batch = SchnorrBatch::new(&group, 1, 0xF00D);
            let single = |b: &SchnorrBatch| {
                schnorr::verify(&b.group, b.keys[0].public(), &b.messages[0], &b.sigs[0])
            };
            assert!(single(&batch) && batch.verify());
            corrupt_schnorr(&mut batch, 0, which);
            assert_eq!(
                single(&batch),
                batch.verify(),
                "batch-of-one diverged from single verify (corruption {which}, {})",
                group.name()
            );
            assert!(!batch.verify());
        }
    }
}

// ---------------------------------------------------------------------------
// Chaum–Pedersen (DLEQ) batches

/// A batch of valid DLEQ proofs over distinct second bases and contexts.
#[derive(Clone)]
struct DleqBatch {
    group: Group,
    hs: Vec<Element>,
    stmts: Vec<(Element, Element)>,
    contexts: Vec<Vec<u8>>,
    proofs: Vec<DleqProof>,
}

impl DleqBatch {
    fn new(group: &Group, k: usize, seed: u64) -> DleqBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = group.generator();
        let hs: Vec<Element> = (0..k)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let xs: Vec<Scalar> = (0..k).map(|_| group.random_scalar(&mut rng)).collect();
        let stmts: Vec<(Element, Element)> = hs
            .iter()
            .zip(&xs)
            .map(|(h, x)| (group.exp(&g, x), group.exp(h, x)))
            .collect();
        let contexts: Vec<Vec<u8>> = (0..k)
            .map(|i| format!("shuffle|pass|{seed}|entry|{i}").into_bytes())
            .collect();
        let proofs: Vec<DleqProof> = hs
            .iter()
            .zip(&xs)
            .zip(&contexts)
            .map(|((h, x), ctx)| chaum_pedersen::prove(group, &mut rng, &g, h, x, ctx))
            .collect();
        DleqBatch {
            group: group.clone(),
            hs,
            stmts,
            contexts,
            proofs,
        }
    }

    fn verify(&self) -> bool {
        let g = self.group.generator();
        let items: Vec<DleqBatchItem> = (0..self.proofs.len())
            .map(|i| DleqBatchItem {
                g: &g,
                h: &self.hs[i],
                a: &self.stmts[i].0,
                b: &self.stmts[i].1,
                proof: &self.proofs[i],
                context: &self.contexts[i],
            })
            .collect();
        chaum_pedersen::batch_verify(&self.group, &items)
    }

    fn verify_single(&self, i: usize) -> bool {
        let g = self.group.generator();
        chaum_pedersen::verify(
            &self.group,
            &g,
            &self.hs[i],
            &self.stmts[i].0,
            &self.stmts[i].1,
            &self.proofs[i],
            &self.contexts[i],
        )
    }
}

/// Every way to corrupt exactly one proof/statement in a DLEQ batch.
const DLEQ_CORRUPTIONS: usize = 8;

fn corrupt_dleq(batch: &mut DleqBatch, target: usize, which: usize) {
    let g = batch.group.clone();
    match which {
        // Proof scalar.
        0 => {
            batch.proofs[target].response =
                g.scalar_add(&batch.proofs[target].response, &Scalar::one())
        }
        // First commitment element.
        1 => batch.proofs[target].t1 = g.mul(&batch.proofs[target].t1, &g.generator()),
        // Second commitment element.
        2 => batch.proofs[target].t2 = g.mul(&batch.proofs[target].t2, &g.generator()),
        // Statement image a (stays a member: tests the equation).
        3 => batch.stmts[target].0 = g.mul(&batch.stmts[target].0, &g.generator()),
        // Statement image b.
        4 => batch.stmts[target].1 = g.mul(&batch.stmts[target].1, &g.generator()),
        // Context byte flip.
        5 => {
            let mid = batch.contexts[target].len() / 2;
            batch.contexts[target][mid] ^= 0x01;
        }
        // Cross-wiring: proof swapped with its neighbour's.
        6 => {
            let other = (target + 1) % batch.proofs.len();
            batch.proofs.swap(target, other);
        }
        // Non-member base h (order-2q): the base screening must reject it —
        // in the batch AND in single verify, identically — because mod-q
        // exponent arithmetic is ambiguous for such a base (regression test
        // for the batch/single divergence this screening closes).
        7 => {
            let minus_one = Element::from_biguint_unchecked(g.modulus().sub(&BigUint::one()));
            batch.hs[target] = g.mul(&batch.hs[target], &minus_one);
        }
        _ => unreachable!(),
    }
}

#[test]
fn dleq_single_corruption_rejects_across_all_groups() {
    for group in groups() {
        let k = 3;
        let valid = DleqBatch::new(&group, k, 0xD1E9);
        assert!(valid.verify(), "valid batch accepted ({})", group.name());
        for target in 0..k {
            for which in 0..DLEQ_CORRUPTIONS {
                if which == 6 && k < 2 {
                    continue;
                }
                let mut batch = valid.clone();
                corrupt_dleq(&mut batch, target, which);
                assert!(
                    !batch.verify(),
                    "corruption {which} at position {target} accepted ({})",
                    group.name()
                );
            }
        }
    }
}

#[test]
fn dleq_batch_of_one_agrees_with_single_verify() {
    for group in groups() {
        for which in 0..DLEQ_CORRUPTIONS {
            if which == 6 {
                continue;
            }
            let mut batch = DleqBatch::new(&group, 1, 0xCAFE);
            assert!(batch.verify_single(0) && batch.verify());
            corrupt_dleq(&mut batch, 0, which);
            assert_eq!(
                batch.verify_single(0),
                batch.verify(),
                "batch-of-one diverged from single verify (corruption {which}, {})",
                group.name()
            );
            assert!(!batch.verify());
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized sweeps (fast parameter sets, random sizes/targets/corruptions)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_schnorr_batches_accept_valid_reject_corrupted(
        seed in any::<u64>(),
        k in 1usize..10,
        target in any::<usize>(),
        which in 0usize..SCHNORR_CORRUPTIONS,
    ) {
        let group = Group::testing_256();
        let valid = SchnorrBatch::new(&group, k, seed);
        prop_assert!(valid.verify());
        if which == 5 && k < 2 {
            return Ok(());
        }
        let mut batch = valid.clone();
        corrupt_schnorr(&mut batch, target % k, which);
        prop_assert!(!batch.verify());
    }

    #[test]
    fn random_dleq_batches_accept_valid_reject_corrupted(
        seed in any::<u64>(),
        k in 1usize..10,
        target in any::<usize>(),
        which in 0usize..DLEQ_CORRUPTIONS,
    ) {
        let group = Group::modp_512();
        let valid = DleqBatch::new(&group, k, seed);
        prop_assert!(valid.verify());
        if which == 6 && k < 2 {
            return Ok(());
        }
        let mut batch = valid.clone();
        corrupt_dleq(&mut batch, target % k, which);
        prop_assert!(!batch.verify());
    }

    #[test]
    fn weights_depend_on_every_proof(seed in any::<u64>()) {
        // Two batches differing in one signature produce different weights;
        // concretely, a batch assembled from valid-but-reordered proofs
        // still rejects (the weights re-derive and the fold breaks).
        let group = Group::testing_256();
        let mut batch = SchnorrBatch::new(&group, 4, seed);
        batch.sigs.rotate_left(1);
        prop_assert!(!batch.verify());
    }
}
