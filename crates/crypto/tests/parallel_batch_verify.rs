//! Chunked/parallel batch verification must be verdict-identical to the
//! serial fold for every split point.
//!
//! `batch_verify` splits large batches into per-thread sub-batches, each
//! checked with its own random-linear-combination fold.  The verdict — and
//! therefore every caller-visible behaviour, including the per-proof blame
//! fallback — must not depend on the chunk size.  This file is its own test
//! binary, so the pool can be forced to 4 workers even on a 1-core box and
//! the parallel path really runs multi-threaded.

use dissent_crypto::chaum_pedersen::{self, DleqBatchItem, DleqProof};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_crypto::schnorr::{self, BatchItem, Signature, SigningKeyPair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn force_multithreaded_pool() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

struct SchnorrFixture {
    group: Group,
    keys: Vec<SigningKeyPair>,
    messages: Vec<Vec<u8>>,
    sigs: Vec<Signature>,
}

fn schnorr_fixture(k: usize, seed: u64) -> SchnorrFixture {
    let group = Group::testing_256();
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<SigningKeyPair> = (0..k)
        .map(|_| SigningKeyPair::generate(&group, &mut rng))
        .collect();
    let messages: Vec<Vec<u8>> = (0..k).map(|i| format!("round {i}").into_bytes()).collect();
    let sigs: Vec<Signature> = keys
        .iter()
        .zip(&messages)
        .map(|(kp, m)| kp.sign(&group, &mut rng, m))
        .collect();
    SchnorrFixture {
        group,
        keys,
        messages,
        sigs,
    }
}

fn schnorr_items(f: &SchnorrFixture) -> Vec<BatchItem<'_>> {
    f.keys
        .iter()
        .zip(&f.messages)
        .zip(&f.sigs)
        .map(|((kp, m), s)| BatchItem {
            public: kp.public(),
            message: m,
            signature: s,
        })
        .collect()
}

#[test]
fn schnorr_verdict_is_chunk_size_invariant() {
    force_multithreaded_pool();
    let k = 17;
    let valid = schnorr_fixture(k, 1);
    let items = schnorr_items(&valid);
    for chunk in 1..=k + 2 {
        assert!(
            schnorr::batch_verify_chunked(&valid.group, &items, chunk),
            "valid batch rejected at chunk size {chunk}"
        );
    }
    // One corruption at each position must reject at every split point
    // (in particular when the bad proof sits alone in a sub-batch, and
    // when it shares one with 16 valid neighbours).
    for target in [0usize, 7, k - 1] {
        let mut bad = schnorr_fixture(k, 1);
        bad.sigs[target].response = bad
            .group
            .scalar_add(&bad.sigs[target].response, &Scalar::one());
        let items = schnorr_items(&bad);
        for chunk in 1..=k + 2 {
            assert!(
                !schnorr::batch_verify_chunked(&bad.group, &items, chunk),
                "corrupted batch (target {target}) accepted at chunk size {chunk}"
            );
        }
        // The blame fallback callers run is chunk-independent by
        // construction; confirm the per-item verdicts pinpoint the target.
        let failing: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, it)| !schnorr::verify(&bad.group, it.public, it.message, it.signature))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failing, vec![target]);
    }
}

struct DleqFixture {
    group: Group,
    h: Element,
    statements: Vec<(Element, Element)>,
    proofs: Vec<DleqProof>,
    contexts: Vec<Vec<u8>>,
}

fn dleq_fixture(k: usize, seed: u64) -> DleqFixture {
    let group = Group::testing_256();
    let mut rng = StdRng::seed_from_u64(seed);
    let h = group.exp_base(&group.random_scalar(&mut rng));
    let mut statements = Vec::new();
    let mut proofs = Vec::new();
    let mut contexts = Vec::new();
    for i in 0..k {
        let x = group.random_scalar(&mut rng);
        let a = group.exp_base(&x);
        let b = group.exp(&h, &x);
        let context = format!("entry {i}").into_bytes();
        let proof = chaum_pedersen::prove(&group, &mut rng, &group.generator(), &h, &x, &context);
        statements.push((a, b));
        proofs.push(proof);
        contexts.push(context);
    }
    DleqFixture {
        group,
        h,
        statements,
        proofs,
        contexts,
    }
}

fn dleq_items<'a>(f: &'a DleqFixture, generator: &'a Element) -> Vec<DleqBatchItem<'a>> {
    (0..f.proofs.len())
        .map(|i| DleqBatchItem {
            g: generator,
            h: &f.h,
            a: &f.statements[i].0,
            b: &f.statements[i].1,
            proof: &f.proofs[i],
            context: &f.contexts[i],
        })
        .collect()
}

#[test]
fn dleq_verdict_is_chunk_size_invariant() {
    force_multithreaded_pool();
    let k = 17;
    let valid = dleq_fixture(k, 2);
    let generator = valid.group.generator();
    let items = dleq_items(&valid, &generator);
    for chunk in 1..=k + 2 {
        assert!(
            chaum_pedersen::batch_verify_chunked(&valid.group, &items, chunk),
            "valid batch rejected at chunk size {chunk}"
        );
    }
    for target in [0usize, 8, k - 1] {
        let mut bad = dleq_fixture(k, 2);
        bad.proofs[target].response = bad
            .group
            .scalar_add(&bad.proofs[target].response, &Scalar::one());
        let generator = bad.group.generator();
        let items = dleq_items(&bad, &generator);
        for chunk in 1..=k + 2 {
            assert!(
                !chaum_pedersen::batch_verify_chunked(&bad.group, &items, chunk),
                "corrupted batch (target {target}) accepted at chunk size {chunk}"
            );
        }
        let failing: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, it)| {
                !chaum_pedersen::verify(&bad.group, it.g, it.h, it.a, it.b, it.proof, it.context)
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failing, vec![target]);
    }
}

#[test]
fn default_chunking_agrees_with_serial_fold() {
    force_multithreaded_pool();
    // The production entry point (auto chunk = len / threads) against the
    // one-fold serial verdict, valid and corrupted.
    let f = schnorr_fixture(33, 3);
    let items = schnorr_items(&f);
    assert_eq!(
        schnorr::batch_verify(&f.group, &items),
        schnorr::batch_verify_chunked(&f.group, &items, items.len())
    );
    let mut bad = schnorr_fixture(33, 3);
    bad.sigs[20].commitment = bad
        .group
        .mul(&bad.sigs[20].commitment, &bad.group.generator());
    let items = schnorr_items(&bad);
    assert_eq!(
        schnorr::batch_verify(&bad.group, &items),
        schnorr::batch_verify_chunked(&bad.group, &items, items.len())
    );
    assert!(!schnorr::batch_verify(&bad.group, &items));
}
