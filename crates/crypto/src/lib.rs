//! # dissent-crypto
//!
//! From-scratch cryptographic substrate for the Dissent reproduction
//! (OSDI 2012, "Dissent in Numbers: Making Strong Anonymity Scale").
//!
//! The paper's prototype delegated all cryptography to CryptoPP; this crate
//! rebuilds exactly the primitives the protocol needs, with no external
//! crypto dependencies:
//!
//! * [`bigint`] — multi-precision unsigned integers (Knuth-D division,
//!   modular exponentiation, Miller–Rabin).
//! * [`montgomery`] — the division-free Montgomery exponentiation engine
//!   (REDC, fixed-window and Shamir/Straus simultaneous exponentiation)
//!   behind every `modpow` and every `Group::exp*` call.
//! * [`group`] — Schnorr groups over safe primes (RFC 3526 2048-bit plus
//!   faster simulation-grade parameter sets), with cached Montgomery
//!   contexts and fixed-base tables per parameter set.
//! * [`sha256`], [`hmac`] — SHA-256, HMAC-SHA256, HKDF.
//! * [`chacha`], [`prng`] — ChaCha20 keystream and the deterministic PRNG
//!   used for DC-net pads and Fiat–Shamir expansion.
//! * [`dh`] — Diffie–Hellman shared secrets between client/server pairs.
//! * [`elgamal`] — ElGamal encryption including the layered (onion) form the
//!   verifiable shuffle needs.
//! * [`schnorr`] — Schnorr signatures for identity and pseudonym keys.
//! * [`connauth`] — the challenge–response handshake binding a transport
//!   connection to a roster identity.
//! * [`chaum_pedersen`] — DLEQ proofs for verifiable decryption.
//! * [`padding`] — the OAEP-style self-randomizing message padding that
//!   guarantees witness bits for the accusation process.
//! * [`xor`] — word-level buffer XOR, the DC-net folding primitive.
//!
//! Security note: this code is a research reproduction.  It is not
//! constant-time and has not been audited; do not use it to protect real
//! users.

// `deny` rather than `forbid`: the ChaCha20 SIMD kernels in [`chacha`] are
// the one sanctioned exception (module-scoped `allow` with safety comments);
// everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod chacha;
pub mod chaum_pedersen;
pub mod connauth;
pub mod dh;
pub mod elgamal;
pub mod group;
pub mod hmac;
pub mod montgomery;
pub mod padding;
pub mod prng;
pub mod schnorr;
pub mod sha256;
pub mod xor;

pub use bigint::BigUint;
pub use dh::DhKeyPair;
pub use elgamal::{Ciphertext, ElGamal};
pub use group::{Element, Group, Scalar};
pub use prng::DetPrng;
pub use schnorr::{Signature, SigningKeyPair, VerifyingKey};
