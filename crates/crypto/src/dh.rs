//! Diffie–Hellman key agreement between client/server pairs.
//!
//! The heart of Dissent's anytrust DC-net is the secret `K_ij` shared by
//! every client `i` with every server `j` (and with no other client).  Both
//! sides derive `K_ij` from their long-term keypairs via static
//! Diffie–Hellman in the session group, then expand it with HKDF into
//! per-round pad seeds.

use crate::group::{Element, Group, Scalar};
use crate::hmac::hkdf_key;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A Diffie–Hellman keypair in a Schnorr group.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DhKeyPair {
    /// Secret exponent.
    secret: Scalar,
    /// Public element `g^secret`.
    public: Element,
}

/// A public Diffie–Hellman key.
pub type DhPublicKey = Element;

impl DhKeyPair {
    /// Generate a fresh keypair.
    pub fn generate<R: RngCore + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let secret = group.random_scalar(rng);
        let public = group.exp_base(&secret);
        DhKeyPair { secret, public }
    }

    /// Deterministically derive a keypair from seed material (used by the
    /// simulator so large populations of clients are reproducible).
    pub fn from_seed(group: &Group, seed: &[u8]) -> Self {
        let mut prng = crate::prng::DetPrng::from_material(seed, b"dh-keypair");
        Self::generate(group, &mut prng)
    }

    /// The public key.
    pub fn public(&self) -> &DhPublicKey {
        &self.public
    }

    /// The secret exponent (needed by ElGamal layer decryption).
    pub fn secret(&self) -> &Scalar {
        &self.secret
    }

    /// Compute the raw shared group element with a peer's public key.
    pub fn raw_shared(&self, group: &Group, peer: &DhPublicKey) -> Element {
        group.exp(peer, &self.secret)
    }

    /// Compute the 32-byte shared secret with a peer, bound to a context
    /// label (e.g. the group identifier) for domain separation.
    pub fn shared_secret(&self, group: &Group, peer: &DhPublicKey, context: &[u8]) -> [u8; 32] {
        let shared = self.raw_shared(group, peer);
        derive_shared_key(group, &shared, &self.public, peer, context)
    }
}

/// Derive the 32-byte shared secret from the raw Diffie–Hellman element and
/// the two public keys involved.
///
/// This is exposed separately because the accusation *rebuttal* (paper §3.9,
/// final case) requires third parties to recompute `K_ij` after a client
/// reveals the raw shared element together with a DLEQ proof of its
/// correctness; the key derivation must therefore be a public function of
/// `(raw, pk_a, pk_b, context)` and symmetric in the two public keys.
pub fn derive_shared_key(
    group: &Group,
    raw_shared: &Element,
    pk_a: &DhPublicKey,
    pk_b: &DhPublicKey,
    context: &[u8],
) -> [u8; 32] {
    // Both parties must derive identical bytes, so the two public keys are
    // fed in a canonical (sorted) order.
    let a = pk_a.to_bytes(group);
    let b = pk_b.to_bytes(group);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut ikm = raw_shared.to_bytes(group);
    ikm.extend_from_slice(&lo);
    ikm.extend_from_slice(&hi);
    hkdf_key(b"dissent-dh", &ikm, context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shared_secret_agrees() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(11);
        let alice = DhKeyPair::generate(&group, &mut rng);
        let bob = DhKeyPair::generate(&group, &mut rng);
        let ab = alice.shared_secret(&group, bob.public(), b"ctx");
        let ba = bob.shared_secret(&group, alice.public(), b"ctx");
        assert_eq!(ab, ba);
    }

    #[test]
    fn different_contexts_and_peers_differ() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(12);
        let alice = DhKeyPair::generate(&group, &mut rng);
        let bob = DhKeyPair::generate(&group, &mut rng);
        let carol = DhKeyPair::generate(&group, &mut rng);
        let ab1 = alice.shared_secret(&group, bob.public(), b"ctx1");
        let ab2 = alice.shared_secret(&group, bob.public(), b"ctx2");
        let ac = alice.shared_secret(&group, carol.public(), b"ctx1");
        assert_ne!(ab1, ab2);
        assert_ne!(ab1, ac);
    }

    #[test]
    fn seeded_keypairs_are_reproducible() {
        let group = Group::testing_256();
        let a = DhKeyPair::from_seed(&group, b"client-42");
        let b = DhKeyPair::from_seed(&group, b"client-42");
        let c = DhKeyPair::from_seed(&group, b"client-43");
        assert_eq!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn public_key_is_subgroup_member() {
        let group = Group::testing_256();
        let kp = DhKeyPair::from_seed(&group, b"x");
        assert!(group.is_member(kp.public()));
    }
}
