//! Arbitrary-precision unsigned integers.
//!
//! Dissent's public-key machinery (ElGamal, Schnorr signatures, Chaum–Pedersen
//! proofs, the verifiable shuffle) operates in Schnorr groups modulo large
//! safe primes.  The paper's prototype used CryptoPP for this; since no
//! external crypto crates are permitted here, this module provides the
//! required multi-precision arithmetic from scratch: addition, subtraction,
//! multiplication, Knuth Algorithm D division, modular exponentiation and
//! inversion, and uniform random sampling.
//!
//! Limbs are `u64`, stored little-endian and kept normalized (no trailing
//! zero limbs; the value zero has an empty limb vector).

use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct BigUint {
    /// Little-endian limbs; normalized so the last limb is non-zero.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Interpret this value as a `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Interpret this value as a `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Parse a big-endian hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, &'static str> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty hex string");
        }
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut idx = bytes.len();
        while idx > 0 {
            let start = idx.saturating_sub(16);
            let chunk = &s[start..idx];
            let limb = u64::from_str_radix(chunk, 16).map_err(|_| "invalid hex digit")?;
            limbs.push(limb);
            idx = start;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        Ok(out)
    }

    /// Render as a big-endian lowercase hexadecimal string (no leading zeros).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs[self.limbs.len() - 1]);
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{:016x}", limb));
        }
        s
    }

    /// Construct from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut idx = bytes.len();
        while idx > 0 {
            let start = idx.saturating_sub(8);
            let mut limb = 0u64;
            for &b in &bytes[start..idx] {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
            idx = start;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serialize to big-endian bytes with no leading zero bytes (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first);
        out
    }

    /// Serialize to big-endian bytes, left-padded with zeros to exactly `len` bytes.
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// The little-endian limbs (no trailing zeros).
    ///
    /// Exposed for the Montgomery engine, which operates on fixed-width limb
    /// buffers directly.
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Construct from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> BigUint {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero has bit length 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction; returns `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Quotient and remainder via Knuth Algorithm D.
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            // Short division.
            let d = divisor.limbs[0] as u128;
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem as u64));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        let v_top = vn[n - 1] as u128;
        let v_sec = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two dividend limbs and top divisor limb.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / v_top;
            let mut rhat = top % v_top;
            // Correct q̂ downward at most twice.
            while qhat >= 1u128 << 64 || qhat * v_sec > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow < 0 {
                // q̂ was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// Remainder of division by `modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular addition.
    pub fn mod_add(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.add(other).rem(modulus)
    }

    /// Modular subtraction (result in `[0, modulus)`).
    pub fn mod_sub(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let a = self.rem(modulus);
        let b = other.rem(modulus);
        if a >= b {
            a.sub(&b)
        } else {
            a.add(modulus).sub(&b)
        }
    }

    /// Modular multiplication.
    pub fn mod_mul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation.
    ///
    /// Odd multi-limb moduli with non-trivial exponents take the
    /// division-free Montgomery path ([`crate::montgomery::MontgomeryCtx`]);
    /// everything else falls back to [`Self::modpow_naive`].  The threshold
    /// keeps tiny inputs (where the one-off context setup would dominate)
    /// on the generic path.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.bit_len() > 64 && exponent.bit_len() >= 32 {
            if let Some(ctx) = crate::montgomery::MontgomeryCtx::new(modulus) {
                return ctx.pow(self, exponent);
            }
        }
        self.modpow_naive(exponent, modulus)
    }

    /// Modular exponentiation by left-to-right square-and-multiply, with a
    /// full division after every multiplication.
    ///
    /// Kept as the generic fallback (even moduli, tiny inputs) and as the
    /// reference implementation the Montgomery engine is property-tested
    /// and benchmarked against.
    pub fn modpow_naive(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let base = self.rem(modulus);
        if exponent.is_zero() {
            return BigUint::one();
        }
        let mut result = BigUint::one();
        let bits = exponent.bit_len();
        for i in (0..bits).rev() {
            result = result.mod_mul(&result, modulus);
            if exponent.bit(i) {
                result = result.mod_mul(&base, modulus);
            }
        }
        result
    }

    /// The Jacobi symbol `(self / n)` for odd `n > 0`, in `{-1, 0, 1}`.
    ///
    /// For prime `n` this is the Legendre symbol, so it decides quadratic
    /// residuosity — the same predicate as `self^((n-1)/2) mod n` — with a
    /// binary-gcd-shaped loop of shifts and divisions instead of a full
    /// modular exponentiation.  `Group::is_member` relies on this to make
    /// subgroup membership checks (and therefore every proof verification)
    /// cheap.
    pub fn jacobi(&self, n: &BigUint) -> i32 {
        assert!(
            !n.is_even() && !n.is_zero(),
            "jacobi is defined for odd positive n"
        );
        // The whole loop runs in place on two limb buffers: a binary-gcd
        // shape (bulk two-stripping, compare, subtract) with no divisions
        // and no per-iteration allocation, so a 2048-bit symbol costs a few
        // microseconds instead of a modular exponentiation's milliseconds.
        fn trim(v: &mut Vec<u64>) {
            while v.last() == Some(&0) {
                v.pop();
            }
        }
        /// Number of trailing zero bits of a trimmed non-empty buffer.
        fn trailing_zero_bits(v: &[u64]) -> usize {
            let mut bits = 0;
            for &limb in v {
                if limb == 0 {
                    bits += 64;
                } else {
                    return bits + limb.trailing_zeros() as usize;
                }
            }
            bits
        }
        /// `v >>= bits`, in place (bits < 64 * v.len()).
        fn shr_in_place(v: &mut Vec<u64>, bits: usize) {
            let words = bits / 64;
            if words > 0 {
                v.drain(..words);
            }
            let rem = bits % 64;
            if rem > 0 {
                let mut carry = 0u64;
                for limb in v.iter_mut().rev() {
                    let new_carry = *limb << (64 - rem);
                    *limb = (*limb >> rem) | carry;
                    carry = new_carry;
                }
            }
            trim(v);
        }
        /// Compare trimmed buffers.
        fn limbs_cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
            a.len().cmp(&b.len()).then_with(|| {
                for i in (0..a.len()).rev() {
                    match a[i].cmp(&b[i]) {
                        std::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                std::cmp::Ordering::Equal
            })
        }
        /// `a -= b`, in place; requires `a >= b` (both trimmed).
        fn sub_in_place(a: &mut Vec<u64>, b: &[u64]) {
            let mut borrow = 0u64;
            for (i, limb) in a.iter_mut().enumerate() {
                let rhs = b.get(i).copied().unwrap_or(0);
                let (d1, b1) = limb.overflowing_sub(rhs);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *limb = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            debug_assert_eq!(borrow, 0);
            trim(a);
        }

        let mut a = self.rem(n).limbs;
        let mut m = n.limbs.clone();
        let mut result = 1i32;
        while !a.is_empty() {
            // Strip factors of two in bulk: (2/m)² = 1, so only the parity
            // of the count matters, flipping when m ≡ ±3 (mod 8).
            let tz = trailing_zero_bits(&a);
            if tz > 0 {
                shr_in_place(&mut a, tz);
                if tz & 1 == 1 {
                    let m_mod_8 = m[0] & 7;
                    if m_mod_8 == 3 || m_mod_8 == 5 {
                        result = -result;
                    }
                }
            }
            // Both odd.  Order them (quadratic reciprocity flips the sign
            // when both are ≡ 3 mod 4), then subtract: a ≡ a − m (mod m)
            // leaves the symbol unchanged and makes `a` even again, so every
            // round strips at least one more bit.
            if limbs_cmp(&a, &m) == std::cmp::Ordering::Less {
                std::mem::swap(&mut a, &mut m);
                if (a[0] & 3) == 3 && (m[0] & 3) == 3 {
                    result = -result;
                }
            }
            sub_in_place(&mut a, &m);
        }
        if m == [1] {
            result
        } else {
            0
        }
    }

    /// Modular inverse for a **prime** modulus, via Fermat's little theorem.
    ///
    /// Returns `None` if `self ≡ 0 (mod p)`.
    pub fn modinv_prime(&self, prime: &BigUint) -> Option<BigUint> {
        let a = self.rem(prime);
        if a.is_zero() {
            return None;
        }
        let exp = prime.sub(&BigUint::from_u64(2));
        Some(a.modpow(&exp, prime))
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: RngCore + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut l = vec![0u64; limbs];
            for limb in l.iter_mut() {
                *limb = rng.next_u64();
            }
            if let Some(last) = l.last_mut() {
                *last &= top_mask;
            }
            let mut candidate = BigUint { limbs: l };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value with exactly `bits` random bits.
    pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs = bits.div_ceil(64);
        let mut l = vec![0u64; limbs];
        for limb in l.iter_mut() {
            *limb = rng.next_u64();
        }
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        if let Some(last) = l.last_mut() {
            *last &= top_mask;
        }
        let mut out = BigUint { limbs: l };
        out.normalize();
        out
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: RngCore + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        let two = BigUint::from_u64(2);
        if self < &two {
            return false;
        }
        // Small-prime trial division.
        for p in [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73,
        ] {
            let pb = BigUint::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        // Write n-1 = d * 2^r with d odd.
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr(1);
            r += 1;
        }
        // One Montgomery context for every witness round: the per-modulus
        // setup (Newton inverse, R and R² divisions) would otherwise be
        // redone inside `modpow` for each of the `rounds` exponentiations.
        // The candidate is odd here (evens were rejected by trial division),
        // but fall back to `modpow` defensively if no context applies.
        let ctx = crate::montgomery::MontgomeryCtx::new(self);
        'witness: for _ in 0..rounds {
            let a = loop {
                let c = BigUint::random_below(rng, &n_minus_1);
                if c >= two {
                    break c;
                }
            };
            let mut x = match &ctx {
                Some(ctx) => ctx.pow(&a, &d),
                None => a.modpow(&d, self),
            };
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..r.saturating_sub(1) {
                x = x.mod_mul(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn hex_round_trip() {
        let cases = [
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
            "0",
        ];
        for c in cases {
            let v = BigUint::from_hex(c).unwrap();
            let back = BigUint::from_hex(&v.to_hex()).unwrap();
            assert_eq!(v, back);
        }
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let v = BigUint::from_hex("0123456789abcdef00ff").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        let padded = v.to_bytes_be_padded(16);
        assert_eq!(padded.len(), 16);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn add_sub_small() {
        let a = big(u128::MAX - 5);
        let b = big(10);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_matches_u128() {
        let a = big(0xffff_ffff_ffffu128);
        let b = big(0x1234_5678u128);
        assert_eq!(a.mul(&b), big(0xffff_ffff_ffffu128 * 0x1234_5678u128));
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shl(3).shr(3), a);
        assert_eq!(a.shr(200), BigUint::zero());
        assert_eq!(
            BigUint::one().shl(128),
            big(1).mul(&big(1u128 << 127)).mul(&big(2))
        );
    }

    #[test]
    fn div_rem_basic() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef").unwrap();
        let b = BigUint::from_hex("fedcba987654321").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
        // Dividend smaller than divisor.
        let (q2, r2) = b.div_rem(&a);
        assert!(q2.is_zero());
        assert_eq!(r2, b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn div_rem_knuth_hard_case() {
        // A case that exercises the q̂ correction step: divisor top limbs close
        // to the base, dividend constructed so the first estimate overshoots.
        let b = BigUint::from_hex("ffffffffffffffff0000000000000001").unwrap();
        let q_true = BigUint::from_hex("fffffffffffffffe").unwrap();
        let r_true = BigUint::from_hex("1234").unwrap();
        let a = b.mul(&q_true).add(&r_true);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q_true);
        assert_eq!(r, r_true);
    }

    #[test]
    fn modpow_small() {
        let p = BigUint::from_u64(1_000_000_007);
        let b = BigUint::from_u64(123_456_789);
        let e = BigUint::from_u64(987_654_321);
        // Reference via repeated u128 exponentiation.
        let mut expect = 1u128;
        let mut base = 123_456_789u128;
        let mut exp = 987_654_321u64;
        while exp > 0 {
            if exp & 1 == 1 {
                expect = expect * base % 1_000_000_007;
            }
            base = base * base % 1_000_000_007;
            exp >>= 1;
        }
        assert_eq!(b.modpow(&e, &p), BigUint::from_u128(expect));
        assert_eq!(b.modpow(&BigUint::zero(), &p), BigUint::one());
    }

    #[test]
    fn modinv_prime_works() {
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(1234567);
        let inv = a.modinv_prime(&p).unwrap();
        assert_eq!(a.mod_mul(&inv, &p), BigUint::one());
        assert!(BigUint::zero().modinv_prime(&p).is_none());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BigUint::from_u64(2).is_probable_prime(&mut rng, 20));
        assert!(BigUint::from_u64(101).is_probable_prime(&mut rng, 20));
        assert!(BigUint::from_u64(1_000_000_007).is_probable_prime(&mut rng, 20));
        assert!(!BigUint::from_u64(1).is_probable_prime(&mut rng, 20));
        assert!(!BigUint::from_u64(561).is_probable_prime(&mut rng, 20)); // Carmichael
        assert!(!BigUint::from_u64(1_000_000_008).is_probable_prime(&mut rng, 20));
        // The hard-coded 256-bit safe prime used by the fast test group.
        let p =
            BigUint::from_hex("b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f")
                .unwrap();
        assert!(p.is_probable_prime(&mut rng, 10));
    }

    #[test]
    fn jacobi_matches_euler_criterion_for_primes() {
        // Against x^((p-1)/2) mod p for a small prime and the 256-bit safe
        // prime: the Jacobi symbol must agree with Euler's criterion.
        let mut rng = StdRng::seed_from_u64(9);
        for p in [
            BigUint::from_u64(1_000_003),
            BigUint::from_hex("b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f")
                .unwrap(),
        ] {
            let exp = p.sub(&BigUint::one()).shr(1);
            for _ in 0..25 {
                let x = BigUint::random_below(&mut rng, &p);
                let euler = x.modpow_naive(&exp, &p);
                let expected = if x.is_zero() {
                    0
                } else if euler.is_one() {
                    1
                } else {
                    -1
                };
                assert_eq!(x.jacobi(&p), expected);
            }
        }
        // Known small values: (2/7) = 1, (3/7) = -1, (0/7) = 0.
        let seven = BigUint::from_u64(7);
        assert_eq!(BigUint::from_u64(2).jacobi(&seven), 1);
        assert_eq!(BigUint::from_u64(3).jacobi(&seven), -1);
        assert_eq!(BigUint::zero().jacobi(&seven), 0);
        // Composite modulus: (2/15) = 1 even though 2 is not a QR mod 15.
        assert_eq!(BigUint::from_u64(2).jacobi(&BigUint::from_u64(15)), 1);
        // Shared factor: (6/15) = 0.
        assert_eq!(BigUint::from_u64(6).jacobi(&BigUint::from_u64(15)), 0);
    }

    #[test]
    fn ordering_and_bits() {
        let a = BigUint::from_hex("100000000000000000").unwrap(); // 2^68
        assert_eq!(a.bit_len(), 69);
        assert!(a.bit(68));
        assert!(!a.bit(67));
        assert!(!a.bit(1000));
        assert!(a > BigUint::from_u64(u64::MAX));
    }
}
