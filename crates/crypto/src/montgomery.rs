//! Montgomery-arithmetic modular exponentiation engine.
//!
//! Every public-key operation in Dissent — ElGamal encryptions and layer
//! decryptions in the verifiable shuffle, Schnorr signatures on all protocol
//! messages, Chaum–Pedersen proofs of correct decryption, Diffie–Hellman pad
//! seeds — bottoms out in modular exponentiation modulo a large safe prime.
//! The textbook square-and-multiply in [`BigUint::modpow_naive`] performs a
//! full Knuth Algorithm D division after *every* multiplication, which makes
//! it the dominant cost of every protocol phase.
//!
//! This module removes those divisions.  A [`MontgomeryCtx`] precomputes,
//! once per modulus:
//!
//! * `n' = -n⁻¹ mod 2⁶⁴` — the per-limb REDC constant,
//! * `R² mod n` for `R = 2⁶⁴ᵏ` — to convert operands into Montgomery form,
//! * `R mod n` — the Montgomery form of 1.
//!
//! after which a modular multiplication is a single fused multiply/reduce
//! pass (CIOS — coarsely integrated operand scanning) with no division at
//! all.  On top of `mont_mul` the context offers:
//!
//! * [`MontgomeryCtx::pow`] — fixed 4-bit-window exponentiation,
//! * [`MontgomeryCtx::pow2`] — Shamir/Straus simultaneous double
//!   exponentiation `g^a · h^b`, sharing the squaring chain between the two
//!   exponents (this is what turns Schnorr and Chaum–Pedersen verification
//!   into a single exponentiation-shaped operation),
//! * [`MontgomeryCtx::precompute`] / [`MontgomeryCtx::pow_with_table`] —
//!   fixed-base exponentiation with a cached window table, used by
//!   `Group::exp_base` for the generator `g`.
//!
//! Like the rest of this crate, nothing here is constant-time; the research
//! reproduction trades side-channel hardening for clarity and speed.

use crate::bigint::BigUint;

/// Width of the exponentiation window, in bits.
///
/// 4 bits (16-entry tables) is the sweet spot for 256–2048-bit exponents:
/// wider windows barely reduce multiplications but double table-build cost
/// and memory; narrower windows add multiplications on the hot path.
const WINDOW_BITS: usize = 4;
/// Number of table entries for one window (`2^WINDOW_BITS`).
const WINDOW_SIZE: usize = 1 << WINDOW_BITS;
/// Number of teeth in the fixed-base comb ([`MontgomeryCtx::precompute_comb`]).
///
/// 8 teeth split a 2048-bit exponent into 256-bit columns: an exponentiation
/// needs only ~256 squarings plus ~255 table multiplications, at the price
/// of a 2⁸-entry table (64 KiB at 2048 bits) built once per base.
const COMB_TEETH: usize = 8;

/// Precomputed Montgomery context for one odd modulus.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, exactly `k` limbs (no padding beyond
    /// the top significant limb).
    n: Vec<u64>,
    /// Limb count of the modulus.
    k: usize,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0inv: u64,
    /// `R² mod n`, the to-Montgomery conversion factor.
    r2: Vec<u64>,
    /// `R mod n`, the Montgomery form of 1.
    one: Vec<u64>,
}

/// A residue held in Montgomery form (`x · R mod n`), tied to the context
/// that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontInt {
    limbs: Vec<u64>,
}

/// A precomputed window table for a fixed base, reusable across
/// exponentiations (e.g. the group generator).
#[derive(Clone, Debug)]
pub struct WindowTable {
    /// `table[i] = base^i` in Montgomery form, `i ∈ [0, WINDOW_SIZE)`.
    table: Vec<Vec<u64>>,
}

/// A Lim–Lee comb table for a fixed base.
///
/// The exponent is read as [`COMB_TEETH`] interleaved rows of `span` bits;
/// `table[mask]` holds `base^(Σ_{t ∈ mask} 2^(span·t))` in Montgomery form,
/// so one squaring plus one table multiplication consumes one bit of *every*
/// row at once.  An exponentiation then costs `span` squarings instead of
/// `bit_len` — an ~8× reduction in the squaring chain, on top of the
/// Montgomery arithmetic itself.
///
/// The table is a dual (two-block) Lim–Lee comb: `table_hi[mask]` holds
/// `table[mask]^(2^half)` where `half = ceil(span / 2)`, so each squaring
/// step can consume a column from *both* halves of the rows — the squaring
/// chain halves again to `span/2` at the cost of one extra table
/// multiplication per column and twice the memory.  Used by
/// `Group::exp_base` and every registered fixed base, where the tables are
/// built once and amortized over every key generation, ElGamal encryption,
/// re-randomization (`T·N` of them per shuffle pass) and Schnorr signature
/// in the session.
#[derive(Clone, Debug)]
pub struct CombTable {
    /// Bits per tooth row (`ceil(max_exp_bits / COMB_TEETH)`).
    span: usize,
    /// Bits of the low half of each row (`ceil(span / 2)`), the length of
    /// the squaring chain.
    half: usize,
    /// `2^COMB_TEETH` combined powers in Montgomery form.
    table: Vec<Vec<u64>>,
    /// The same powers raised to `2^half` — the second Lim–Lee block.
    table_hi: Vec<Vec<u64>>,
    /// The base the table was built for, kept so the wide-exponent fallback
    /// in [`MontgomeryCtx::pow_comb`] cannot be handed a mismatched base.
    base: BigUint,
}

impl CombTable {
    /// The largest exponent bit-length this table can handle.
    pub fn max_bits(&self) -> usize {
        self.span * COMB_TEETH
    }
}

impl MontgomeryCtx {
    /// Build a context for `modulus`.
    ///
    /// Returns `None` when Montgomery reduction does not apply: even moduli
    /// (no inverse of `n` mod `2⁶⁴`) and the degenerate moduli 0 and 1.
    pub fn new(modulus: &BigUint) -> Option<MontgomeryCtx> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();

        // Newton–Hensel iteration for n⁻¹ mod 2⁶⁴: each step doubles the
        // number of correct low bits, and x₀ = 1 is correct mod 2 for any
        // odd n, so six steps reach 64 bits.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        // R mod n and R² mod n via ordinary division; this is the only
        // place the context ever divides.
        let r = BigUint::one().shl(64 * k).rem(modulus);
        let r2 = BigUint::one().shl(128 * k).rem(modulus);

        Some(MontgomeryCtx {
            one: to_fixed_limbs(&r, k),
            r2: to_fixed_limbs(&r2, k),
            n,
            k,
            n0inv,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Convert `x` (reduced mod n first) into Montgomery form.
    pub fn to_mont(&self, x: &BigUint) -> MontInt {
        let reduced = x.rem(&self.modulus());
        MontInt {
            limbs: self.mont_mul_limbs(&to_fixed_limbs(&reduced, self.k), &self.r2),
        }
    }

    /// Convert out of Montgomery form.
    pub fn from_mont(&self, x: &MontInt) -> BigUint {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul_limbs(&x.limbs, &one))
    }

    /// Montgomery product `a · b · R⁻¹ mod n`.
    pub fn mont_mul(&self, a: &MontInt, b: &MontInt) -> MontInt {
        MontInt {
            limbs: self.mont_mul_limbs(&a.limbs, &b.limbs),
        }
    }

    /// Montgomery square `a² · R⁻¹ mod n`, via the dedicated squaring
    /// kernel (about a third cheaper than a general [`Self::mont_mul`]).
    pub fn mont_sqr(&self, a: &MontInt) -> MontInt {
        MontInt {
            limbs: self.mont_sqr_limbs(&a.limbs),
        }
    }

    /// The Montgomery form of 1.
    pub fn one(&self) -> MontInt {
        MontInt {
            limbs: self.one.clone(),
        }
    }

    /// CIOS Montgomery multiplication over raw limb slices.
    fn mont_mul_limbs(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut t = Vec::new();
        self.mul_into(a, b, &mut t);
        t
    }

    /// Dedicated Montgomery squaring over raw limb slices.
    fn mont_sqr_limbs(&self, a: &[u64]) -> Vec<u64> {
        let mut m = Vec::new();
        let mut u = Vec::new();
        self.sqr_into(a, &mut m, &mut u);
        u
    }

    /// CIOS Montgomery multiplication into a reusable buffer.
    ///
    /// Interleaves one row of the schoolbook product with one REDC step per
    /// limb, so the working value never grows beyond `k + 2` limbs and no
    /// division is performed.  Inputs must be `< n` and exactly `k` limbs;
    /// the output satisfies the same invariant.  The inner loops run over
    /// zipped slices so the optimizer drops every bounds check; `t` is
    /// caller-provided so exponentiation loops allocate nothing per step.
    fn mul_into(&self, a: &[u64], b: &[u64], t: &mut Vec<u64>) {
        let k = self.k;
        let n = &self.n;
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        t.clear();
        t.resize(k + 2, 0);

        for &ai in a {
            // t += aᵢ · b
            let ai = ai as u128;
            let mut carry: u128 = 0;
            for (tj, &bj) in t[..k].iter_mut().zip(b) {
                let cur = *tj as u128 + ai * bj as u128 + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // REDC step: add m·n with m chosen so the low limb cancels,
            // then shift t down one limb.
            let m = t[0].wrapping_mul(self.n0inv) as u128;
            let mut carry = (t[0] as u128 + m * n[0] as u128) >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m * n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            // t[k+1] ≤ 1 and the carry out of the top addition is ≤ 1, so
            // this sum cannot overflow a limb.
            t[k] = t[k + 1] + (cur >> 64) as u64;
            t[k + 1] = 0;
        }

        // The accumulated result is < 2n; one conditional subtraction
        // restores the `< n` invariant.
        if t[k] != 0 || !limbs_lt(&t[..k], n) {
            limbs_sub_in_place(t, n);
        }
        t.truncate(k);
    }

    /// Dedicated Montgomery squaring, in finely-integrated product-scanning
    /// (FIPS/Comba) form: per output column, cross products `aᵢaⱼ (i<j)` are
    /// summed once into a local accumulator and doubled at column close, the
    /// diagonal square is added, and the Montgomery `m·n` terms fold in —
    /// so the product step costs half the multiplications of a general
    /// [`Self::mont_mul_limbs`].
    ///
    /// Squarings are ~80% of an exponentiation's work (every exponent bit
    /// squares, only set windows multiply), so the cheaper kernel pays for
    /// itself immediately.  `m` and `u` are caller-provided scratch; the
    /// result is left in `u`.
    fn sqr_into(&self, a: &[u64], m: &mut Vec<u64>, u: &mut Vec<u64>) {
        let k = self.k;
        if k == 1 {
            self.mul_into(a, a, u);
            return;
        }
        let n = &self.n;
        m.clear();
        m.resize(k, 0);
        u.clear();
        u.resize(k + 1, 0);
        let mut acc = Acc3::zero();
        // Low columns 0..k: compute mᵢ per column and shift the (now zero)
        // bottom word out.
        for i in 0..k {
            let mut cross = Acc3::zero();
            let mut j = 0usize;
            while 2 * j < i {
                cross.add(a[j] as u128 * a[i - j] as u128);
                j += 1;
            }
            acc.add_doubled(&cross);
            if 2 * j == i {
                acc.add(a[j] as u128 * a[j] as u128);
            }
            for j2 in 0..i {
                acc.add(m[j2] as u128 * n[i - j2] as u128);
            }
            let mi = (acc.lo as u64).wrapping_mul(self.n0inv);
            m[i] = mi;
            acc.add(mi as u128 * n[0] as u128);
            let zero = acc.shift();
            debug_assert_eq!(zero, 0);
        }
        // High columns k..2k: pure accumulation, shifting result words out.
        for i in k..2 * k {
            let mut cross = Acc3::zero();
            let mut j = i - k + 1;
            while 2 * j < i {
                cross.add(a[j] as u128 * a[i - j] as u128);
                j += 1;
            }
            acc.add_doubled(&cross);
            if 2 * j == i && j < k {
                acc.add(a[j] as u128 * a[j] as u128);
            }
            for j2 in (i - k + 1)..k {
                acc.add(m[j2] as u128 * n[i - j2] as u128);
            }
            u[i - k] = acc.shift();
        }
        u[k] = acc.lo as u64;
        if u[k] != 0 || !limbs_lt(&u[..k], n) {
            limbs_sub_in_place(u, n);
        }
        u.truncate(k);
    }

    /// Square `r` in place through the scratch buffers.
    #[inline]
    fn sqr_swap(&self, r: &mut Vec<u64>, scratch: &mut Scratch) {
        self.sqr_into(r, &mut scratch.m, &mut scratch.t);
        std::mem::swap(r, &mut scratch.t);
    }

    /// Multiply `r` by `b` in place through the scratch buffer.
    #[inline]
    fn mul_swap(&self, r: &mut Vec<u64>, b: &[u64], scratch: &mut Scratch) {
        self.mul_into(r, b, &mut scratch.t);
        std::mem::swap(r, &mut scratch.t);
    }

    /// Build the window table `base^0 … base^(WINDOW_SIZE-1)` for
    /// [`Self::pow_with_table`].
    pub fn precompute(&self, base: &BigUint) -> WindowTable {
        let base_m = self.to_mont(base);
        let mut table = Vec::with_capacity(WINDOW_SIZE);
        table.push(self.one.clone());
        table.push(base_m.limbs);
        for i in 2..WINDOW_SIZE {
            table.push(self.mont_mul_limbs(&table[i - 1], &table[1]));
        }
        WindowTable { table }
    }

    /// `base^exponent mod n` by sliding-window exponentiation.
    ///
    /// The window width adapts to the exponent size (wider windows amortize
    /// their odd-power table over more bits); sliding — rather than fixed —
    /// windows skip runs of zero bits entirely, cutting the number of
    /// window multiplications by ~30% for random exponents.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return self.from_mont(&self.one());
        }
        let bits = exponent.bit_len();
        let w = match bits {
            0..=24 => 1,
            25..=96 => 3,
            97..=768 => 4,
            769..=1536 => 5,
            _ => 6,
        };
        // Odd powers base^1, base^3, …, base^(2^w − 1) in Montgomery form.
        let base_m = self.to_mont(base);
        let base_sq = self.mont_sqr_limbs(&base_m.limbs);
        let mut odd = Vec::with_capacity(1 << (w - 1));
        odd.push(base_m.limbs);
        for i in 1..1usize << (w - 1) {
            odd.push(self.mont_mul_limbs(&odd[i - 1], &base_sq));
        }

        let mut scratch = Scratch::default();
        // The scan starts at the exponent's set top bit, so the first
        // iteration always initializes `r` from a window.
        let mut r: Vec<u64> = Vec::new();
        let mut started = false;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exponent.bit(i as usize) {
                debug_assert!(started);
                self.sqr_swap(&mut r, &mut scratch);
                i -= 1;
                continue;
            }
            // Take the widest window ending on a set bit.
            let bottom = (i - w as isize + 1).max(0);
            let mut j = bottom;
            while !exponent.bit(j as usize) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let mut val = 0usize;
            for b in (j..=i).rev() {
                val = (val << 1) | exponent.bit(b as usize) as usize;
            }
            if started {
                for _ in 0..width {
                    self.sqr_swap(&mut r, &mut scratch);
                }
                self.mul_swap(&mut r, &odd[val >> 1], &mut scratch);
            } else {
                r = odd[val >> 1].clone();
                started = true;
            }
            i = j - 1;
        }
        self.from_mont(&MontInt { limbs: r })
    }

    /// `base^exponent mod n` using a previously built window table.
    pub fn pow_with_table(&self, table: &WindowTable, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return self.from_mont(&self.one());
        }
        let windows = exponent.bit_len().div_ceil(WINDOW_BITS);
        let mut scratch = Scratch::default();
        let mut r: Vec<u64> = Vec::new();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..WINDOW_BITS {
                    self.sqr_swap(&mut r, &mut scratch);
                }
            }
            let idx = window_of(exponent, w);
            if idx != 0 {
                if started {
                    self.mul_swap(&mut r, &table.table[idx], &mut scratch);
                } else {
                    // First non-zero window: start from the table entry and
                    // skip the leading multiplication by one.
                    r = table.table[idx].clone();
                    started = true;
                }
            }
        }
        if !started {
            r = self.one.clone();
        }
        self.from_mont(&MontInt { limbs: r })
    }

    /// Build a [`CombTable`] for `base`, covering exponents up to
    /// `max_exp_bits` bits.
    ///
    /// Costs roughly two full exponentiations (two blocks of
    /// `COMB_TEETH·span/2`-ish squarings plus `2·2^COMB_TEETH`
    /// multiplications), repaid after a handful of [`Self::pow_comb`]
    /// calls.
    pub fn precompute_comb(&self, base: &BigUint, max_exp_bits: usize) -> CombTable {
        let span = max_exp_bits.div_ceil(COMB_TEETH).max(1);
        let half = span.div_ceil(2);
        // powers[t] = base^(2^(span·t)) in Montgomery form.
        let mut powers = Vec::with_capacity(COMB_TEETH);
        powers.push(self.to_mont(base).limbs);
        for t in 1..COMB_TEETH {
            let mut cur = powers[t - 1].clone();
            for _ in 0..span {
                cur = self.mont_sqr_limbs(&cur);
            }
            powers.push(cur);
        }
        // powers_hi[t] = powers[t]^(2^half) — the second Lim–Lee block.
        let powers_hi: Vec<Vec<u64>> = powers
            .iter()
            .map(|p| {
                let mut cur = p.clone();
                for _ in 0..half {
                    cur = self.mont_sqr_limbs(&cur);
                }
                cur
            })
            .collect();
        // table[mask] = Π_{t ∈ mask} powers[t], built by peeling the top bit.
        let build = |powers: &[Vec<u64>]| {
            let mut table = Vec::with_capacity(1 << COMB_TEETH);
            table.push(self.one.clone());
            for mask in 1usize..1 << COMB_TEETH {
                let rest = mask & (mask - 1);
                let tooth = (mask ^ rest).trailing_zeros() as usize;
                if rest == 0 {
                    table.push(powers[tooth].clone());
                } else {
                    table.push(self.mont_mul_limbs(&table[rest], &powers[tooth]));
                }
            }
            table
        };
        CombTable {
            span,
            half,
            table: build(&powers),
            table_hi: build(&powers_hi),
            base: base.clone(),
        }
    }

    /// Fixed-base exponentiation through a [`CombTable`].
    ///
    /// Falls back to [`Self::pow`] on the table's own base if the exponent
    /// is wider than the table was built for.
    pub fn pow_comb(&self, comb: &CombTable, exponent: &BigUint) -> BigUint {
        self.from_mont(&self.pow_comb_mont(comb, exponent))
    }

    /// [`Self::pow_comb`] that stays in the Montgomery domain.
    ///
    /// Batched callers (`Group::exp_mul_batch`, the shuffle prover's
    /// re-randomization) multiply the result straight into other
    /// Montgomery-form factors, so converting out here would only be undone
    /// again; they pay one `from_mont` per finished product instead of one
    /// per exponentiation.
    pub fn pow_comb_mont(&self, comb: &CombTable, exponent: &BigUint) -> MontInt {
        if exponent.bit_len() > comb.max_bits() {
            return self.to_mont(&self.pow(&comb.base, exponent));
        }
        // Dual-block evaluation: column `b` of the low half pairs with
        // column `b + half` served from `table_hi` (whose entries carry the
        // 2^half scaling), so the squaring chain is `half ≈ span/2` long —
        // Π_b (table[mask(b)] · table_hi[mask(b + half)])^(2^b).
        let span = comb.span;
        let half = comb.half;
        let gather = |b: usize| {
            let mut mask = 0usize;
            for t in 0..COMB_TEETH {
                mask |= (exponent.bit(b + span * t) as usize) << t;
            }
            mask
        };
        let mut scratch = Scratch::default();
        let mut r: Vec<u64> = Vec::new();
        let mut started = false;
        for b in (0..half).rev() {
            if started {
                self.sqr_swap(&mut r, &mut scratch);
            }
            let mask_lo = gather(b);
            // For odd spans the final high column falls outside the rows;
            // its bits are all zero by construction.
            let mask_hi = if b + half < span { gather(b + half) } else { 0 };
            for (mask, table) in [(mask_lo, &comb.table), (mask_hi, &comb.table_hi)] {
                if mask != 0 {
                    if started {
                        self.mul_swap(&mut r, &table[mask], &mut scratch);
                    } else {
                        r = table[mask].clone();
                        started = true;
                    }
                }
            }
        }
        if !started {
            r = self.one.clone();
        }
        MontInt { limbs: r }
    }

    /// Simultaneous double exponentiation `g^a · h^b mod n` (Shamir/Straus).
    ///
    /// One shared squaring chain serves both exponents, so the cost is
    /// roughly one `pow` plus a second set of window multiplications — about
    /// 1.7× cheaper than two independent exponentiations.  This is the
    /// engine behind `Group::multi_exp`, which collapses the two-sided
    /// verification equations of Schnorr signatures and Chaum–Pedersen
    /// proofs.
    pub fn pow2(&self, g: &BigUint, a: &BigUint, h: &BigUint, b: &BigUint) -> BigUint {
        let g_table = self.precompute(g);
        let h_table = self.precompute(h);
        self.pow2_with_tables(&g_table, a, &h_table, b)
    }

    /// [`Self::pow2`] with caller-provided window tables (lets `Group`
    /// reuse the cached generator table for the `g` side).
    pub fn pow2_with_tables(
        &self,
        g_table: &WindowTable,
        a: &BigUint,
        h_table: &WindowTable,
        b: &BigUint,
    ) -> BigUint {
        self.pow_n_with_tables(&[g_table, h_table], &[a, b])
    }

    /// Simultaneous n-way exponentiation `Π bᵢ^eᵢ mod n` by interleaved
    /// Straus: one shared squaring chain serves every exponent, and each
    /// non-zero window of each exponent costs one table multiplication.
    ///
    /// This is the batch-verification workhorse for small-to-medium base
    /// counts; above [`pippenger_window`]'s crossover the bucketed
    /// [`Self::pow_n_pippenger`] wins because it needs no per-base tables.
    pub fn pow_n_with_tables(&self, tables: &[&WindowTable], exps: &[&BigUint]) -> BigUint {
        assert_eq!(tables.len(), exps.len(), "one table per exponent");
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        let windows = max_bits.div_ceil(WINDOW_BITS);
        let mut scratch = Scratch::default();
        let mut r: Vec<u64> = Vec::new();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..WINDOW_BITS {
                    self.sqr_swap(&mut r, &mut scratch);
                }
            }
            for (table, exp) in tables.iter().zip(exps) {
                let idx = window_of(exp, w);
                if idx != 0 {
                    if started {
                        self.mul_swap(&mut r, &table.table[idx], &mut scratch);
                    } else {
                        r = table.table[idx].clone();
                        started = true;
                    }
                }
            }
        }
        if !started {
            r = self.one.clone();
        }
        self.from_mont(&MontInt { limbs: r })
    }

    /// Simultaneous n-way exponentiation `Π bᵢ^eᵢ mod n` by Pippenger's
    /// bucket method with `c`-bit windows.
    ///
    /// Per window, every base is multiplied into the bucket selected by its
    /// exponent digit (one multiplication per base, consuming `c` bits at
    /// once), then the buckets are folded with the running-sum trick
    /// (`Σ d·Bd` as `Π` of suffix products, ~2·2ᶜ multiplications).  No
    /// per-base table is built, so for large n the amortized cost per base
    /// approaches `bits/c` multiplications — below Straus' fixed
    /// `~0.23·bits + 14` once n exceeds the [`pippenger_window`] crossover.
    pub fn pow_n_pippenger(&self, bases: &[&BigUint], exps: &[&BigUint], c: usize) -> BigUint {
        assert_eq!(bases.len(), exps.len(), "one base per exponent");
        assert!((1..=16).contains(&c), "window width out of range");
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        if bases.is_empty() || max_bits == 0 {
            return self.from_mont(&self.one());
        }
        let bases_m: Vec<Vec<u64>> = bases.iter().map(|b| self.to_mont(b).limbs).collect();
        let windows = max_bits.div_ceil(c);
        let mut scratch = Scratch::default();
        let mut r: Vec<u64> = Vec::new();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..c {
                    self.sqr_swap(&mut r, &mut scratch);
                }
            }
            // Accumulate each base into the bucket of its digit.
            let mut buckets: Vec<Option<Vec<u64>>> = vec![None; (1 << c) - 1];
            for (base_m, exp) in bases_m.iter().zip(exps) {
                let d = window_at(exp, w * c, c);
                if d != 0 {
                    buckets[d - 1] = Some(match buckets[d - 1].take() {
                        Some(acc) => self.mont_mul_limbs(&acc, base_m),
                        None => base_m.clone(),
                    });
                }
            }
            // Fold: Σ d·Bd multiplicatively, via suffix products.  `running`
            // is Π_{e ≥ d} B_e; multiplying it into `sum` once per d yields
            // Π B_d^d without ever materializing the digit weights.
            let mut running: Option<Vec<u64>> = None;
            let mut sum: Option<Vec<u64>> = None;
            for bucket in buckets.into_iter().rev() {
                if let Some(v) = bucket {
                    running = Some(match running.take() {
                        Some(acc) => self.mont_mul_limbs(&acc, &v),
                        None => v,
                    });
                }
                if let Some(run) = &running {
                    sum = Some(match sum.take() {
                        Some(s) => self.mont_mul_limbs(&s, run),
                        None => run.clone(),
                    });
                }
            }
            if let Some(s) = sum {
                if started {
                    self.mul_swap(&mut r, &s, &mut scratch);
                } else {
                    r = s;
                    started = true;
                }
            }
        }
        if !started {
            r = self.one.clone();
        }
        self.from_mont(&MontInt { limbs: r })
    }

    /// Simultaneous n-way exponentiation, picking interleaved Straus or
    /// bucketed Pippenger by the [`pippenger_window`] cost model.
    pub fn pow_n(&self, bases: &[&BigUint], exps: &[&BigUint]) -> BigUint {
        assert_eq!(bases.len(), exps.len(), "one base per exponent");
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        if let Some(c) = pippenger_window(bases.len(), max_bits) {
            return self.pow_n_pippenger(bases, exps, c);
        }
        let tables: Vec<WindowTable> = bases.iter().map(|b| self.precompute(b)).collect();
        let refs: Vec<&WindowTable> = tables.iter().collect();
        self.pow_n_with_tables(&refs, exps)
    }
}

/// Pick the Pippenger window width for an n-base multi-exponentiation of
/// `max_bits`-bit exponents, or `None` when interleaved Straus is predicted
/// cheaper.
///
/// Cost model (in Montgomery multiplications, squarings ≈ multiplications):
/// Straus pays a `WINDOW_SIZE − 2` table build per base plus ~15/16 of a
/// multiplication per 4-bit window per base; Pippenger pays one
/// multiplication per base per `c`-bit window plus ~2·2ᶜ per window for the
/// bucket fold.  The crossover lands around a few hundred bases for 256-bit
/// exponents and grows with exponent width.
pub fn pippenger_window(n_bases: usize, max_bits: usize) -> Option<usize> {
    if n_bases < 32 || max_bits == 0 {
        return None;
    }
    let straus =
        max_bits + n_bases * (WINDOW_SIZE - 2) + max_bits.div_ceil(WINDOW_BITS) * n_bases * 15 / 16;
    let mut best: Option<(usize, usize)> = None;
    for c in 2..=12 {
        let cost = max_bits + max_bits.div_ceil(c) * (n_bases + 2 * (1 << c));
        if best.is_none_or(|(b, _)| cost < b) {
            best = Some((cost, c));
        }
    }
    let (cost, c) = best?;
    (cost < straus).then_some(c)
}

/// Reusable scratch buffers for exponentiation loops: once warm, a whole
/// squaring chain runs without a single heap allocation.
#[derive(Default)]
struct Scratch {
    /// Working buffer for CIOS products and squaring results.
    t: Vec<u64>,
    /// The `m` coefficient buffer of the squaring kernel.
    m: Vec<u64>,
}

/// A three-word (192-bit) column accumulator for product-scanning loops.
///
/// `lo` holds the low 128 bits, `hi` counts overflows out of them.  All
/// products within one column are independent, so the only serial work per
/// product is a single 128-bit add — the property that makes the
/// product-scanning squaring kernel fast.
#[derive(Clone, Copy)]
struct Acc3 {
    lo: u128,
    hi: u64,
}

impl Acc3 {
    #[inline(always)]
    fn zero() -> Acc3 {
        Acc3 { lo: 0, hi: 0 }
    }

    /// Accumulate one 128-bit product.
    #[inline(always)]
    fn add(&mut self, p: u128) {
        let (sum, overflow) = self.lo.overflowing_add(p);
        self.lo = sum;
        self.hi += overflow as u64;
    }

    /// Accumulate `2 ×` another accumulator's value (used to double the
    /// once-computed cross products of a squaring column).
    #[inline(always)]
    fn add_doubled(&mut self, other: &Acc3) {
        self.add(other.lo << 1);
        self.hi += (other.hi << 1) | ((other.lo >> 127) as u64);
    }

    /// Pop the low word, shifting the accumulator right by one word.
    #[inline(always)]
    fn shift(&mut self) -> u64 {
        let out = self.lo as u64;
        self.lo = (self.lo >> 64) | ((self.hi as u128) << 64);
        self.hi = 0;
        out
    }
}

/// Extract the `w`-th `WINDOW_BITS`-wide window of `exponent`.
///
/// Windows never straddle limbs because 64 is a multiple of `WINDOW_BITS`.
#[inline]
fn window_of(exponent: &BigUint, w: usize) -> usize {
    let limbs = exponent.limbs();
    let limb_idx = w * WINDOW_BITS / 64;
    if limb_idx >= limbs.len() {
        return 0;
    }
    ((limbs[limb_idx] >> (w * WINDOW_BITS % 64)) & (WINDOW_SIZE as u64 - 1)) as usize
}

/// Extract a `width`-bit window of `exponent` starting at bit `bit`
/// (little-endian), for arbitrary widths that may straddle a limb boundary.
#[inline]
fn window_at(exponent: &BigUint, bit: usize, width: usize) -> usize {
    debug_assert!(width <= 16);
    let limbs = exponent.limbs();
    let limb_idx = bit / 64;
    if limb_idx >= limbs.len() {
        return 0;
    }
    let shift = bit % 64;
    let mut v = limbs[limb_idx] >> shift;
    // `shift + width > 64` implies `shift > 0`, so the shl below is in range.
    if shift + width > 64 && limb_idx + 1 < limbs.len() {
        v |= limbs[limb_idx + 1] << (64 - shift);
    }
    (v & ((1u64 << width) - 1)) as usize
}

/// Copy a value into exactly `k` limbs (the value must fit).
fn to_fixed_limbs(x: &BigUint, k: usize) -> Vec<u64> {
    let src = x.limbs();
    debug_assert!(src.len() <= k, "value wider than the modulus");
    let mut out = vec![0u64; k];
    out[..src.len()].copy_from_slice(src);
    out
}

/// `a < b` over equal-length limb slices.
#[inline]
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// `t -= n` in place; `t` may be one limb longer than `n`.
#[inline]
fn limbs_sub_in_place(t: &mut [u64], n: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..n.len() {
        let (d1, b1) = t[i].overflowing_sub(n[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        t[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    for limb in t.iter_mut().skip(n.len()) {
        let (d, b) = limb.overflowing_sub(borrow);
        *limb = d;
        borrow = b as u64;
        if borrow == 0 {
            break;
        }
    }
    debug_assert_eq!(borrow, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hex(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    /// The 256-bit safe prime used by the fast test group.
    fn p256() -> BigUint {
        hex("b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f")
    }

    #[test]
    fn rejects_even_and_degenerate_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::from_u64(100)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let ctx = MontgomeryCtx::new(&p256()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = BigUint::random_below(&mut rng, &p256());
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mont_mul_matches_mod_mul() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = BigUint::random_below(&mut rng, &p);
            let b = BigUint::random_below(&mut rng, &p);
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, a.mod_mul(&b, &p));
        }
    }

    #[test]
    fn pow_matches_naive_small_modulus() {
        // Single-limb odd modulus exercises the k = 1 REDC path.
        let p = BigUint::from_u64(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let base = BigUint::from_u64(123_456_789);
        let exp = BigUint::from_u64(987_654_321);
        assert_eq!(ctx.pow(&base, &exp), base.modpow_naive(&exp, &p));
    }

    #[test]
    fn pow_edge_exponents_and_bases() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let g = BigUint::from_u64(4);
        let p_minus_1 = p.sub(&BigUint::one());
        // exponent 0 and 1
        assert_eq!(ctx.pow(&g, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&g, &BigUint::one()), g);
        // base ≡ 0
        assert_eq!(
            ctx.pow(&BigUint::zero(), &BigUint::from_u64(17)),
            BigUint::zero()
        );
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), BigUint::one());
        // base = p (≡ 0) and base = p−1 (order 2)
        assert_eq!(ctx.pow(&p, &BigUint::from_u64(3)), BigUint::zero());
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(2)), BigUint::one());
        assert_eq!(ctx.pow(&p_minus_1, &BigUint::from_u64(3)), p_minus_1);
        // exponent p−1 (Fermat)
        assert_eq!(ctx.pow(&g, &p_minus_1), BigUint::one());
    }

    #[test]
    fn pow2_matches_product_of_pows() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = BigUint::random_below(&mut rng, &p);
            let h = BigUint::random_below(&mut rng, &p);
            let a = BigUint::random_below(&mut rng, &p);
            let b = BigUint::random_below(&mut rng, &p);
            let expect = ctx.pow(&g, &a).mod_mul(&ctx.pow(&h, &b), &p);
            assert_eq!(ctx.pow2(&g, &a, &h, &b), expect);
        }
    }

    #[test]
    fn pow2_zero_exponent_sides() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let g = BigUint::from_u64(4);
        let h = BigUint::from_u64(9);
        let e = BigUint::from_u64(1234);
        assert_eq!(
            ctx.pow2(&g, &BigUint::zero(), &h, &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(ctx.pow2(&g, &e, &h, &BigUint::zero()), ctx.pow(&g, &e));
        assert_eq!(ctx.pow2(&g, &BigUint::zero(), &h, &e), ctx.pow(&h, &e));
    }

    #[test]
    fn comb_matches_sliding_window_pow() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let g = BigUint::from_u64(4);
        let comb = ctx.precompute_comb(&g, p.bit_len());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let e = BigUint::random_below(&mut rng, &p);
            assert_eq!(ctx.pow_comb(&comb, &e), ctx.pow(&g, &e));
        }
        // Edge exponents, including ones wider than the table (fallback).
        for e in [
            BigUint::zero(),
            BigUint::one(),
            p.sub(&BigUint::one()),
            BigUint::one().shl(p.bit_len() + 7),
        ] {
            assert_eq!(ctx.pow_comb(&comb, &e), ctx.pow(&g, &e));
        }
    }

    #[test]
    fn sliding_window_widths_agree() {
        // Exercise every window-width branch of `pow` against the naive path.
        let mut rng = StdRng::seed_from_u64(6);
        for bits in [8usize, 40, 200, 1000] {
            let p = p256();
            let ctx = MontgomeryCtx::new(&p).unwrap();
            let base = BigUint::random_below(&mut rng, &p);
            let e = BigUint::random_bits(&mut rng, bits);
            assert_eq!(ctx.pow(&base, &e), base.modpow_naive(&e, &p));
        }
    }

    /// Naive reference: fold of independent exponentiations.
    fn naive_multi(bases: &[&BigUint], exps: &[&BigUint], p: &BigUint) -> BigUint {
        bases.iter().zip(exps).fold(BigUint::one(), |acc, (b, e)| {
            acc.mod_mul(&b.modpow_naive(e, p), p)
        })
    }

    #[test]
    fn pow_n_straus_matches_naive_fold() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1usize, 2, 3, 5, 8] {
            let bases: Vec<BigUint> = (0..n)
                .map(|_| BigUint::random_below(&mut rng, &p))
                .collect();
            let exps: Vec<BigUint> = (0..n)
                .map(|_| BigUint::random_below(&mut rng, &p))
                .collect();
            let base_refs: Vec<&BigUint> = bases.iter().collect();
            let exp_refs: Vec<&BigUint> = exps.iter().collect();
            let tables: Vec<WindowTable> = bases.iter().map(|b| ctx.precompute(b)).collect();
            let table_refs: Vec<&WindowTable> = tables.iter().collect();
            let expect = naive_multi(&base_refs, &exp_refs, &p);
            assert_eq!(ctx.pow_n_with_tables(&table_refs, &exp_refs), expect);
            assert_eq!(ctx.pow_n(&base_refs, &exp_refs), expect);
        }
    }

    #[test]
    fn pow_n_pippenger_matches_naive_fold() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for (n, c) in [(1usize, 1usize), (4, 2), (17, 5), (40, 7), (64, 8)] {
            let bases: Vec<BigUint> = (0..n)
                .map(|_| BigUint::random_below(&mut rng, &p))
                .collect();
            let exps: Vec<BigUint> = (0..n)
                .map(|_| BigUint::random_below(&mut rng, &p))
                .collect();
            let base_refs: Vec<&BigUint> = bases.iter().collect();
            let exp_refs: Vec<&BigUint> = exps.iter().collect();
            assert_eq!(
                ctx.pow_n_pippenger(&base_refs, &exp_refs, c),
                naive_multi(&base_refs, &exp_refs, &p)
            );
        }
    }

    #[test]
    fn pow_n_edge_exponents() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let g = BigUint::from_u64(4);
        let h = BigUint::from_u64(9);
        let zero = BigUint::zero();
        // Empty product is 1; all-zero exponents give 1 on both paths.
        assert_eq!(ctx.pow_n(&[], &[]), BigUint::one());
        assert_eq!(ctx.pow_n(&[&g, &h], &[&zero, &zero]), BigUint::one());
        assert_eq!(
            ctx.pow_n_pippenger(&[&g, &h], &[&zero, &zero], 4),
            BigUint::one()
        );
        // Mixed zero / non-zero exponents.
        let e = BigUint::from_u64(1234);
        assert_eq!(ctx.pow_n(&[&g, &h], &[&e, &zero]), ctx.pow(&g, &e));
        assert_eq!(
            ctx.pow_n_pippenger(&[&g, &h], &[&zero, &e], 3),
            ctx.pow(&h, &e)
        );
    }

    #[test]
    fn pippenger_window_crossover_shape() {
        // Small batches always use Straus.
        assert_eq!(pippenger_window(1, 256), None);
        assert_eq!(pippenger_window(16, 2048), None);
        // Very large batches switch to Pippenger with a sane window width.
        let c = pippenger_window(2048, 256).expect("large batches use Pippenger");
        assert!((2..=12).contains(&c));
        // Wider exponents push the crossover upward, never downward.
        for n in [32usize, 64, 256, 1024] {
            if pippenger_window(n, 2048).is_some() {
                assert!(pippenger_window(n, 256).is_some());
            }
        }
        assert_eq!(pippenger_window(64, 0), None);
    }

    #[test]
    fn fixed_base_table_reuse_is_consistent() {
        let p = p256();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let table = ctx.precompute(&BigUint::from_u64(4));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let e = BigUint::random_below(&mut rng, &p);
            assert_eq!(
                ctx.pow_with_table(&table, &e),
                ctx.pow(&BigUint::from_u64(4), &e)
            );
        }
    }
}
