//! Deterministic, seedable PRNG built on ChaCha20.
//!
//! Every place Dissent needs "PRNG(K)" — DC-net pads, the self-randomizing
//! message padding, permutation sampling inside the shuffle, Fiat–Shamir
//! challenge expansion — uses this generator so that the exact same bytes can
//! be recomputed later by any party holding the seed.  That reproducibility
//! is what the accusation process (§3.9 of the paper) relies on: servers
//! re-derive individual pad bits from the shared secrets to trace a
//! disruptor.

use crate::chacha::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::hmac::hkdf_key;
use rand::{CryptoRng, RngCore};

/// A deterministic ChaCha20-based pseudo-random generator.
#[derive(Clone)]
pub struct DetPrng {
    stream: ChaCha20,
    /// Remaining bits of the byte buffered for [`DetPrng::bit`], served
    /// LSB-first.
    bit_buf: u8,
    bit_left: u8,
}

impl DetPrng {
    /// Seed from a 32-byte key and a domain-separation label.
    ///
    /// Different labels over the same key yield independent streams; Dissent
    /// uses labels such as `"dcnet-pad"`, `"msg-pad"` and `"shuffle-perm"`
    /// combined with round numbers.
    pub fn new(key: &[u8; KEY_LEN], label: &[u8]) -> Self {
        // Derive both the cipher key and nonce from (key, label) so the
        // label acts as a full domain separator.
        let derived = hkdf_key(b"dissent-prng", key, label);
        let mut nonce = [0u8; NONCE_LEN];
        let nonce_src = hkdf_key(b"dissent-prng-nonce", key, label);
        nonce.copy_from_slice(&nonce_src[..NONCE_LEN]);
        DetPrng {
            stream: ChaCha20::new(&derived, &nonce),
            bit_buf: 0,
            bit_left: 0,
        }
    }

    /// Seed from arbitrary-length keying material.
    pub fn from_material(material: &[u8], label: &[u8]) -> Self {
        let key = hkdf_key(b"dissent-prng-material", material, b"seed");
        Self::new(&key, label)
    }

    /// Produce `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        self.stream.keystream(len)
    }

    /// Fill a buffer with pseudo-random bytes.
    ///
    /// Large fills stream through the multi-block ChaCha20 kernel in 256 B
    /// strides (see [`crate::chacha::chacha20_blocks4`]); the byte stream is
    /// identical to byte-at-a-time draws for every chunking.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.stream.fill(out);
    }

    /// XOR the pseudo-random stream into `data` in place, without
    /// materializing the stream (see [`ChaCha20::apply`]).  Consumes exactly
    /// the bytes [`DetPrng::fill`] would have.
    pub fn xor_into(&mut self, data: &mut [u8]) {
        self.stream.apply(data);
    }

    /// Reposition the stream at byte offset `pos` — O(1), because ChaCha20
    /// is a random-access keystream.  Any buffered [`DetPrng::bit`] state is
    /// discarded.
    pub fn seek(&mut self, pos: u64) {
        self.stream.seek(pos);
        self.bit_left = 0;
    }

    /// A single pseudo-random bit.
    ///
    /// Bits are served LSB-first from one buffered stream byte, so eight
    /// consecutive calls consume a single stream byte (shuffle challenge
    /// derivation draws thousands).  Byte-level draws interleaved between
    /// `bit` calls leave the buffered bits intact; only [`DetPrng::seek`]
    /// discards them.
    pub fn bit(&mut self) -> bool {
        if self.bit_left == 0 {
            let mut b = [0u8; 1];
            self.fill(&mut b);
            self.bit_buf = b[0];
            self.bit_left = 8;
        }
        let v = self.bit_buf & 1 == 1;
        self.bit_buf >>= 1;
        self.bit_left -= 1;
        v
    }

    /// A uniformly random `u64` below `bound` (rejection sampling).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below with zero bound");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl RngCore for DetPrng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

impl CryptoRng for DetPrng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed_and_label() {
        let key = [42u8; 32];
        let a = DetPrng::new(&key, b"pad").bytes(128);
        let b = DetPrng::new(&key, b"pad").bytes(128);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_domain_separate() {
        let key = [42u8; 32];
        let a = DetPrng::new(&key, b"pad-round-1").bytes(64);
        let b = DetPrng::new(&key, b"pad-round-2").bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let a = DetPrng::new(&[1u8; 32], b"x").bytes(64);
        let b = DetPrng::new(&[2u8; 32], b"x").bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn from_material_accepts_any_length() {
        let a = DetPrng::from_material(b"short", b"x").bytes(32);
        let b = DetPrng::from_material(&[7u8; 200], b"x").bytes(32);
        assert_ne!(a, b);
        assert_eq!(DetPrng::from_material(b"short", b"x").bytes(32), a);
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut prng = DetPrng::new(&[3u8; 32], b"bound");
        for _ in 0..1000 {
            assert!(prng.u64_below(17) < 17);
        }
    }

    #[test]
    fn rngcore_integration_with_rand() {
        use rand::seq::SliceRandom;
        let mut prng = DetPrng::new(&[5u8; 32], b"shuffle");
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut prng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And deterministic.
        let mut prng2 = DetPrng::new(&[5u8; 32], b"shuffle");
        let mut v2: Vec<u32> = (0..100).collect();
        v2.shuffle(&mut prng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn bit_is_roughly_balanced() {
        let mut prng = DetPrng::new(&[9u8; 32], b"bits");
        let ones = (0..10_000).filter(|_| prng.bit()).count();
        assert!(ones > 4500 && ones < 5500, "ones = {ones}");
    }

    #[test]
    fn bits_are_served_from_buffered_bytes() {
        // Eight bit() calls must consume exactly one stream byte, LSB-first.
        let key = [4u8; 32];
        let reference = DetPrng::new(&key, b"bitbuf").bytes(4);
        let mut prng = DetPrng::new(&key, b"bitbuf");
        for (byte_idx, &byte) in reference.iter().enumerate() {
            for k in 0..8 {
                assert_eq!(prng.bit(), (byte >> k) & 1 == 1, "byte {byte_idx} bit {k}");
            }
        }
    }

    #[test]
    fn seek_matches_sequential_bytes() {
        let key = [6u8; 32];
        let whole = DetPrng::new(&key, b"seek").bytes(300);
        for pos in [0usize, 1, 63, 64, 65, 200] {
            let mut prng = DetPrng::new(&key, b"seek");
            prng.seek(pos as u64);
            assert_eq!(prng.bytes(16), whole[pos..pos + 16], "pos {pos}");
        }
    }

    #[test]
    fn xor_into_equals_bytes_xor() {
        let key = [8u8; 32];
        let data: Vec<u8> = (0..777).map(|i| (i % 251) as u8).collect();
        let stream = DetPrng::new(&key, b"fused").bytes(data.len());
        let expected: Vec<u8> = data.iter().zip(&stream).map(|(d, s)| d ^ s).collect();
        let mut fused = data.clone();
        DetPrng::new(&key, b"fused").xor_into(&mut fused);
        assert_eq!(fused, expected);
    }
}
