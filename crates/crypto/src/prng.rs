//! Deterministic, seedable PRNG built on ChaCha20.
//!
//! Every place Dissent needs "PRNG(K)" — DC-net pads, the self-randomizing
//! message padding, permutation sampling inside the shuffle, Fiat–Shamir
//! challenge expansion — uses this generator so that the exact same bytes can
//! be recomputed later by any party holding the seed.  That reproducibility
//! is what the accusation process (§3.9 of the paper) relies on: servers
//! re-derive individual pad bits from the shared secrets to trace a
//! disruptor.

use crate::chacha::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::hmac::hkdf_key;
use rand::{CryptoRng, RngCore};

/// A deterministic ChaCha20-based pseudo-random generator.
#[derive(Clone)]
pub struct DetPrng {
    stream: ChaCha20,
}

impl DetPrng {
    /// Seed from a 32-byte key and a domain-separation label.
    ///
    /// Different labels over the same key yield independent streams; Dissent
    /// uses labels such as `"dcnet-pad"`, `"msg-pad"` and `"shuffle-perm"`
    /// combined with round numbers.
    pub fn new(key: &[u8; KEY_LEN], label: &[u8]) -> Self {
        // Derive both the cipher key and nonce from (key, label) so the
        // label acts as a full domain separator.
        let derived = hkdf_key(b"dissent-prng", key, label);
        let mut nonce = [0u8; NONCE_LEN];
        let nonce_src = hkdf_key(b"dissent-prng-nonce", key, label);
        nonce.copy_from_slice(&nonce_src[..NONCE_LEN]);
        DetPrng {
            stream: ChaCha20::new(&derived, &nonce),
        }
    }

    /// Seed from arbitrary-length keying material.
    pub fn from_material(material: &[u8], label: &[u8]) -> Self {
        let key = hkdf_key(b"dissent-prng-material", material, b"seed");
        Self::new(&key, label)
    }

    /// Produce `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        self.stream.keystream(len)
    }

    /// Fill a buffer with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.stream.fill(out);
    }

    /// A single pseudo-random bit.
    pub fn bit(&mut self) -> bool {
        self.bytes(1)[0] & 1 == 1
    }

    /// A uniformly random `u64` below `bound` (rejection sampling).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below with zero bound");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl RngCore for DetPrng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

impl CryptoRng for DetPrng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed_and_label() {
        let key = [42u8; 32];
        let a = DetPrng::new(&key, b"pad").bytes(128);
        let b = DetPrng::new(&key, b"pad").bytes(128);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_domain_separate() {
        let key = [42u8; 32];
        let a = DetPrng::new(&key, b"pad-round-1").bytes(64);
        let b = DetPrng::new(&key, b"pad-round-2").bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let a = DetPrng::new(&[1u8; 32], b"x").bytes(64);
        let b = DetPrng::new(&[2u8; 32], b"x").bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn from_material_accepts_any_length() {
        let a = DetPrng::from_material(b"short", b"x").bytes(32);
        let b = DetPrng::from_material(&[7u8; 200], b"x").bytes(32);
        assert_ne!(a, b);
        assert_eq!(DetPrng::from_material(b"short", b"x").bytes(32), a);
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut prng = DetPrng::new(&[3u8; 32], b"bound");
        for _ in 0..1000 {
            assert!(prng.u64_below(17) < 17);
        }
    }

    #[test]
    fn rngcore_integration_with_rand() {
        use rand::seq::SliceRandom;
        let mut prng = DetPrng::new(&[5u8; 32], b"shuffle");
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut prng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And deterministic.
        let mut prng2 = DetPrng::new(&[5u8; 32], b"shuffle");
        let mut v2: Vec<u32> = (0..100).collect();
        v2.shuffle(&mut prng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn bit_is_roughly_balanced() {
        let mut prng = DetPrng::new(&[9u8; 32], b"bits");
        let ones = (0..10_000).filter(|_| prng.bit()).count();
        assert!(ones > 4500 && ones < 5500, "ones = {ones}");
    }
}
