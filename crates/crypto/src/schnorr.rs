//! Schnorr signatures.
//!
//! Every Dissent protocol message is signed (paper §3.3: "All network
//! messages are signed to ensure integrity and accountability").  Long-term
//! identity keys authenticate clients and servers to each other; pseudonym
//! keys — whose public halves emerge from the key shuffle — sign anonymous
//! slot contents and accusations without revealing which client owns them.

use crate::group::{Element, Group, Scalar};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A Schnorr signing keypair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SigningKeyPair {
    secret: Scalar,
    public: Element,
}

/// A Schnorr public (verification) key.
pub type VerifyingKey = Element;

/// A Schnorr signature `(R, s)` with `R = g^k`, `s = k + e·x`, `e = H(R ‖ P ‖ m)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// The commitment `R = g^k`.
    pub commitment: Element,
    /// The response `s = k + e·x mod q`.
    pub response: Scalar,
}

impl SigningKeyPair {
    /// Generate a fresh keypair.
    pub fn generate<R: RngCore + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let secret = group.random_scalar(rng);
        let public = group.exp_base(&secret);
        SigningKeyPair { secret, public }
    }

    /// Deterministically derive a keypair from seed material.
    pub fn from_seed(group: &Group, seed: &[u8]) -> Self {
        let mut prng = crate::prng::DetPrng::from_material(seed, b"schnorr-keypair");
        Self::generate(group, &mut prng)
    }

    /// Construct from an existing secret scalar (used when a Diffie–Hellman
    /// keypair doubles as a signing key, as Dissent's pseudonym keys do).
    pub fn from_secret(group: &Group, secret: Scalar) -> Self {
        let public = group.exp_base(&secret);
        SigningKeyPair { secret, public }
    }

    /// The public verification key.
    pub fn public(&self) -> &VerifyingKey {
        &self.public
    }

    /// The secret scalar.
    pub fn secret(&self) -> &Scalar {
        &self.secret
    }

    /// Sign a message.
    pub fn sign<R: RngCore + ?Sized>(
        &self,
        group: &Group,
        rng: &mut R,
        message: &[u8],
    ) -> Signature {
        let k = group.random_scalar(rng);
        let commitment = group.exp_base(&k);
        let challenge = challenge(group, &commitment, &self.public, message);
        let response = group.scalar_add(&k, &group.scalar_mul(&challenge, &self.secret));
        Signature {
            commitment,
            response,
        }
    }
}

fn challenge(group: &Group, commitment: &Element, public: &Element, message: &[u8]) -> Scalar {
    group.hash_to_scalar(&[
        b"dissent-schnorr-sig",
        &commitment.to_bytes(group),
        &public.to_bytes(group),
        message,
    ])
}

/// Verify a signature over `message` under `public`.
pub fn verify(group: &Group, public: &VerifyingKey, message: &[u8], sig: &Signature) -> bool {
    if !group.is_member(&sig.commitment) || !group.is_member(public) {
        return false;
    }
    let e = challenge(group, &sig.commitment, public, message);
    // g^s == R · P^e, rearranged (P has order q, so P^{-e} = P^{q-e}) into
    // the single simultaneous exponentiation g^s · P^{-e} == R.  The final
    // equality runs over the fixed-width byte encodings in constant time:
    // a short-circuiting compare would leak how far a forged commitment
    // agrees with the recomputed one.
    let neg_e = group.scalar_neg(&e);
    let lhs = group.multi_exp(&group.generator(), &sig.response, public, &neg_e);
    crate::xor::ct_eq(&lhs.to_bytes(group), &sig.commitment.to_bytes(group))
}

/// One `(public key, message, signature)` triple of a verification batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The verification key.
    pub public: &'a VerifyingKey,
    /// The signed message.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: &'a Signature,
}

/// Verify `k` signatures in one folded check (small-exponent batching,
/// Bellare–Garay–Rabin).
///
/// Each signature's equation `g^sᵢ == Rᵢ · Pᵢ^eᵢ` is raised to a random
/// 128-bit weight `zᵢ` (derived deterministically from a hash of the whole
/// batch, so proofs cannot be chosen after the weights) and the product
/// becomes one fixed-base exponentiation against one `2k`-base
/// multi-exponentiation:
///
/// ```text
///     g^{Σ zᵢsᵢ} == Π Rᵢ^{zᵢ} · Π Pᵢ^{zᵢeᵢ}
/// ```
///
/// Keeping every exponent positive matters: the `Rᵢ` exponents stay 128-bit
/// (negating them mod q would widen them to full width), so each extra
/// proof costs one full-width and one half-width window set rather than two
/// full-width ones.
///
/// A batch containing any invalid signature is rejected except with
/// probability ≤ 2⁻¹²⁸; a batch of valid signatures always passes, and a
/// batch of one accepts exactly the signatures [`verify`] accepts (the
/// subgroup-membership screening is identical).  Callers that need to know
/// *which* signature failed fall back to [`verify`] per item.
///
/// Large batches are split into per-thread sub-batches, each folded and
/// verified concurrently on the vendored pool (see [`batch_verify_chunked`]);
/// the accept/reject verdict is independent of the split, and the
/// per-proof fallback callers use for blame attribution is untouched, so
/// blame indices are identical to a serial run.
pub fn batch_verify(group: &Group, items: &[BatchItem<'_>]) -> bool {
    let threads = rayon::current_num_threads();
    // Sub-batches below ~8 proofs stop amortizing the fold, so don't split
    // finer than that no matter how many workers are idle.
    let chunk = items.len().div_ceil(threads).max(8);
    batch_verify_chunked(group, items, chunk)
}

/// [`batch_verify`] with an explicit sub-batch size: items are folded in
/// chunks of `chunk_size` and the chunks verified concurrently.
///
/// The verdict is the conjunction of independent random-linear-combination
/// checks, one per chunk, so it does not depend on `chunk_size` (exposed so
/// equivalence tests can sweep split points).
pub fn batch_verify_chunked(group: &Group, items: &[BatchItem<'_>], chunk_size: usize) -> bool {
    if items.is_empty() {
        return true;
    }
    // Membership screening (cheap: Jacobi symbols), exactly as `verify`.
    for item in items {
        if !group.is_member(&item.signature.commitment) || !group.is_member(item.public) {
            return false;
        }
    }
    let chunk_size = chunk_size.max(1);
    if chunk_size >= items.len() {
        return fold_verify(group, items);
    }
    use rayon::prelude::*;
    let mut verdicts: Vec<bool> = Vec::new();
    items
        .par_chunks(chunk_size)
        .map(|sub| fold_verify(group, sub))
        .collect_into_vec(&mut verdicts);
    verdicts.into_iter().all(|ok| ok)
}

/// One folded random-linear-combination check over `items` (which have
/// already passed membership screening and are non-empty).
fn fold_verify(group: &Group, items: &[BatchItem<'_>]) -> bool {
    // Weights bound to every byte of the batch (`batch_weights` hashes with
    // per-part length framing, so variable-length messages are unambiguous).
    let mut transcript: Vec<Vec<u8>> = Vec::with_capacity(4 * items.len() + 1);
    transcript.push(b"dissent-schnorr-batch".to_vec());
    for item in items {
        transcript.push(item.signature.commitment.to_bytes(group));
        transcript.push(item.public.to_bytes(group));
        transcript.push(item.message.to_vec());
        transcript.push(item.signature.response.to_bytes(group));
    }
    let parts: Vec<&[u8]> = transcript.iter().map(|v| v.as_slice()).collect();
    let weights = group.batch_weights(&parts, items.len());

    // Fold: the g-side exponent accumulates mod q (one comb-accelerated
    // fixed-base exponentiation); the right side is one multi-exponentiation
    // over the commitments (128-bit exponents) and public keys (full width).
    let mut g_exp = Scalar::zero();
    let mut bases: Vec<&Element> = Vec::with_capacity(2 * items.len());
    let mut exps: Vec<Scalar> = Vec::with_capacity(2 * items.len());
    for (item, z) in items.iter().zip(&weights) {
        let e = challenge(group, &item.signature.commitment, item.public, item.message);
        g_exp = group.scalar_add(&g_exp, &group.scalar_mul(z, &item.signature.response));
        bases.push(item.public);
        exps.push(group.scalar_mul(z, &e));
        bases.push(&item.signature.commitment);
        exps.push(z.clone());
    }
    let pairs: Vec<(&Element, &Scalar)> = bases.into_iter().zip(exps.iter()).collect();
    let lhs = group.exp_base(&g_exp);
    let rhs = group.multi_exp_n(&pairs);
    crate::xor::ct_eq(&lhs.to_bytes(group), &rhs.to_bytes(group))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::testing_256(), StdRng::seed_from_u64(33))
    }

    #[test]
    fn sign_verify_round_trip() {
        let (group, mut rng) = setup();
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"round 7 ciphertext");
        assert!(verify(&group, kp.public(), b"round 7 ciphertext", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (group, mut rng) = setup();
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"message A");
        assert!(!verify(&group, kp.public(), b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (group, mut rng) = setup();
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let other = SigningKeyPair::generate(&group, &mut rng);
        let sig = kp.sign(&group, &mut rng, b"m");
        assert!(!verify(&group, other.public(), b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (group, mut rng) = setup();
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let mut sig = kp.sign(&group, &mut rng, b"m");
        sig.response = group.scalar_add(&sig.response, &Scalar::one());
        assert!(!verify(&group, kp.public(), b"m", &sig));
    }

    #[test]
    fn signature_from_shared_dh_secret_key() {
        // A pseudonym keypair created from a raw scalar signs correctly.
        let (group, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let kp = SigningKeyPair::from_secret(&group, secret);
        let sig = kp.sign(&group, &mut rng, b"accusation: round 3, slot 2, bit 17");
        assert!(verify(
            &group,
            kp.public(),
            b"accusation: round 3, slot 2, bit 17",
            &sig
        ));
    }

    #[test]
    fn non_member_commitment_rejected() {
        let (group, mut rng) = setup();
        let kp = SigningKeyPair::generate(&group, &mut rng);
        let mut sig = kp.sign(&group, &mut rng, b"m");
        sig.commitment = Element::from_biguint_unchecked(crate::bigint::BigUint::from_u64(0));
        assert!(!verify(&group, kp.public(), b"m", &sig));
    }

    #[test]
    fn batch_verify_accepts_valid_and_rejects_one_bad() {
        let (group, mut rng) = setup();
        let keys: Vec<SigningKeyPair> = (0..6)
            .map(|_| SigningKeyPair::generate(&group, &mut rng))
            .collect();
        let messages: Vec<Vec<u8>> = (0..6).map(|i| format!("round {i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = keys
            .iter()
            .zip(&messages)
            .map(|(kp, m)| kp.sign(&group, &mut rng, m))
            .collect();
        let items: Vec<BatchItem> = keys
            .iter()
            .zip(&messages)
            .zip(&sigs)
            .map(|((kp, m), s)| BatchItem {
                public: kp.public(),
                message: m,
                signature: s,
            })
            .collect();
        assert!(batch_verify(&group, &items));
        drop(items);
        // Corrupt one response: the whole batch must be rejected.
        sigs[3].response = group.scalar_add(&sigs[3].response, &Scalar::one());
        let items: Vec<BatchItem> = keys
            .iter()
            .zip(&messages)
            .zip(&sigs)
            .map(|((kp, m), s)| BatchItem {
                public: kp.public(),
                message: m,
                signature: s,
            })
            .collect();
        assert!(!batch_verify(&group, &items));
        // Empty batch is vacuously valid.
        assert!(batch_verify(&group, &[]));
    }

    #[test]
    fn seeded_keys_reproducible() {
        let (group, _) = setup();
        let a = SigningKeyPair::from_seed(&group, b"server-3");
        let b = SigningKeyPair::from_seed(&group, b"server-3");
        assert_eq!(a.public(), b.public());
    }
}
