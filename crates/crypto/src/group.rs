//! Schnorr groups: prime-order subgroups of ℤ*_p for safe primes p = 2q + 1.
//!
//! All of Dissent's public-key operations — ElGamal encryption for the
//! verifiable shuffle, Schnorr signatures on protocol messages and pseudonym
//! keys, Chaum–Pedersen proofs of correct decryption, and Diffie–Hellman
//! shared secrets between client/server pairs — take place in such a group.
//!
//! The paper's prototype used CryptoPP's integer groups; we provide the same
//! structure over our own [`BigUint`].  Three standard parameter sets are
//! offered:
//!
//! * [`Group::rfc3526_2048`] — the 2048-bit MODP group (production fidelity),
//! * [`Group::modp_1024`] / [`Group::modp_512`] — mid-size groups,
//! * [`Group::testing_256`] — a 256-bit safe-prime group for fast unit tests
//!   and simulation runs (NOT cryptographically strong; clearly labelled).

use crate::bigint::BigUint;
use crate::montgomery::{pippenger_window, CombTable, MontgomeryCtx, WindowTable};
use crate::prng::DetPrng;
use crate::sha256::sha256_tagged;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Group parameters: a safe prime `p = 2q + 1` and a generator `g` of the
/// order-`q` subgroup of quadratic residues.
///
/// Alongside the raw parameters the struct caches the derived acceleration
/// state every exponentiation needs: the Montgomery context for `p` and the
/// fixed-base window table for `g`.  Both are built lazily on first use and
/// shared through the [`Group`] handle's `Arc`, so the cost is paid once per
/// parameter set rather than once per operation.
#[derive(Serialize, Deserialize)]
pub struct GroupParams {
    /// The safe prime modulus.
    pub p: BigUint,
    /// The prime order of the subgroup, `q = (p - 1) / 2`.
    pub q: BigUint,
    /// Generator of the order-`q` subgroup.
    pub g: BigUint,
    /// Human-readable name of the parameter set.
    pub name: String,
    /// Lazily-built Montgomery context for `p` (derived state, not wire
    /// data).
    #[serde(skip)]
    mont: OnceLock<MontgomeryCtx>,
    /// Lazily-built fixed-base window table for `g` (for multi-exponentiation).
    #[serde(skip)]
    g_table: OnceLock<WindowTable>,
    /// Lazily-built Lim–Lee comb table for `g` (for plain fixed-base
    /// exponentiation, the hottest operation in the protocol).
    #[serde(skip)]
    g_comb: OnceLock<CombTable>,
    /// Precomputed tables for other long-lived bases (server public keys,
    /// combined remaining keys), registered via
    /// [`Group::register_fixed_base`] and consulted by [`Group::exp`] and
    /// the multi-exponentiation entry points.
    #[serde(skip)]
    fixed_bases: RwLock<HashMap<BigUint, Arc<FixedBaseTables>>>,
}

/// The cached acceleration state for one registered fixed base: a window
/// table (for multi-exponentiation) and a Lim–Lee comb (for plain
/// exponentiation).
struct FixedBaseTables {
    window: WindowTable,
    comb: CombTable,
}

/// Upper bound on registered fixed bases per parameter set (a 2048-bit
/// entry costs ~135 KiB of tables: a window table plus the dual Lim–Lee
/// comb).  Generously covers one session's server keys and per-pass
/// remaining keys; see [`Group::register_fixed_base`].
const FIXED_BASE_CACHE_MAX: usize = 64;

impl GroupParams {
    fn new(p: BigUint, q: BigUint, g: BigUint, name: &str) -> GroupParams {
        GroupParams {
            p,
            q,
            g,
            name: name.to_string(),
            mont: OnceLock::new(),
            g_table: OnceLock::new(),
            g_comb: OnceLock::new(),
            fixed_bases: RwLock::new(HashMap::new()),
        }
    }
}

impl Clone for GroupParams {
    fn clone(&self) -> Self {
        GroupParams {
            p: self.p.clone(),
            q: self.q.clone(),
            g: self.g.clone(),
            name: self.name.clone(),
            mont: self.mont.clone(),
            g_table: self.g_table.clone(),
            g_comb: self.g_comb.clone(),
            // The registered-base cache is shared derived state; a cloned
            // params block starts with the same registrations.
            fixed_bases: RwLock::new(
                self.fixed_bases
                    .read()
                    .map(|m| m.clone())
                    .unwrap_or_default(),
            ),
        }
    }
}

/// A shared handle to group parameters.
#[derive(Clone, Serialize, Deserialize)]
pub struct Group {
    params: Arc<GroupParams>,
}

impl fmt::Debug for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Group({}, {} bits)",
            self.params.name,
            self.params.p.bit_len()
        )
    }
}

impl PartialEq for Group {
    fn eq(&self, other: &Self) -> bool {
        self.params.p == other.params.p && self.params.g == other.params.g
    }
}
impl Eq for Group {}

/// An element of the order-`q` subgroup.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Element {
    value: BigUint,
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.value.to_hex();
        let short = if hex.len() > 16 { &hex[..16] } else { &hex };
        write!(f, "Element(0x{short}…)")
    }
}

/// A scalar modulo the group order `q` (an exponent).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scalar {
    value: BigUint,
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.value.to_hex();
        let short = if hex.len() > 16 { &hex[..16] } else { &hex };
        write!(f, "Scalar(0x{short}…)")
    }
}

// RFC 3526 group 14 (2048-bit MODP). Safe prime; 4 = 2² generates the
// quadratic-residue subgroup of order q = (p-1)/2.
const RFC3526_2048_P: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// Locally generated safe primes for faster parameter sets (see DESIGN.md):
// suitable for tests and simulation, not for real-world security at the
// smaller sizes.
const MODP_1024_P: &str = "fa40b8c299e6924073aa7255b69757c33a10e6040231cc514930f532bb98db5c\
3270fc0559d04e40cd55e72ee35ce78a708918f449c81064ba1eea3feb9d05e1\
25ddd7ce43e1b309eb29d63108ceeb07ace805f2b163d8096a6265b7e77d9df9\
30feb4a0f5abd1d182c3e49f6177ea4bb2208af442739f8f32aab44c46ed0d5f";
const MODP_512_P: &str = "b0848d23a3f32e0978bd94cff6607305b9cc8a795f7f380001f0e8893e80e915\
9114af7eb62656cc1fdb943e7aaac5a8e1cfae7d0f7e7edf0ae0b652d3a1d637";
const TESTING_256_P: &str = "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f";

impl Group {
    fn from_safe_prime_hex(p_hex: &str, name: &str) -> Group {
        let p = BigUint::from_hex(p_hex).expect("valid prime constant");
        let q = p.sub(&BigUint::one()).shr(1);
        let g = BigUint::from_u64(4);
        Group {
            params: Arc::new(GroupParams::new(p, q, g, name)),
        }
    }

    /// The 2048-bit MODP group from RFC 3526 (group 14).
    pub fn rfc3526_2048() -> Group {
        Self::from_safe_prime_hex(RFC3526_2048_P, "rfc3526-2048")
    }

    /// A 1024-bit safe-prime group (legacy-strength; faster than 2048-bit).
    pub fn modp_1024() -> Group {
        Self::from_safe_prime_hex(MODP_1024_P, "modp-1024")
    }

    /// A 512-bit safe-prime group (simulation-grade).
    pub fn modp_512() -> Group {
        Self::from_safe_prime_hex(MODP_512_P, "modp-512")
    }

    /// A 256-bit safe-prime group for fast tests and large simulations.
    ///
    /// NOT cryptographically strong; never use outside testing.
    pub fn testing_256() -> Group {
        Self::from_safe_prime_hex(TESTING_256_P, "testing-256")
    }

    /// Construct from explicit parameters, validating the safe-prime
    /// structure with Miller–Rabin.
    pub fn from_params<R: RngCore + ?Sized>(
        rng: &mut R,
        p: BigUint,
        g: BigUint,
        name: &str,
    ) -> Result<Group, &'static str> {
        if !p.is_probable_prime(rng, 20) {
            return Err("p is not prime");
        }
        let q = p.sub(&BigUint::one()).shr(1);
        if !q.is_probable_prime(rng, 20) {
            return Err("p is not a safe prime");
        }
        if g.modpow(&q, &p) != BigUint::one() || g.is_one() || g.is_zero() {
            return Err("g does not generate the order-q subgroup");
        }
        Ok(Group {
            params: Arc::new(GroupParams::new(p, q, g, name)),
        })
    }

    /// The cached Montgomery context for `p`.
    fn mont(&self) -> &MontgomeryCtx {
        self.params
            .mont
            .get_or_init(|| MontgomeryCtx::new(&self.params.p).expect("odd prime modulus"))
    }

    /// The cached fixed-base window table for the generator.
    fn generator_table(&self) -> &WindowTable {
        self.params
            .g_table
            .get_or_init(|| self.mont().precompute(&self.params.g))
    }

    /// The cached Lim–Lee comb table for the generator.
    fn generator_comb(&self) -> &CombTable {
        self.params.g_comb.get_or_init(|| {
            self.mont()
                .precompute_comb(&self.params.g, self.params.p.bit_len())
        })
    }

    /// Register a long-lived base (a server public key, a combined
    /// remaining key) for fixed-base acceleration: subsequent [`Group::exp`]
    /// calls on it use a Lim–Lee comb, and the multi-exponentiation entry
    /// points reuse its window table instead of rebuilding one per call.
    ///
    /// Registration is idempotent and the tables are shared through the
    /// group handle, so the precomputation cost is paid once per base per
    /// parameter set.  The generator is always implicitly registered.
    ///
    /// The cache is bounded: registration paths run inside verification
    /// (every pass registers its server and remaining keys), so an auditor
    /// processing transcripts from many rosters would otherwise grow the
    /// map without limit.  Past [`FIXED_BASE_CACHE_MAX`] entries new
    /// registrations become no-ops — correctness is unaffected, the base
    /// just runs at general-exponentiation speed.
    pub fn register_fixed_base(&self, base: &Element) {
        if base.value == self.params.g {
            return;
        }
        let mut map = self
            .params
            .fixed_bases
            .write()
            .expect("fixed-base cache poisoned");
        if map.contains_key(&base.value) || map.len() >= FIXED_BASE_CACHE_MAX {
            return;
        }
        let ctx = self.mont();
        map.insert(
            base.value.clone(),
            Arc::new(FixedBaseTables {
                window: ctx.precompute(&base.value),
                comb: ctx.precompute_comb(&base.value, self.params.p.bit_len()),
            }),
        );
    }

    /// Look up the cached tables for a registered fixed base.
    fn fixed_base(&self, value: &BigUint) -> Option<Arc<FixedBaseTables>> {
        self.params
            .fixed_bases
            .read()
            .expect("fixed-base cache poisoned")
            .get(value)
            .cloned()
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.params.p
    }

    /// The subgroup order `q`.
    pub fn order(&self) -> &BigUint {
        &self.params.q
    }

    /// The generator as an [`Element`].
    pub fn generator(&self) -> Element {
        Element {
            value: self.params.g.clone(),
        }
    }

    /// The parameter-set name.
    pub fn name(&self) -> &str {
        &self.params.name
    }

    /// Number of bytes needed to encode an element (the modulus width).
    pub fn element_len(&self) -> usize {
        self.params.p.bit_len().div_ceil(8)
    }

    /// The identity element (1).
    pub fn identity(&self) -> Element {
        Element {
            value: BigUint::one(),
        }
    }

    /// A uniformly random scalar in `[0, q)`.
    pub fn random_scalar<R: RngCore + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar {
            value: BigUint::random_below(rng, &self.params.q),
        }
    }

    /// A scalar from a `u64`.
    pub fn scalar_from_u64(&self, v: u64) -> Scalar {
        Scalar {
            value: BigUint::from_u64(v).rem(&self.params.q),
        }
    }

    /// A scalar derived from arbitrary bytes (reduced mod q).
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> Scalar {
        Scalar {
            value: BigUint::from_bytes_be(bytes).rem(&self.params.q),
        }
    }

    /// Hash arbitrary transcript parts to a scalar challenge (Fiat–Shamir).
    pub fn hash_to_scalar(&self, parts: &[&[u8]]) -> Scalar {
        // Expand the 32-byte hash into enough bytes to cover q with
        // negligible bias, then reduce.
        let digest = sha256_tagged(parts);
        let mut prng = DetPrng::new(&digest, b"hash-to-scalar");
        let need = self.params.q.bit_len().div_ceil(8) + 16;
        let wide = prng.bytes(need);
        self.scalar_from_bytes(&wide)
    }

    /// Fixed-base exponentiation of the generator: `g^e`.
    ///
    /// Uses the cached Lim–Lee comb table for `g`: the squaring chain
    /// shrinks by the comb's tooth count (~8×) compared with a general
    /// [`Group::exp`], which matters because `g^e` is the hottest operation
    /// in the protocol — every key generation, ElGamal encryption,
    /// re-randomization and Schnorr signature performs one.
    pub fn exp_base(&self, e: &Scalar) -> Element {
        Element {
            value: self.mont().pow_comb(self.generator_comb(), &e.value),
        }
    }

    /// Exponentiation: `a^e mod p`, via the Montgomery engine.
    ///
    /// Bases registered with [`Group::register_fixed_base`] (and the
    /// generator itself) are served from their cached Lim–Lee comb at
    /// fixed-base speed.
    pub fn exp(&self, a: &Element, e: &Scalar) -> Element {
        if a.value == self.params.g {
            return self.exp_base(e);
        }
        if let Some(tables) = self.fixed_base(&a.value) {
            return Element {
                value: self.mont().pow_comb(&tables.comb, &e.value),
            };
        }
        Element {
            value: self.mont().pow(&a.value, &e.value),
        }
    }

    /// Simultaneous double exponentiation: `a^x · b^y mod p`.
    ///
    /// One Shamir/Straus pass shares the squaring chain between the two
    /// exponents, making this substantially cheaper than two [`Group::exp`]
    /// calls — it is the verification primitive for Schnorr signatures and
    /// Chaum–Pedersen proofs.  When either base is the generator its cached
    /// window table is reused.
    pub fn multi_exp(&self, a: &Element, x: &Scalar, b: &Element, y: &Scalar) -> Element {
        let ctx = self.mont();
        let a_cached;
        let a_built;
        let a_table = if a.value == self.params.g {
            self.generator_table()
        } else if let Some(t) = self.fixed_base(&a.value) {
            a_cached = t;
            &a_cached.window
        } else {
            a_built = ctx.precompute(&a.value);
            &a_built
        };
        let b_cached;
        let b_built;
        let b_table = if b.value == self.params.g {
            self.generator_table()
        } else if let Some(t) = self.fixed_base(&b.value) {
            b_cached = t;
            &b_cached.window
        } else {
            b_built = ctx.precompute(&b.value);
            &b_built
        };
        Element {
            value: ctx.pow2_with_tables(a_table, &x.value, b_table, &y.value),
        }
    }

    /// Simultaneous n-way exponentiation: `Π bᵢ^xᵢ mod p`.
    ///
    /// This is the folded check at the heart of batch proof verification
    /// ([`crate::schnorr::batch_verify`] and
    /// [`crate::chaum_pedersen::batch_verify`]).  Three layers of work
    /// sharing apply:
    ///
    /// * repeated bases are collapsed by summing their exponents mod `q`
    ///   (sound because every [`Element`] is an order-`q` subgroup member),
    ///   so the shared generator — and, in a shuffle pass, the shared
    ///   server key — costs one table regardless of batch size;
    /// * the generator and any [`Group::register_fixed_base`] base reuse
    ///   their cached window tables;
    /// * the algorithm switches from interleaved Straus to bucketed
    ///   Pippenger past the [`pippenger_window`] crossover, where per-base
    ///   tables stop paying for themselves.
    pub fn multi_exp_n(&self, pairs: &[(&Element, &Scalar)]) -> Element {
        if pairs.is_empty() {
            return self.identity();
        }
        // Collapse repeated bases, preserving first-seen order.
        let mut index: HashMap<&BigUint, usize> = HashMap::with_capacity(pairs.len());
        let mut bases: Vec<&BigUint> = Vec::with_capacity(pairs.len());
        let mut exps: Vec<BigUint> = Vec::with_capacity(pairs.len());
        for (el, sc) in pairs {
            match index.entry(&el.value) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let i = *o.get();
                    exps[i] = exps[i].mod_add(&sc.value, &self.params.q);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(bases.len());
                    bases.push(&el.value);
                    exps.push(sc.value.clone());
                }
            }
        }
        let ctx = self.mont();
        let exp_refs: Vec<&BigUint> = exps.iter().collect();
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        if let Some(c) = pippenger_window(bases.len(), max_bits) {
            return Element {
                value: ctx.pow_n_pippenger(&bases, &exp_refs, c),
            };
        }
        // Straus path: reuse cached tables, build the rest.
        enum TableRef {
            Gen,
            Cached(Arc<FixedBaseTables>),
            Built(usize),
        }
        let mut built: Vec<WindowTable> = Vec::new();
        let mut plan: Vec<TableRef> = Vec::with_capacity(bases.len());
        for base in &bases {
            if **base == self.params.g {
                plan.push(TableRef::Gen);
            } else if let Some(t) = self.fixed_base(base) {
                plan.push(TableRef::Cached(t));
            } else {
                plan.push(TableRef::Built(built.len()));
                built.push(ctx.precompute(base));
            }
        }
        let tables: Vec<&WindowTable> = plan
            .iter()
            .map(|t| match t {
                TableRef::Gen => self.generator_table(),
                TableRef::Cached(arc) => &arc.window,
                TableRef::Built(i) => &built[*i],
            })
            .collect();
        Element {
            value: ctx.pow_n_with_tables(&tables, &exp_refs),
        }
    }

    /// Batched fixed-base multiply-exponentiate: `factorᵢ · base^{eᵢ}` for
    /// every `(factorᵢ, eᵢ)` pair, in order.
    ///
    /// The per-entry sibling of [`Group::multi_exp_n`]: where that folds the
    /// whole batch into one product, this returns each product separately —
    /// the shape of ElGamal re-randomization, which the shuffle prover runs
    /// `T·N` times per pass over the same two bases (the generator and the
    /// remaining key).  Work sharing:
    ///
    /// * one Lim–Lee comb serves every exponent (the cached generator /
    ///   [`Group::register_fixed_base`] table, or a comb built once per call
    ///   when the batch is big enough to repay it);
    /// * the whole batch stays in the Montgomery domain — each entry costs
    ///   the comb evaluation plus two `mont_mul`s, replacing the
    ///   division-based modular multiply and the per-call domain round-trips
    ///   of `mul(factor, exp(base, e))`.
    ///
    /// Equivalent to `pairs.map(|(f, e)| mul(f, exp(base, e)))` — proptested
    /// against exactly that on all four parameter sets.
    pub fn exp_mul_batch(&self, base: &Element, pairs: &[(&Element, &Scalar)]) -> Vec<Element> {
        /// Minimum batch size for which building a throwaway comb for an
        /// unregistered base beats per-entry general exponentiation (a
        /// dual-block comb build costs roughly two exponentiations, and
        /// each comb evaluation is ~4× cheaper than a general `exp`).
        const BUILD_COMB_MIN: usize = 4;
        if pairs.is_empty() {
            return Vec::new();
        }
        let ctx = self.mont();
        let cached;
        let built;
        let comb: &CombTable = if base.value == self.params.g {
            self.generator_comb()
        } else if let Some(t) = self.fixed_base(&base.value) {
            cached = t;
            &cached.comb
        } else if pairs.len() >= BUILD_COMB_MIN {
            built = ctx.precompute_comb(&base.value, self.params.p.bit_len());
            &built
        } else {
            return pairs
                .iter()
                .map(|(f, e)| self.mul(f, &self.exp(base, e)))
                .collect();
        };
        pairs
            .iter()
            .map(|(f, e)| {
                let power = ctx.pow_comb_mont(comb, &e.value);
                let factor = ctx.to_mont(&f.value);
                Element {
                    value: ctx.from_mont(&ctx.mont_mul(&factor, &power)),
                }
            })
            .collect()
    }

    /// Shared-base batch exponentiation: `base^eᵢ` for every exponent, with
    /// one comb-table selection (and at most one throwaway comb build)
    /// amortized over the whole batch — [`Group::exp_mul_batch`] without
    /// the per-entry factor.  This is the proving-side analogue of the
    /// batched verification paths: a shuffle pass computes all its DLEQ
    /// commitments `g^{wₖ}` through it in one comb-domain sweep.
    pub fn exp_batch(&self, base: &Element, exps: &[&Scalar]) -> Vec<Element> {
        /// Same build-vs-fallback threshold as [`Group::exp_mul_batch`].
        const BUILD_COMB_MIN: usize = 4;
        if exps.is_empty() {
            return Vec::new();
        }
        let ctx = self.mont();
        let cached;
        let built;
        let comb: &CombTable = if base.value == self.params.g {
            self.generator_comb()
        } else if let Some(t) = self.fixed_base(&base.value) {
            cached = t;
            &cached.comb
        } else if exps.len() >= BUILD_COMB_MIN {
            built = ctx.precompute_comb(&base.value, self.params.p.bit_len());
            &built
        } else {
            return exps.iter().map(|e| self.exp(base, e)).collect();
        };
        exps.iter()
            .map(|e| Element {
                value: ctx.pow_comb(comb, &e.value),
            })
            .collect()
    }

    /// Group multiplication: `a · b mod p`.
    pub fn mul(&self, a: &Element, b: &Element) -> Element {
        Element {
            value: a.value.mod_mul(&b.value, &self.params.p),
        }
    }

    /// Group division: `a · b⁻¹ mod p`.
    pub fn div(&self, a: &Element, b: &Element) -> Element {
        let inv = b
            .value
            .modinv_prime(&self.params.p)
            .expect("division by the zero element");
        Element {
            value: a.value.mod_mul(&inv, &self.params.p),
        }
    }

    /// Inverse element: `a⁻¹ mod p`.
    pub fn inv(&self, a: &Element) -> Element {
        self.div(&self.identity(), a)
    }

    /// Scalar addition mod q.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar {
            value: a.value.mod_add(&b.value, &self.params.q),
        }
    }

    /// Scalar subtraction mod q.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar {
            value: a.value.mod_sub(&b.value, &self.params.q),
        }
    }

    /// Scalar multiplication mod q.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar {
            value: a.value.mod_mul(&b.value, &self.params.q),
        }
    }

    /// Scalar inverse mod q.
    pub fn scalar_inv(&self, a: &Scalar) -> Option<Scalar> {
        a.value
            .modinv_prime(&self.params.q)
            .map(|value| Scalar { value })
    }

    /// Scalar negation mod q.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        Scalar {
            value: BigUint::zero().mod_sub(&a.value, &self.params.q),
        }
    }

    /// Check whether an element is a member of the order-`q` subgroup.
    ///
    /// For a safe prime `p = 2q + 1` the order-`q` subgroup is exactly the
    /// quadratic residues, so membership is the Legendre symbol — computed
    /// as a Jacobi symbol in O(log²) word operations rather than the full
    /// exponentiation `a^q mod p`.  This makes the per-element membership
    /// screening in (batch) proof verification essentially free next to the
    /// verification equation itself.
    pub fn is_member(&self, a: &Element) -> bool {
        // The generator's membership is validated at construction; verifiers
        // screen it once per statement, so skip recomputing its symbol.
        if a.value == self.params.g {
            return true;
        }
        !a.value.is_zero() && a.value < self.params.p && a.value.jacobi(&self.params.p) == 1
    }

    /// Derive the deterministic random weights for a batched proof
    /// verification from the batch transcript.
    ///
    /// The first weight is fixed to 1 (a standard optimization: the
    /// combination stays uniformly random relative to every other proof),
    /// the rest are 128-bit scalars expanded from a hash of `parts` —
    /// which must bind every statement, proof, and context byte in the
    /// batch, so an adversary cannot choose proofs after the weights.
    pub fn batch_weights(&self, parts: &[&[u8]], count: usize) -> Vec<Scalar> {
        let digest = sha256_tagged(parts);
        let mut prng = DetPrng::new(&digest, b"batch-verify-weights");
        (0..count)
            .map(|i| {
                if i == 0 {
                    Scalar::one()
                } else {
                    self.scalar_from_bytes(&prng.bytes(16))
                }
            })
            .collect()
    }

    /// Embed a short message into a group element (quadratic-residue
    /// encoding), for use in the general message shuffle.
    ///
    /// The message is framed as `0x01 ‖ msg ‖ 16-bit counter` and the counter
    /// incremented until the framed value is a quadratic residue mod p.  The
    /// maximum message length is `element_len() - 4` bytes.
    pub fn embed_message(&self, msg: &[u8]) -> Result<Element, &'static str> {
        let max = self.element_len().saturating_sub(4);
        if msg.len() > max {
            return Err("message too long to embed in a group element");
        }
        for counter in 0u16..=u16::MAX {
            let mut framed = Vec::with_capacity(msg.len() + 3);
            framed.push(0x01);
            framed.extend_from_slice(msg);
            framed.extend_from_slice(&counter.to_be_bytes());
            let candidate = BigUint::from_bytes_be(&framed);
            if candidate.is_zero() || candidate >= self.params.p {
                continue;
            }
            let el = Element { value: candidate };
            if self.is_member(&el) {
                return Ok(el);
            }
        }
        Err("could not embed message (counter exhausted)")
    }

    /// Recover a message previously embedded with [`Group::embed_message`].
    pub fn extract_message(&self, el: &Element) -> Result<Vec<u8>, &'static str> {
        let bytes = el.value.to_bytes_be();
        if bytes.len() < 3 || bytes[0] != 0x01 {
            return Err("element does not carry an embedded message");
        }
        Ok(bytes[1..bytes.len() - 2].to_vec())
    }

    /// Construct an element directly from its byte encoding, rejecting
    /// non-members.
    pub fn element_from_bytes(&self, bytes: &[u8]) -> Result<Element, &'static str> {
        let value = BigUint::from_bytes_be(bytes);
        let el = Element { value };
        if self.is_member(&el) {
            Ok(el)
        } else {
            Err("bytes do not encode a subgroup member")
        }
    }
}

impl Element {
    /// Canonical byte encoding (big-endian, padded to the modulus width).
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        self.value.to_bytes_be_padded(group.element_len())
    }

    /// The raw integer value (for serialization and debugging).
    pub fn as_biguint(&self) -> &BigUint {
        &self.value
    }

    /// Construct from a raw integer without membership checking (internal
    /// use by protocols that have already validated membership).
    pub fn from_biguint_unchecked(value: BigUint) -> Element {
        Element { value }
    }
}

impl Scalar {
    /// Canonical byte encoding (big-endian, padded to the order width).
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        self.value
            .to_bytes_be_padded(group.order().bit_len().div_ceil(8))
    }

    /// The raw integer value.
    pub fn as_biguint(&self) -> &BigUint {
        &self.value
    }

    /// Construct from a raw integer, reducing mod q.
    pub fn from_biguint(value: BigUint, group: &Group) -> Scalar {
        Scalar {
            value: value.rem(group.order()),
        }
    }

    /// The zero scalar.
    pub fn zero() -> Scalar {
        Scalar {
            value: BigUint::zero(),
        }
    }

    /// The one scalar.
    pub fn one() -> Scalar {
        Scalar {
            value: BigUint::one(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD155EA7)
    }

    #[test]
    fn testing_group_is_well_formed() {
        let mut r = rng();
        let g = Group::testing_256();
        assert!(g.modulus().is_probable_prime(&mut r, 16));
        assert!(g.order().is_probable_prime(&mut r, 16));
        assert!(g.is_member(&g.generator()));
        assert_eq!(g.element_len(), 32);
    }

    #[test]
    fn larger_groups_parse() {
        for g in [Group::modp_512(), Group::modp_1024(), Group::rfc3526_2048()] {
            assert!(g.is_member(&g.generator()));
            assert_eq!(g.modulus().sub(&BigUint::one()).shr(1), g.order().clone());
        }
        assert_eq!(Group::rfc3526_2048().modulus().bit_len(), 2048);
    }

    #[test]
    fn exponent_laws_hold() {
        let mut r = rng();
        let g = Group::testing_256();
        let a = g.random_scalar(&mut r);
        let b = g.random_scalar(&mut r);
        // g^(a+b) == g^a * g^b
        let lhs = g.exp_base(&g.scalar_add(&a, &b));
        let rhs = g.mul(&g.exp_base(&a), &g.exp_base(&b));
        assert_eq!(lhs, rhs);
        // (g^a)^b == (g^b)^a
        assert_eq!(g.exp(&g.exp_base(&a), &b), g.exp(&g.exp_base(&b), &a));
        // g^a / g^a == 1
        assert_eq!(g.div(&g.exp_base(&a), &g.exp_base(&a)), g.identity());
    }

    #[test]
    fn scalar_field_laws() {
        let mut r = rng();
        let g = Group::testing_256();
        let a = g.random_scalar(&mut r);
        let inv = g.scalar_inv(&a).unwrap();
        assert_eq!(g.scalar_mul(&a, &inv), Scalar::one());
        assert_eq!(g.scalar_add(&a, &g.scalar_neg(&a)), Scalar::zero());
        assert_eq!(g.scalar_sub(&a, &a), Scalar::zero());
        assert!(g.scalar_inv(&Scalar::zero()).is_none());
    }

    #[test]
    fn membership_check_rejects_non_residues() {
        let g = Group::testing_256();
        // p-1 is not in the order-q subgroup (it is the element of order 2).
        let non_member = Element::from_biguint_unchecked(g.modulus().sub(&BigUint::one()));
        assert!(!g.is_member(&non_member));
        assert!(!g.is_member(&Element::from_biguint_unchecked(BigUint::zero())));
        assert!(g.is_member(&g.identity()));
    }

    #[test]
    fn hash_to_scalar_deterministic_and_separated() {
        let g = Group::testing_256();
        let a = g.hash_to_scalar(&[b"transcript", b"part"]);
        let b = g.hash_to_scalar(&[b"transcript", b"part"]);
        let c = g.hash_to_scalar(&[b"transcriptpart"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn message_embedding_round_trips() {
        let g = Group::modp_512();
        for msg in [&b""[..], b"hi", b"a 28-byte anonymous message!"] {
            let el = g.embed_message(msg).unwrap();
            assert!(g.is_member(&el));
            assert_eq!(g.extract_message(&el).unwrap(), msg);
        }
        let too_long = vec![0u8; g.element_len()];
        assert!(g.embed_message(&too_long).is_err());
    }

    #[test]
    fn element_bytes_round_trip() {
        let mut r = rng();
        let g = Group::testing_256();
        let e = g.exp_base(&g.random_scalar(&mut r));
        let bytes = e.to_bytes(&g);
        assert_eq!(bytes.len(), g.element_len());
        assert_eq!(g.element_from_bytes(&bytes).unwrap(), e);
        assert!(g.element_from_bytes(&[0u8; 32]).is_err());
    }

    #[test]
    fn jacobi_membership_matches_exponentiation_check() {
        // The Jacobi-symbol membership test must agree with the definitional
        // a^q == 1 check on members, non-members, and edge values, in every
        // parameter set.
        let mut r = rng();
        for g in [
            Group::testing_256(),
            Group::modp_512(),
            Group::modp_1024(),
            Group::rfc3526_2048(),
        ] {
            let q = g.order().clone();
            let p = g.modulus().clone();
            let check = |el: Element| {
                let definitional = !el.as_biguint().is_zero()
                    && el.as_biguint() < &p
                    && el.as_biguint().modpow(&q, &p).is_one();
                assert_eq!(g.is_member(&el), definitional);
            };
            check(g.exp_base(&g.random_scalar(&mut r)));
            check(g.identity());
            // g^x · (p-1) has order 2q: a non-member that is < p.
            let m = g.exp_base(&g.random_scalar(&mut r));
            let minus_one = Element::from_biguint_unchecked(p.sub(&BigUint::one()));
            check(g.mul(&m, &minus_one));
            check(minus_one);
            check(Element::from_biguint_unchecked(BigUint::zero()));
            check(Element::from_biguint_unchecked(BigUint::random_below(
                &mut r, &p,
            )));
        }
    }

    #[test]
    fn multi_exp_n_matches_fold_of_exps() {
        let mut r = rng();
        let g = Group::testing_256();
        for n in [0usize, 1, 2, 5, 9] {
            let bases: Vec<Element> = (0..n)
                .map(|_| g.exp_base(&g.random_scalar(&mut r)))
                .collect();
            let exps: Vec<Scalar> = (0..n).map(|_| g.random_scalar(&mut r)).collect();
            let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(exps.iter()).collect();
            let expect = bases
                .iter()
                .zip(exps.iter())
                .fold(g.identity(), |acc, (b, e)| g.mul(&acc, &g.exp(b, e)));
            assert_eq!(g.multi_exp_n(&pairs), expect);
        }
    }

    #[test]
    fn multi_exp_n_collapses_repeated_bases() {
        let mut r = rng();
        let g = Group::testing_256();
        let b = g.exp_base(&g.random_scalar(&mut r));
        let gen = g.generator();
        let (x, y, z) = (
            g.random_scalar(&mut r),
            g.random_scalar(&mut r),
            g.random_scalar(&mut r),
        );
        // b^x · g^y · b^z == b^(x+z) · g^y.
        let pairs: Vec<(&Element, &Scalar)> = vec![(&b, &x), (&gen, &y), (&b, &z)];
        let expect = g.mul(&g.exp(&b, &g.scalar_add(&x, &z)), &g.exp_base(&y));
        assert_eq!(g.multi_exp_n(&pairs), expect);
    }

    #[test]
    fn registered_fixed_base_changes_nothing_but_speed() {
        let mut r = rng();
        let g = Group::testing_256();
        let b = g.exp_base(&g.random_scalar(&mut r));
        let x = g.random_scalar(&mut r);
        let before = g.exp(&b, &x);
        g.register_fixed_base(&b);
        g.register_fixed_base(&b); // idempotent
        g.register_fixed_base(&g.generator()); // no-op
        assert_eq!(g.exp(&b, &x), before);
        let y = g.random_scalar(&mut r);
        let gen = g.generator();
        let pairs: Vec<(&Element, &Scalar)> = vec![(&b, &x), (&gen, &y)];
        assert_eq!(g.multi_exp_n(&pairs), g.mul(&before, &g.exp_base(&y)));
        assert_eq!(
            g.multi_exp(&b, &x, &gen, &y),
            g.mul(&before, &g.exp_base(&y))
        );
        // Clones share the registration.
        let g2 = g.clone();
        assert_eq!(g2.exp(&b, &x), before);
    }

    #[test]
    fn batch_weights_are_deterministic_and_bound_to_transcript() {
        let g = Group::testing_256();
        let w1 = g.batch_weights(&[b"tag", b"proof-bytes"], 4);
        let w2 = g.batch_weights(&[b"tag", b"proof-bytes"], 4);
        let w3 = g.batch_weights(&[b"tag", b"other-bytes"], 4);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
        assert_eq!(w1[0], Scalar::one());
        assert_ne!(w1[1], w1[2]);
    }

    #[test]
    fn from_params_validates() {
        let mut r = rng();
        let good = Group::testing_256();
        assert!(
            Group::from_params(&mut r, good.modulus().clone(), BigUint::from_u64(4), "ok").is_ok()
        );
        // Non-prime modulus rejected.
        assert!(
            Group::from_params(&mut r, BigUint::from_u64(100), BigUint::from_u64(4), "bad")
                .is_err()
        );
    }
}
