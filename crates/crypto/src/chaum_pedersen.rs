//! Chaum–Pedersen proofs of discrete-logarithm equality (DLEQ).
//!
//! The paper uses "Chaum-Pedersen proofs [15] for verifiable decryptions"
//! (§3.10): when a server strips its ElGamal layer from the shuffled
//! ciphertexts it must prove, without revealing its secret key `x`, that the
//! decryption share it removed really is `c1^x` for the same `x` such that
//! its public key is `g^x`.  That statement is exactly DLEQ:
//!
//! ```text
//!     log_g(public_key) == log_{c1}(share)
//! ```
//!
//! The proof is made non-interactive with the Fiat–Shamir transform over the
//! group's hash-to-scalar function.

use crate::group::{Element, Group, Scalar};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A non-interactive DLEQ proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleqProof {
    /// Commitment `t1 = g^w`.
    pub t1: Element,
    /// Commitment `t2 = h^w` (where `h` is the second base, e.g. `c1`).
    pub t2: Element,
    /// Response `s = w + e·x mod q`.
    pub response: Scalar,
}

#[allow(clippy::too_many_arguments)]
fn challenge(
    group: &Group,
    g: &Element,
    h: &Element,
    a: &Element,
    b: &Element,
    t1: &Element,
    t2: &Element,
    context: &[u8],
) -> Scalar {
    group.hash_to_scalar(&[
        b"dissent-dleq",
        context,
        &g.to_bytes(group),
        &h.to_bytes(group),
        &a.to_bytes(group),
        &b.to_bytes(group),
        &t1.to_bytes(group),
        &t2.to_bytes(group),
    ])
}

/// Prove that `a = g^x` and `b = h^x` for the same secret `x`.
///
/// `context` binds the proof to a transcript (round number, shuffle id, …) so
/// it cannot be replayed elsewhere.
#[allow(clippy::too_many_arguments)]
pub fn prove<R: RngCore + ?Sized>(
    group: &Group,
    rng: &mut R,
    g: &Element,
    h: &Element,
    x: &Scalar,
    context: &[u8],
) -> DleqProof {
    let a = group.exp(g, x);
    let b = group.exp(h, x);
    let w = group.random_scalar(rng);
    let t1 = group.exp(g, &w);
    let t2 = group.exp(h, &w);
    let e = challenge(group, g, h, &a, &b, &t1, &t2, context);
    let response = group.scalar_add(&w, &group.scalar_mul(&e, x));
    DleqProof { t1, t2, response }
}

/// One statement of a DLEQ *proving* batch: the second base `h`, its image
/// `b = h^x`, and the transcript context.  The first base `g`, the witness
/// `x`, and the image `a = g^x` are shared across the batch — the
/// shuffle-pass shape, where `g` is the generator, `a` the server's public
/// key, and each entry contributes `(c1, share)`.
#[derive(Clone, Copy, Debug)]
pub struct DleqProveItem<'a> {
    /// Second base (e.g. `c1`).
    pub h: &'a Element,
    /// `h^x` (e.g. the decryption share), computed by the caller.
    pub b: &'a Element,
    /// The transcript context to bind the proof to.
    pub context: &'a [u8],
}

/// Entry count from which the per-entry half of [`prove_batch`] (the
/// `h^w` commitments, challenges, and responses) shards across the pool.
const PARALLEL_PROVE_MIN: usize = 16;

/// Prove `a = g^x ∧ bᵢ = hᵢ^x` for every item, sharing the batched work.
///
/// Produces exactly the proofs a loop of [`prove`] calls would: one
/// blinding scalar `wᵢ` is drawn *per entry, in entry order* (sharing `w`
/// across entries would surrender `x` to anyone subtracting two
/// responses), so the RNG stream — and with it every transcript byte — is
/// identical to the per-entry loop.  What the batch saves is arithmetic,
/// not randomness: the caller passes `a` and each `bᵢ` in instead of
/// having them recomputed per entry (two exponentiations saved each), and
/// all `g^{wᵢ}` commitments run through one comb-domain
/// [`Group::exp_batch`] sweep.  The irreducible per-entry cost — `hᵢ^{wᵢ}`
/// against a fresh base — shards across the thread pool for large batches.
///
/// Verification is unchanged: the output satisfies [`verify`] and
/// [`batch_verify`] exactly as per-entry proofs do, so blame attribution
/// in callers keeps working entry by entry.
pub fn prove_batch<R: RngCore + ?Sized>(
    group: &Group,
    rng: &mut R,
    g: &Element,
    x: &Scalar,
    a: &Element,
    items: &[DleqProveItem<'_>],
) -> Vec<DleqProof> {
    debug_assert!(group.exp(g, x) == *a, "a must equal g^x");
    let ws: Vec<Scalar> = items.iter().map(|_| group.random_scalar(rng)).collect();
    let w_refs: Vec<&Scalar> = ws.iter().collect();
    let t1s = group.exp_batch(g, &w_refs);
    let finish = |k: usize| -> DleqProof {
        let (item, w, t1) = (&items[k], &ws[k], &t1s[k]);
        let t2 = group.exp(item.h, w);
        let e = challenge(group, g, item.h, a, item.b, t1, &t2, item.context);
        let response = group.scalar_add(w, &group.scalar_mul(&e, x));
        DleqProof {
            t1: t1.clone(),
            t2,
            response,
        }
    };
    let threads = rayon::current_num_threads();
    if items.len() >= PARALLEL_PROVE_MIN && threads > 1 {
        use rayon::prelude::*;
        let indices: Vec<usize> = (0..items.len()).collect();
        let chunk = indices.len().div_ceil(threads);
        let mut parts: Vec<Vec<DleqProof>> = Vec::new();
        indices
            .par_chunks(chunk)
            .map(|ix| ix.iter().map(|&k| finish(k)).collect::<Vec<_>>())
            .collect_into_vec(&mut parts);
        parts.into_iter().flatten().collect()
    } else {
        (0..items.len()).map(finish).collect()
    }
}

/// Verify a DLEQ proof that `a = g^x` and `b = h^x` for some common `x`.
pub fn verify(
    group: &Group,
    g: &Element,
    h: &Element,
    a: &Element,
    b: &Element,
    proof: &DleqProof,
    context: &[u8],
) -> bool {
    if !group.is_member(&proof.t1) || !group.is_member(&proof.t2) {
        return false;
    }
    // The bases are screened too: for an order-2q base (e.g. a non-member
    // `c1` smuggled in by a malicious client) exponent arithmetic mod q is
    // ambiguous by a factor of base^q = −1, so the statement itself is
    // ill-formed — and rejecting it here keeps this verdict exactly aligned
    // with [`batch_verify`], whose random-weight fold reduces mod q.
    if !group.is_member(g) || !group.is_member(h) || !group.is_member(a) || !group.is_member(b) {
        return false;
    }
    let e = challenge(group, g, h, a, b, &proof.t1, &proof.t2, context);
    // g^s == t1 · a^e   and   h^s == t2 · b^e, each rearranged (a and b
    // have order q, so x^{-e} = x^{q-e}) into one simultaneous
    // exponentiation per equation: g^s · a^{-e} == t1, h^s · b^{-e} == t2.
    let neg_e = group.scalar_neg(&e);
    group.multi_exp(g, &proof.response, a, &neg_e) == proof.t1
        && group.multi_exp(h, &proof.response, b, &neg_e) == proof.t2
}

/// One DLEQ statement-plus-proof of a verification batch: the claim is
/// `a = g^x ∧ b = h^x` with proof bound to `context`.
#[derive(Clone, Copy, Debug)]
pub struct DleqBatchItem<'a> {
    /// First base.
    pub g: &'a Element,
    /// Second base.
    pub h: &'a Element,
    /// `g^x`.
    pub a: &'a Element,
    /// `h^x`.
    pub b: &'a Element,
    /// The proof.
    pub proof: &'a DleqProof,
    /// The transcript context the proof was bound to.
    pub context: &'a [u8],
}

/// Verify `k` DLEQ proofs in one folded check.
///
/// Both verification equations of every proof — `g^s == t1 · a^e` and
/// `h^s == t2 · b^e` — are raised to independent random 128-bit weights
/// (derived from a hash of the whole batch) and multiplied into one
/// two-sided check:
///
/// ```text
///     Π gᵢ^{zᵢsᵢ} · hᵢ^{z'ᵢsᵢ}  ==  Π t1ᵢ^{zᵢ} · aᵢ^{zᵢeᵢ} · t2ᵢ^{z'ᵢ} · bᵢ^{z'ᵢeᵢ}
/// ```
///
/// All exponents stay positive, so the commitment exponents remain 128-bit.
/// Bases shared across the batch collapse inside [`Group::multi_exp_n`]: in
/// a shuffle pass, the generator and the server's public key each
/// contribute *one* base to the fold no matter how many entries the pass
/// has.
///
/// A batch with any invalid proof is rejected except with probability
/// ≤ 2⁻¹²⁸; a batch of one accepts exactly what [`verify`] accepts.
/// Callers needing the failing index fall back to [`verify`] per item.
///
/// Large batches are split into per-thread sub-batches, each folded and
/// verified concurrently on the vendored pool; the verdict is independent
/// of the split, and the per-proof blame fallback in callers is untouched.
pub fn batch_verify(group: &Group, items: &[DleqBatchItem<'_>]) -> bool {
    let threads = rayon::current_num_threads();
    // Below ~8 proofs per chunk the fold stops amortizing; don't split finer.
    let chunk = items.len().div_ceil(threads).max(8);
    batch_verify_chunked(group, items, chunk)
}

/// [`batch_verify`] with an explicit sub-batch size: items are folded in
/// chunks of `chunk_size` and the chunks verified concurrently.  The
/// verdict does not depend on `chunk_size` (exposed for equivalence tests).
pub fn batch_verify_chunked(group: &Group, items: &[DleqBatchItem<'_>], chunk_size: usize) -> bool {
    if items.is_empty() {
        return true;
    }
    // Same screening as [`verify`], bases included: every folded element
    // must have order q for the mod-q weight arithmetic to be sound (and
    // for batch-of-one to agree exactly with the single verifier).
    for item in items {
        if !group.is_member(&item.proof.t1)
            || !group.is_member(&item.proof.t2)
            || !group.is_member(item.g)
            || !group.is_member(item.h)
            || !group.is_member(item.a)
            || !group.is_member(item.b)
        {
            return false;
        }
    }
    let chunk_size = chunk_size.max(1);
    if chunk_size >= items.len() {
        return fold_verify(group, items);
    }
    use rayon::prelude::*;
    let mut verdicts: Vec<bool> = Vec::new();
    items
        .par_chunks(chunk_size)
        .map(|sub| fold_verify(group, sub))
        .collect_into_vec(&mut verdicts);
    verdicts.into_iter().all(|ok| ok)
}

/// One folded two-sided random-linear-combination check over `items`
/// (already membership-screened, non-empty).
fn fold_verify(group: &Group, items: &[DleqBatchItem<'_>]) -> bool {
    // Two weights per proof (one per verification equation), bound to every
    // statement, proof, and context byte in the batch (`batch_weights`
    // hashes with per-part length framing, so variable-length contexts are
    // unambiguous).
    let mut transcript: Vec<Vec<u8>> = Vec::with_capacity(8 * items.len() + 1);
    transcript.push(b"dissent-dleq-batch".to_vec());
    for item in items {
        for el in [
            item.g,
            item.h,
            item.a,
            item.b,
            &item.proof.t1,
            &item.proof.t2,
        ] {
            transcript.push(el.to_bytes(group));
        }
        transcript.push(item.proof.response.to_bytes(group));
        transcript.push(item.context.to_vec());
    }
    let parts: Vec<&[u8]> = transcript.iter().map(|v| v.as_slice()).collect();
    let weights = group.batch_weights(&parts, 2 * items.len());

    let mut lhs_bases: Vec<&Element> = Vec::with_capacity(2 * items.len());
    let mut lhs_exps: Vec<Scalar> = Vec::with_capacity(2 * items.len());
    let mut rhs_bases: Vec<&Element> = Vec::with_capacity(4 * items.len());
    let mut rhs_exps: Vec<Scalar> = Vec::with_capacity(4 * items.len());
    for (i, item) in items.iter().enumerate() {
        let e = challenge(
            group,
            item.g,
            item.h,
            item.a,
            item.b,
            &item.proof.t1,
            &item.proof.t2,
            item.context,
        );
        let s = &item.proof.response;
        for (z, base, image, commitment) in [
            (&weights[2 * i], item.g, item.a, &item.proof.t1),
            (&weights[2 * i + 1], item.h, item.b, &item.proof.t2),
        ] {
            lhs_bases.push(base);
            lhs_exps.push(group.scalar_mul(z, s));
            rhs_bases.push(image);
            rhs_exps.push(group.scalar_mul(z, &e));
            rhs_bases.push(commitment);
            rhs_exps.push(z.clone());
        }
    }
    let lhs: Vec<(&Element, &Scalar)> = lhs_bases.into_iter().zip(lhs_exps.iter()).collect();
    let rhs: Vec<(&Element, &Scalar)> = rhs_bases.into_iter().zip(rhs_exps.iter()).collect();
    group.multi_exp_n(&lhs) == group.multi_exp_n(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::testing_256(), StdRng::seed_from_u64(55))
    }

    #[test]
    fn valid_proof_verifies() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let proof = prove(&group, &mut rng, &g, &h, &x, b"shuffle-0");
        assert!(verify(&group, &g, &h, &a, &b, &proof, b"shuffle-0"));
    }

    #[test]
    fn wrong_context_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let proof = prove(&group, &mut rng, &g, &h, &x, b"shuffle-0");
        assert!(!verify(&group, &g, &h, &a, &b, &proof, b"shuffle-1"));
    }

    #[test]
    fn mismatched_exponents_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b_wrong = group.exp(&h, &y); // different exponent
        let proof = prove(&group, &mut rng, &g, &h, &x, b"ctx");
        assert!(!verify(&group, &g, &h, &a, &b_wrong, &proof, b"ctx"));
    }

    #[test]
    fn tampered_proof_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let mut proof = prove(&group, &mut rng, &g, &h, &x, b"ctx");
        proof.response = group.scalar_add(&proof.response, &Scalar::one());
        assert!(!verify(&group, &g, &h, &a, &b, &proof, b"ctx"));
    }

    #[test]
    fn batch_verify_accepts_valid_and_rejects_one_bad() {
        let (group, mut rng) = setup();
        let g = group.generator();
        // Shared first base (as in a shuffle pass), distinct second bases.
        let n = 5;
        let hs: Vec<Element> = (0..n)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let xs: Vec<Scalar> = (0..n).map(|_| group.random_scalar(&mut rng)).collect();
        let stmts: Vec<(Element, Element)> = hs
            .iter()
            .zip(&xs)
            .map(|(h, x)| (group.exp(&g, x), group.exp(h, x)))
            .collect();
        let contexts: Vec<Vec<u8>> = (0..n).map(|i| format!("entry-{i}").into_bytes()).collect();
        let mut proofs: Vec<DleqProof> = hs
            .iter()
            .zip(&xs)
            .zip(&contexts)
            .map(|((h, x), ctx)| prove(&group, &mut rng, &g, h, x, ctx))
            .collect();
        let build = |proofs: &[DleqProof]| -> Vec<(usize, DleqProof)> {
            proofs.iter().cloned().enumerate().collect()
        };
        let make_items = |owned: &[(usize, DleqProof)]| -> bool {
            let items: Vec<DleqBatchItem> = owned
                .iter()
                .map(|(i, p)| DleqBatchItem {
                    g: &g,
                    h: &hs[*i],
                    a: &stmts[*i].0,
                    b: &stmts[*i].1,
                    proof: p,
                    context: &contexts[*i],
                })
                .collect();
            batch_verify(&group, &items)
        };
        assert!(make_items(&build(&proofs)));
        // One tampered commitment poisons the batch.
        proofs[2].t2 = group.mul(&proofs[2].t2, &g);
        assert!(!make_items(&build(&proofs)));
        assert!(batch_verify(&group, &[]));
    }

    #[test]
    fn prove_batch_is_bit_identical_to_per_entry_prove() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let n = 6;
        let hs: Vec<Element> = (0..n)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let bs: Vec<Element> = hs.iter().map(|h| group.exp(h, &x)).collect();
        let contexts: Vec<Vec<u8>> = (0..n).map(|i| format!("entry-{i}").into_bytes()).collect();
        // Same seed for both sides: the batched prover must consume the RNG
        // exactly like the loop, so the outputs match byte for byte.
        let mut rng_loop = StdRng::seed_from_u64(99);
        let looped: Vec<DleqProof> = hs
            .iter()
            .zip(&contexts)
            .map(|(h, ctx)| prove(&group, &mut rng_loop, &g, h, &x, ctx))
            .collect();
        let mut rng_batch = StdRng::seed_from_u64(99);
        let items: Vec<DleqProveItem> = hs
            .iter()
            .zip(&bs)
            .zip(&contexts)
            .map(|((h, b), ctx)| DleqProveItem { h, b, context: ctx })
            .collect();
        let batched = prove_batch(&group, &mut rng_batch, &g, &x, &a, &items);
        assert_eq!(batched, looped);
        // And of course each batched proof verifies.
        for ((h, b), (proof, ctx)) in hs.iter().zip(&bs).zip(batched.iter().zip(&contexts)) {
            assert!(verify(&group, &g, h, &a, b, proof, ctx));
        }
        assert!(prove_batch(&group, &mut rng_batch, &g, &x, &a, &[]).is_empty());
    }

    #[test]
    fn proves_correct_elgamal_decryption_share() {
        use crate::dh::DhKeyPair;
        use crate::elgamal::ElGamal;
        let (group, mut rng) = setup();
        let eg = ElGamal::new(group.clone());
        let server = DhKeyPair::generate(&group, &mut rng);
        let m = group.exp_base(&group.random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, server.public(), &m);
        let share = eg.decryption_share(server.secret(), &ct);
        // Server proves share == c1^x where public == g^x.
        let proof = prove(
            &group,
            &mut rng,
            &group.generator(),
            &ct.c1,
            server.secret(),
            b"dec",
        );
        assert!(verify(
            &group,
            &group.generator(),
            &ct.c1,
            server.public(),
            &share,
            &proof,
            b"dec"
        ));
        // A fake share does not verify.
        let fake = group.exp_base(&group.random_scalar(&mut rng));
        assert!(!verify(
            &group,
            &group.generator(),
            &ct.c1,
            server.public(),
            &fake,
            &proof,
            b"dec"
        ));
    }
}
