//! Chaum–Pedersen proofs of discrete-logarithm equality (DLEQ).
//!
//! The paper uses "Chaum-Pedersen proofs [15] for verifiable decryptions"
//! (§3.10): when a server strips its ElGamal layer from the shuffled
//! ciphertexts it must prove, without revealing its secret key `x`, that the
//! decryption share it removed really is `c1^x` for the same `x` such that
//! its public key is `g^x`.  That statement is exactly DLEQ:
//!
//! ```text
//!     log_g(public_key) == log_{c1}(share)
//! ```
//!
//! The proof is made non-interactive with the Fiat–Shamir transform over the
//! group's hash-to-scalar function.

use crate::group::{Element, Group, Scalar};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A non-interactive DLEQ proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleqProof {
    /// Commitment `t1 = g^w`.
    pub t1: Element,
    /// Commitment `t2 = h^w` (where `h` is the second base, e.g. `c1`).
    pub t2: Element,
    /// Response `s = w + e·x mod q`.
    pub response: Scalar,
}

#[allow(clippy::too_many_arguments)]
fn challenge(
    group: &Group,
    g: &Element,
    h: &Element,
    a: &Element,
    b: &Element,
    t1: &Element,
    t2: &Element,
    context: &[u8],
) -> Scalar {
    group.hash_to_scalar(&[
        b"dissent-dleq",
        context,
        &g.to_bytes(group),
        &h.to_bytes(group),
        &a.to_bytes(group),
        &b.to_bytes(group),
        &t1.to_bytes(group),
        &t2.to_bytes(group),
    ])
}

/// Prove that `a = g^x` and `b = h^x` for the same secret `x`.
///
/// `context` binds the proof to a transcript (round number, shuffle id, …) so
/// it cannot be replayed elsewhere.
#[allow(clippy::too_many_arguments)]
pub fn prove<R: RngCore + ?Sized>(
    group: &Group,
    rng: &mut R,
    g: &Element,
    h: &Element,
    x: &Scalar,
    context: &[u8],
) -> DleqProof {
    let a = group.exp(g, x);
    let b = group.exp(h, x);
    let w = group.random_scalar(rng);
    let t1 = group.exp(g, &w);
    let t2 = group.exp(h, &w);
    let e = challenge(group, g, h, &a, &b, &t1, &t2, context);
    let response = group.scalar_add(&w, &group.scalar_mul(&e, x));
    DleqProof { t1, t2, response }
}

/// Verify a DLEQ proof that `a = g^x` and `b = h^x` for some common `x`.
pub fn verify(
    group: &Group,
    g: &Element,
    h: &Element,
    a: &Element,
    b: &Element,
    proof: &DleqProof,
    context: &[u8],
) -> bool {
    if !group.is_member(&proof.t1) || !group.is_member(&proof.t2) {
        return false;
    }
    if !group.is_member(a) || !group.is_member(b) {
        return false;
    }
    let e = challenge(group, g, h, a, b, &proof.t1, &proof.t2, context);
    // g^s == t1 · a^e   and   h^s == t2 · b^e, each rearranged (a and b
    // have order q, so x^{-e} = x^{q-e}) into one simultaneous
    // exponentiation per equation: g^s · a^{-e} == t1, h^s · b^{-e} == t2.
    let neg_e = group.scalar_neg(&e);
    group.multi_exp(g, &proof.response, a, &neg_e) == proof.t1
        && group.multi_exp(h, &proof.response, b, &neg_e) == proof.t2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::testing_256(), StdRng::seed_from_u64(55))
    }

    #[test]
    fn valid_proof_verifies() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let proof = prove(&group, &mut rng, &g, &h, &x, b"shuffle-0");
        assert!(verify(&group, &g, &h, &a, &b, &proof, b"shuffle-0"));
    }

    #[test]
    fn wrong_context_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let proof = prove(&group, &mut rng, &g, &h, &x, b"shuffle-0");
        assert!(!verify(&group, &g, &h, &a, &b, &proof, b"shuffle-1"));
    }

    #[test]
    fn mismatched_exponents_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b_wrong = group.exp(&h, &y); // different exponent
        let proof = prove(&group, &mut rng, &g, &h, &x, b"ctx");
        assert!(!verify(&group, &g, &h, &a, &b_wrong, &proof, b"ctx"));
    }

    #[test]
    fn tampered_proof_rejected() {
        let (group, mut rng) = setup();
        let g = group.generator();
        let h = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let a = group.exp(&g, &x);
        let b = group.exp(&h, &x);
        let mut proof = prove(&group, &mut rng, &g, &h, &x, b"ctx");
        proof.response = group.scalar_add(&proof.response, &Scalar::one());
        assert!(!verify(&group, &g, &h, &a, &b, &proof, b"ctx"));
    }

    #[test]
    fn proves_correct_elgamal_decryption_share() {
        use crate::dh::DhKeyPair;
        use crate::elgamal::ElGamal;
        let (group, mut rng) = setup();
        let eg = ElGamal::new(group.clone());
        let server = DhKeyPair::generate(&group, &mut rng);
        let m = group.exp_base(&group.random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, server.public(), &m);
        let share = eg.decryption_share(server.secret(), &ct);
        // Server proves share == c1^x where public == g^x.
        let proof = prove(
            &group,
            &mut rng,
            &group.generator(),
            &ct.c1,
            server.secret(),
            b"dec",
        );
        assert!(verify(
            &group,
            &group.generator(),
            &ct.c1,
            server.public(),
            &share,
            &proof,
            b"dec"
        ));
        // A fake share does not verify.
        let fake = group.exp_base(&group.random_scalar(&mut rng));
        assert!(!verify(
            &group,
            &group.generator(),
            &ct.c1,
            server.public(),
            &fake,
            &proof,
            b"dec"
        ));
    }
}
