//! ElGamal encryption over a Schnorr group, including the layered ("onion")
//! form used by Dissent's verifiable shuffle.
//!
//! In the key shuffle (paper §3.10) each client submits an ElGamal
//! encryption of its pseudonym public key under the *combination* of all
//! server keys.  Servers take turns shuffling the ciphertext list,
//! re-randomizing it, and stripping their own encryption layer; the last
//! server reveals the permuted plaintexts.  This module provides exactly
//! those operations: encryption under a set of public keys, re-randomization
//! under a remaining-key product, and single-layer decryption.

use crate::group::{Element, Group, Scalar};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// An ElGamal ciphertext `(c1, c2) = (g^r, m · y^r)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// The ephemeral element `g^r`.
    pub c1: Element,
    /// The blinded message `m · y^r`.
    pub c2: Element,
}

/// ElGamal over a given group.
#[derive(Clone, Debug)]
pub struct ElGamal {
    group: Group,
}

impl ElGamal {
    /// Create an ElGamal instance over `group`.
    pub fn new(group: Group) -> Self {
        ElGamal { group }
    }

    /// The underlying group.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Combine several public keys into their product, the key under which
    /// layered ciphertexts are encrypted.
    pub fn combine_keys(&self, keys: &[Element]) -> Element {
        keys.iter()
            .fold(self.group.identity(), |acc, k| self.group.mul(&acc, k))
    }

    /// Encrypt a group element under a (possibly combined) public key.
    pub fn encrypt<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        public_key: &Element,
        message: &Element,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        self.encrypt_with_randomness(public_key, message, &r)
    }

    /// Encrypt with explicit randomness (used by proofs and tests).
    pub fn encrypt_with_randomness(
        &self,
        public_key: &Element,
        message: &Element,
        r: &Scalar,
    ) -> Ciphertext {
        Ciphertext {
            c1: self.group.exp_base(r),
            c2: self.group.mul(message, &self.group.exp(public_key, r)),
        }
    }

    /// Decrypt a (single-key) ciphertext with the secret exponent.
    ///
    /// `c1 = g^r` lies in the order-`q` subgroup, so `c1^{-x} = c1^{q-x}`:
    /// the blinding factor is removed with a single exponentiation instead
    /// of an exponentiation plus a modular inversion.
    pub fn decrypt(&self, secret: &Scalar, ct: &Ciphertext) -> Element {
        let unblind = self.group.exp(&ct.c1, &self.group.scalar_neg(secret));
        self.group.mul(&ct.c2, &unblind)
    }

    /// Strip one layer from a layered ciphertext: divides `c2` by `c1^secret`
    /// while leaving `c1` untouched, so the remaining ciphertext is valid
    /// under the product of the *other* keys.  Uses the same negated-
    /// exponent trick as [`Self::decrypt`].
    pub fn strip_layer(&self, secret: &Scalar, ct: &Ciphertext) -> Ciphertext {
        let unblind = self.group.exp(&ct.c1, &self.group.scalar_neg(secret));
        Ciphertext {
            c1: ct.c1.clone(),
            c2: self.group.mul(&ct.c2, &unblind),
        }
    }

    /// The blinding factor `c1^secret` removed by [`Self::strip_layer`];
    /// exposed so a Chaum–Pedersen proof of correct decryption can be built
    /// over it.
    pub fn decryption_share(&self, secret: &Scalar, ct: &Ciphertext) -> Element {
        self.group.exp(&ct.c1, secret)
    }

    /// Re-randomize a ciphertext that is currently encrypted under
    /// `remaining_key` (the product of the public keys whose layers have not
    /// yet been stripped).  The plaintext is unchanged; the ciphertext
    /// becomes unlinkable to its previous form.
    pub fn rerandomize<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        remaining_key: &Element,
        ct: &Ciphertext,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        self.rerandomize_with(remaining_key, ct, &r)
    }

    /// Re-randomize with explicit randomness.
    pub fn rerandomize_with(
        &self,
        remaining_key: &Element,
        ct: &Ciphertext,
        r: &Scalar,
    ) -> Ciphertext {
        Ciphertext {
            c1: self.group.mul(&ct.c1, &self.group.exp_base(r)),
            c2: self.group.mul(&ct.c2, &self.group.exp(remaining_key, r)),
        }
    }

    /// Re-randomize a batch of ciphertexts with explicit per-entry
    /// randomness: entry `i` becomes
    /// `(c1ᵢ · g^{rᵢ}, c2ᵢ · remaining_key^{rᵢ})`.
    ///
    /// Equivalent to [`Self::rerandomize_with`] per entry, but both element
    /// positions run through [`Group::exp_mul_batch`]: one comb table per
    /// base serves the whole batch and every product stays in the Montgomery
    /// domain.  This is the shuffle prover's hot loop — `T` shadow rounds ×
    /// `N` entries per pass — which is why the batch form exists.
    pub fn rerandomize_batch(
        &self,
        remaining_key: &Element,
        cts: &[&Ciphertext],
        rs: &[Scalar],
    ) -> Vec<Ciphertext> {
        assert_eq!(cts.len(), rs.len(), "one randomizer per ciphertext");
        let generator = self.group.generator();
        let c1_pairs: Vec<(&Element, &Scalar)> =
            cts.iter().zip(rs).map(|(ct, r)| (&ct.c1, r)).collect();
        let c2_pairs: Vec<(&Element, &Scalar)> =
            cts.iter().zip(rs).map(|(ct, r)| (&ct.c2, r)).collect();
        let c1s = self.group.exp_mul_batch(&generator, &c1_pairs);
        let c2s = self.group.exp_mul_batch(remaining_key, &c2_pairs);
        c1s.into_iter()
            .zip(c2s)
            .map(|(c1, c2)| Ciphertext { c1, c2 })
            .collect()
    }

    /// Encrypt a byte-string message by embedding it in a group element
    /// first.  Fails if the message is too long for one element.
    pub fn encrypt_bytes<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        public_key: &Element,
        message: &[u8],
    ) -> Result<Ciphertext, &'static str> {
        let el = self.group.embed_message(message)?;
        Ok(self.encrypt(rng, public_key, &el))
    }

    /// Decrypt a ciphertext carrying an embedded byte-string.
    pub fn decrypt_bytes(&self, secret: &Scalar, ct: &Ciphertext) -> Result<Vec<u8>, &'static str> {
        let el = self.decrypt(secret, ct);
        self.group.extract_message(&el)
    }
}

impl Ciphertext {
    /// Canonical byte encoding of the ciphertext.
    pub fn to_bytes(&self, group: &Group) -> Vec<u8> {
        let mut out = self.c1.to_bytes(group);
        out.extend_from_slice(&self.c2.to_bytes(group));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dh::DhKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ElGamal, StdRng) {
        (
            ElGamal::new(Group::testing_256()),
            StdRng::seed_from_u64(21),
        )
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (eg, mut rng) = setup();
        let kp = DhKeyPair::generate(eg.group(), &mut rng);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, kp.public(), &m);
        assert_eq!(eg.decrypt(kp.secret(), &ct), m);
    }

    #[test]
    fn bytes_round_trip() {
        let (eg, mut rng) = setup();
        let kp = DhKeyPair::generate(eg.group(), &mut rng);
        let ct = eg
            .encrypt_bytes(&mut rng, kp.public(), b"anonymous post")
            .unwrap();
        assert_eq!(
            eg.decrypt_bytes(kp.secret(), &ct).unwrap(),
            b"anonymous post"
        );
    }

    #[test]
    fn layered_encryption_strips_in_any_order() {
        let (eg, mut rng) = setup();
        let servers: Vec<DhKeyPair> = (0..4)
            .map(|_| DhKeyPair::generate(eg.group(), &mut rng))
            .collect();
        let pubs: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let combined = eg.combine_keys(&pubs);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, &combined, &m);

        // Strip layers in reverse order.
        let mut c = ct.clone();
        for s in servers.iter().rev() {
            c = eg.strip_layer(s.secret(), &c);
        }
        assert_eq!(c.c2, m);

        // Strip layers in forward order — same result, order must not matter.
        let mut c = ct;
        for s in servers.iter() {
            c = eg.strip_layer(s.secret(), &c);
        }
        assert_eq!(c.c2, m);
    }

    #[test]
    fn rerandomization_preserves_plaintext_and_changes_ciphertext() {
        let (eg, mut rng) = setup();
        let kp = DhKeyPair::generate(eg.group(), &mut rng);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, kp.public(), &m);
        let ct2 = eg.rerandomize(&mut rng, kp.public(), &ct);
        assert_ne!(ct, ct2);
        assert_eq!(eg.decrypt(kp.secret(), &ct2), m);
    }

    #[test]
    fn layered_with_rerandomization_midway() {
        let (eg, mut rng) = setup();
        let s1 = DhKeyPair::generate(eg.group(), &mut rng);
        let s2 = DhKeyPair::generate(eg.group(), &mut rng);
        let combined = eg.combine_keys(&[s1.public().clone(), s2.public().clone()]);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, &combined, &m);
        // Server 1 strips its layer, then re-randomizes under server 2's key.
        let stripped = eg.strip_layer(s1.secret(), &ct);
        let rerand = eg.rerandomize(&mut rng, s2.public(), &stripped);
        // Server 2 finishes.
        let plain = eg.strip_layer(s2.secret(), &rerand);
        assert_eq!(plain.c2, m);
    }

    #[test]
    fn decryption_share_matches_strip() {
        let (eg, mut rng) = setup();
        let kp = DhKeyPair::generate(eg.group(), &mut rng);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, kp.public(), &m);
        let share = eg.decryption_share(kp.secret(), &ct);
        let stripped = eg.strip_layer(kp.secret(), &ct);
        assert_eq!(eg.group().mul(&stripped.c2, &share), ct.c2);
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let (eg, mut rng) = setup();
        let kp = DhKeyPair::generate(eg.group(), &mut rng);
        let other = DhKeyPair::generate(eg.group(), &mut rng);
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        let ct = eg.encrypt(&mut rng, kp.public(), &m);
        assert_ne!(eg.decrypt(other.secret(), &ct), m);
    }
}
