//! Self-randomizing message padding (OAEP-style), paper §3.9.
//!
//! To guarantee that a disruption victim can find a *witness bit* — a bit the
//! disruptor flipped from 0 to 1 — every cleartext bit must be unpredictable
//! to the disruptor.  Dissent achieves this with a padding scheme analogous
//! to OAEP: the sender picks a random seed `r`, computes a one-time pad
//! `s = PRNG(r)`, and transmits `r ‖ (m ⊕ s)`.  Any bit flip then lands on a
//! 0 bit of the (pseudo-random) wire image with probability ½.
//!
//! The encoding here additionally carries a 4-byte length prefix and a
//! 4-byte checksum inside the masked region so receivers can detect
//! corruption (and hence disruption) deterministically.

use crate::prng::DetPrng;
use crate::sha256::sha256_tagged;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Length of the random seed `r` in bytes.
pub const SEED_LEN: usize = 16;
/// Bytes of overhead added by the padding: seed + length + checksum.
pub const OVERHEAD: usize = SEED_LEN + 4 + 4;

/// Outcome of decoding a padded message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decoded {
    /// The slot carried a well-formed message.
    Message(Vec<u8>),
    /// The slot was empty (all zero bytes) — the owner sent a null message.
    Empty,
    /// The slot bytes were corrupted: either by a disruptor or by channel
    /// garbling.  The accusation machinery takes over from here.
    Corrupted,
}

fn mask(seed: &[u8; SEED_LEN], len: usize) -> Vec<u8> {
    let mut key = [0u8; 32];
    key[..SEED_LEN].copy_from_slice(seed);
    DetPrng::new(&key, b"dissent-msg-pad").bytes(len)
}

fn checksum(seed: &[u8; SEED_LEN], payload: &[u8]) -> [u8; 4] {
    let digest = sha256_tagged(&[b"dissent-pad-ck", seed, payload]);
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Encode `message` into a wire image of exactly `slot_len` bytes.
///
/// Returns `None` if the slot is too small (`slot_len < message.len() + OVERHEAD`).
pub fn encode<R: RngCore + ?Sized>(
    rng: &mut R,
    message: &[u8],
    slot_len: usize,
) -> Option<Vec<u8>> {
    if slot_len < message.len() + OVERHEAD {
        return None;
    }
    let mut seed = [0u8; SEED_LEN];
    rng.fill_bytes(&mut seed);
    // Never emit the all-zero seed: an all-zero wire image must remain
    // unambiguously "empty slot".
    if seed.iter().all(|&b| b == 0) {
        seed[0] = 1;
    }
    let body_len = slot_len - SEED_LEN;
    let mut body = vec![0u8; body_len];
    body[..4].copy_from_slice(&(message.len() as u32).to_be_bytes());
    body[4..4 + message.len()].copy_from_slice(message);
    let ck = checksum(&seed, &body[..4 + message.len()]);
    body[4 + message.len()..8 + message.len()].copy_from_slice(&ck);
    // Mask the entire body (length, message, checksum, and trailing zeros).
    let m = mask(&seed, body_len);
    for (b, k) in body.iter_mut().zip(m.iter()) {
        *b ^= k;
    }
    let mut out = Vec::with_capacity(slot_len);
    out.extend_from_slice(&seed);
    out.extend_from_slice(&body);
    Some(out)
}

/// Decode a slot's wire image.
pub fn decode(wire: &[u8]) -> Decoded {
    if wire.len() < OVERHEAD {
        return if wire.iter().all(|&b| b == 0) {
            Decoded::Empty
        } else {
            Decoded::Corrupted
        };
    }
    if wire.iter().all(|&b| b == 0) {
        return Decoded::Empty;
    }
    let mut seed = [0u8; SEED_LEN];
    seed.copy_from_slice(&wire[..SEED_LEN]);
    let body_len = wire.len() - SEED_LEN;
    let m = mask(&seed, body_len);
    let body: Vec<u8> = wire[SEED_LEN..]
        .iter()
        .zip(m.iter())
        .map(|(b, k)| b ^ k)
        .collect();
    let msg_len = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
    if msg_len + 8 > body.len() {
        return Decoded::Corrupted;
    }
    let payload = &body[..4 + msg_len];
    let ck_stored = &body[4 + msg_len..8 + msg_len];
    let ck = checksum(&seed, payload);
    if ck_stored != ck {
        return Decoded::Corrupted;
    }
    // Trailing filler must be zero; a non-zero tail indicates tampering.
    if body[8 + msg_len..].iter().any(|&b| b != 0) {
        return Decoded::Corrupted;
    }
    Decoded::Message(body[4..4 + msg_len].to_vec())
}

/// Find a *witness bit* for an accusation: a bit index (within the slot)
/// where the sender's intended wire image had 0 but the DC-net output had 1.
///
/// Returns `None` if the corruption only flipped 1→0 bits (in which case the
/// victim waits for another round — per the paper each disruptive flip leaves
/// a witness with probability ½).
pub fn find_witness_bit(intended: &[u8], observed: &[u8]) -> Option<usize> {
    for (byte_idx, (&i, &o)) in intended.iter().zip(observed.iter()).enumerate() {
        let flipped_up = !i & o; // bits that were 0 and became 1
        if flipped_up != 0 {
            let bit_in_byte = (0..8).find(|b| flipped_up >> (7 - b) & 1 == 1).unwrap();
            return Some(byte_idx * 8 + bit_in_byte);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        for msg_len in [0usize, 1, 17, 128, 1000] {
            let msg: Vec<u8> = (0..msg_len).map(|i| i as u8).collect();
            let slot = msg_len + OVERHEAD + 13;
            let wire = encode(&mut rng, &msg, slot).unwrap();
            assert_eq!(wire.len(), slot);
            assert_eq!(decode(&wire), Decoded::Message(msg));
        }
    }

    #[test]
    fn empty_slot_decodes_as_empty() {
        assert_eq!(decode(&[0u8; 64]), Decoded::Empty);
        assert_eq!(decode(&[]), Decoded::Empty);
        assert_eq!(decode(&[0u8; 5]), Decoded::Empty);
    }

    #[test]
    fn slot_too_small_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(encode(&mut rng, &[0u8; 100], 100).is_none());
        assert!(encode(&mut rng, &[0u8; 100], 100 + OVERHEAD).is_some());
    }

    #[test]
    fn corruption_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let wire = encode(&mut rng, b"sensitive post", 128).unwrap();
        for bit in [0usize, 77, 128 * 8 - 1] {
            let mut corrupted = wire.clone();
            corrupted[bit / 8] ^= 1 << (7 - bit % 8);
            assert_eq!(decode(&corrupted), Decoded::Corrupted, "bit {bit}");
        }
    }

    #[test]
    fn wire_image_looks_random() {
        // Two encodings of the same message must differ (fresh seed), and the
        // masked body must not contain the plaintext.
        let mut rng = StdRng::seed_from_u64(6);
        let a = encode(&mut rng, b"same message", 96).unwrap();
        let b = encode(&mut rng, b"same message", 96).unwrap();
        assert_ne!(a, b);
        assert!(!a
            .windows(b"same message".len())
            .any(|w| w == b"same message"));
    }

    #[test]
    fn witness_bit_found_for_upward_flip() {
        let intended = vec![0b0000_0000u8, 0b1111_0000];
        let mut observed = intended.clone();
        observed[1] |= 0b0000_1000; // flip bit 12 (0 → 1)
        assert_eq!(find_witness_bit(&intended, &observed), Some(12));
    }

    #[test]
    fn no_witness_for_downward_flip() {
        let intended = vec![0b1111_1111u8];
        let observed = vec![0b1110_1111u8]; // only a 1→0 flip
        assert_eq!(find_witness_bit(&intended, &observed), None);
        assert_eq!(find_witness_bit(&intended, &intended), None);
    }

    #[test]
    fn disruption_leaves_witness_about_half_the_time() {
        // Statistical check of the paper's ½ claim: flip one random bit of
        // the wire image and count how often it is an upward flip.
        let mut rng = StdRng::seed_from_u64(7);
        let mut witnesses = 0;
        let trials = 400;
        for _ in 0..trials {
            let wire = encode(&mut rng, b"post", 64).unwrap();
            let bit = (rng.next_u32() as usize) % (64 * 8);
            let mut observed = wire.clone();
            observed[bit / 8] ^= 1 << (7 - bit % 8);
            if find_witness_bit(&wire, &observed).is_some() {
                witnesses += 1;
            }
        }
        let frac = witnesses as f64 / trials as f64;
        assert!(frac > 0.35 && frac < 0.65, "witness fraction {frac}");
    }
}
