//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! Dissent derives the per-round DC-net pad keys from the Diffie–Hellman
//! shared secret between each client/server pair.  HKDF provides the
//! extract-and-expand step that turns the raw group element into independent
//! 32-byte keys, bound to the round number and session tag so pads never
//! repeat across rounds.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract: produce a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `len` output bytes bound to `info`.
///
/// Panics if `len > 255 * 32` per RFC 5869.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        out.extend_from_slice(&block);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out.truncate(len);
    out
}

/// Convenience: extract-then-expand into a fixed 32-byte key.
pub fn hkdf_key(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; DIGEST_LEN] {
    let prk = hkdf_extract(salt, ikm);
    let okm = hkdf_expand(&prk, info, DIGEST_LEN);
    let mut key = [0u8; DIGEST_LEN];
    key.copy_from_slice(&okm);
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key forces the key-hashing path.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_info_separates_keys() {
        let a = hkdf_key(b"salt", b"secret", b"round-1");
        let b = hkdf_key(b"salt", b"secret", b"round-2");
        assert_ne!(a, b);
    }

    #[test]
    fn hkdf_expand_lengths() {
        let prk = hkdf_extract(b"s", b"k");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf_expand(&prk, b"i", len).len(), len);
        }
        // Prefix property: shorter outputs are prefixes of longer ones.
        let long = hkdf_expand(&prk, b"i", 100);
        let short = hkdf_expand(&prk, b"i", 40);
        assert_eq!(&long[..40], &short[..]);
    }
}
