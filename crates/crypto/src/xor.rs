//! Word-level XOR of byte buffers.
//!
//! XOR over client-count × cleartext-length bytes is the single hottest
//! loop in the DC-net data path (every pad, every client ciphertext and
//! every server ciphertext is folded with it), so it runs over `u64` words
//! with a byte tail instead of byte-at-a-time.

/// XOR `src` into `dst` in place; the buffers must have equal length.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    let words = dst.len() / 8 * 8;
    let (d_main, d_tail) = dst.split_at_mut(words);
    let (s_main, s_tail) = src.split_at(words);
    for (d, s) in d_main.chunks_exact_mut(8).zip(s_main.chunks_exact(8)) {
        let v = u64::from_ne_bytes((&*d).try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&v.to_ne_bytes());
    }
    for (d, s) in d_tail.iter_mut().zip(s_tail) {
        *d ^= s;
    }
}

/// Constant-time byte-slice equality for authentication material
/// (signatures, MAC tags, nonces, fingerprints).
///
/// A short-circuiting `==` leaks how many leading bytes matched through
/// timing; this folds every byte's XOR into one accumulator so the data
/// path length depends only on the slice length.  Slices of different
/// lengths compare unequal immediately — length is public here (all the
/// protocol's tags and fingerprints are fixed-width).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_into_bytewise(dst: &mut [u8], src: &[u8]) {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d ^= s;
        }
    }

    #[test]
    fn matches_bytewise_reference_at_every_alignment() {
        // Lengths straddling the 8-byte word boundary, including empty.
        for len in 0..=67 {
            let a: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 113 + 5) as u8).collect();
            let mut fast = a.clone();
            let mut slow = a.clone();
            xor_into(&mut fast, &b);
            xor_into_bytewise(&mut slow, &b);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn is_an_involution() {
        let a: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let mut buf = a.clone();
        xor_into(&mut buf, &b);
        assert_ne!(buf, a);
        xor_into(&mut buf, &b);
        assert_eq!(buf, a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn ct_eq_agrees_with_slice_equality() {
        for len in 0..=64 {
            let a: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let mut b = a.clone();
            assert!(ct_eq(&a, &b), "len {len}");
            if len > 0 {
                // Flip each byte position in turn; every single-bit
                // difference must be detected.
                for i in 0..len {
                    b[i] ^= 1;
                    assert!(!ct_eq(&a, &b), "len {len}, flipped byte {i}");
                    b[i] ^= 1;
                }
            }
        }
    }

    #[test]
    fn ct_eq_rejects_length_mismatch() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 3, 0]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(ct_eq(&[], &[]));
    }
}
