//! Connection authentication: a Schnorr challenge–response that binds a
//! transport connection to one roster identity.
//!
//! The round engine's ingests validate shape and routing but are
//! first-write-wins; only the transport can reject a spoofed message, and
//! only if it knows *who* each connection speaks for.  The handshake here
//! provides that: the verifier sends a fresh nonce, and the prover signs a
//! domain-separated transcript binding the group fingerprint, the nonce and
//! the claimed `(role, id)` with its long-term roster signing key.  A valid
//! proof shows the connection holds that member's secret key *now* (the
//! nonce rules out replaying a signature observed on an earlier
//! connection), so every message the connection later delivers can be
//! checked against the proven identity.

use crate::bigint::BigUint;
use crate::group::{Element, Group, Scalar};
use crate::schnorr::{self, Signature, SigningKeyPair};
use crate::sha256::sha256_tagged;
use rand::RngCore;

/// Role byte for a client connection.
pub const ROLE_CLIENT: u8 = 1;
/// Role byte for a server connection.
pub const ROLE_SERVER: u8 = 2;

/// The signed transcript: a domain-separated digest over everything the
/// proof must bind — the group (by self-certifying fingerprint), the
/// verifier's fresh nonce, and the claimed roster identity.  Signing a
/// digest rather than the raw concatenation keeps the signed message fixed
/// width; the tag and the fixed-width fields make the encoding injective.
pub fn transcript(fingerprint: &[u8; 32], nonce: &[u8; 32], role: u8, id: u32) -> [u8; 32] {
    sha256_tagged(&[
        b"dissent-conn-auth-v1",
        fingerprint,
        nonce,
        &[role],
        &id.to_be_bytes(),
    ])
}

/// Prove control of a roster identity for this connection: sign the
/// challenge transcript with the member's long-term signing key.
pub fn prove<R: RngCore + ?Sized>(
    group: &Group,
    key: &SigningKeyPair,
    fingerprint: &[u8; 32],
    nonce: &[u8; 32],
    role: u8,
    id: u32,
    rng: &mut R,
) -> Signature {
    key.sign(group, rng, &transcript(fingerprint, nonce, role, id))
}

/// Verify a connection-authentication proof against the claimed identity's
/// roster verification key.
pub fn verify(
    group: &Group,
    public: &Element,
    fingerprint: &[u8; 32],
    nonce: &[u8; 32],
    role: u8,
    id: u32,
    sig: &Signature,
) -> bool {
    schnorr::verify(
        group,
        public,
        &transcript(fingerprint, nonce, role, id),
        sig,
    )
}

/// Fixed-width wire encoding of a proof signature relative to `group`:
/// the commitment element (modulus width) followed by the response scalar
/// (order width).
pub fn signature_to_bytes(group: &Group, sig: &Signature) -> Vec<u8> {
    let mut out = sig.commitment.to_bytes(group);
    out.extend_from_slice(&sig.response.to_bytes(group));
    out
}

/// Decode a proof signature encoded by [`signature_to_bytes`].  The
/// commitment is subgroup-membership-checked; a wrong-length buffer or a
/// non-member element is rejected.
pub fn signature_from_bytes(group: &Group, bytes: &[u8]) -> Result<Signature, &'static str> {
    let elem_len = group.element_len();
    let scalar_len = group.order().bit_len().div_ceil(8);
    if bytes.len() != elem_len + scalar_len {
        return Err("proof signature has the wrong length for this group");
    }
    let commitment = group.element_from_bytes(&bytes[..elem_len])?;
    let response = Scalar::from_biguint(BigUint::from_bytes_be(&bytes[elem_len..]), group);
    Ok(Signature {
        commitment,
        response,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, SigningKeyPair, StdRng) {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(0xC0AA);
        let key = SigningKeyPair::generate(&group, &mut rng);
        (group, key, rng)
    }

    #[test]
    fn proof_roundtrip_verifies() {
        let (group, key, mut rng) = setup();
        let fp = [7u8; 32];
        let nonce = [9u8; 32];
        let sig = prove(&group, &key, &fp, &nonce, ROLE_CLIENT, 3, &mut rng);
        assert!(verify(
            &group,
            key.public(),
            &fp,
            &nonce,
            ROLE_CLIENT,
            3,
            &sig
        ));
    }

    #[test]
    fn proof_binds_every_transcript_field() {
        let (group, key, mut rng) = setup();
        let fp = [7u8; 32];
        let nonce = [9u8; 32];
        let sig = prove(&group, &key, &fp, &nonce, ROLE_CLIENT, 3, &mut rng);
        // Any field changing — group, nonce, role, or claimed id — must
        // invalidate the proof, otherwise a signature observed in one
        // context could be replayed in another.
        assert!(!verify(
            &group,
            key.public(),
            &[8u8; 32],
            &nonce,
            ROLE_CLIENT,
            3,
            &sig
        ));
        assert!(!verify(
            &group,
            key.public(),
            &fp,
            &[0u8; 32],
            ROLE_CLIENT,
            3,
            &sig
        ));
        assert!(!verify(
            &group,
            key.public(),
            &fp,
            &nonce,
            ROLE_SERVER,
            3,
            &sig
        ));
        assert!(!verify(
            &group,
            key.public(),
            &fp,
            &nonce,
            ROLE_CLIENT,
            4,
            &sig
        ));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let (group, key, mut rng) = setup();
        let other = SigningKeyPair::generate(&group, &mut rng);
        let fp = [7u8; 32];
        let nonce = [9u8; 32];
        let sig = prove(&group, &key, &fp, &nonce, ROLE_SERVER, 0, &mut rng);
        assert!(!verify(
            &group,
            other.public(),
            &fp,
            &nonce,
            ROLE_SERVER,
            0,
            &sig
        ));
    }

    #[test]
    fn signature_codec_roundtrips() {
        let (group, key, mut rng) = setup();
        let sig = prove(
            &group,
            &key,
            &[1u8; 32],
            &[2u8; 32],
            ROLE_CLIENT,
            0,
            &mut rng,
        );
        let bytes = signature_to_bytes(&group, &sig);
        let back = signature_from_bytes(&group, &bytes).unwrap();
        assert_eq!(back, sig);
        assert!(signature_from_bytes(&group, &bytes[..bytes.len() - 1]).is_err());
        // A corrupted commitment that falls outside the subgroup is caught
        // by the membership check at decode time.
        let mut bad = bytes.clone();
        bad[group.element_len() - 1] ^= 1;
        if let Ok(decoded) = signature_from_bytes(&group, &bad) {
            assert!(group.is_member(&decoded.commitment));
        }
    }
}
