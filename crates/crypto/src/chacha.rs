//! ChaCha20 stream cipher (RFC 8439).
//!
//! Dissent's DC-net pads (`PRNG(K_ij)` in Algorithms 1 and 2) and the
//! OAEP-style message padding both require a fast, deterministic,
//! cryptographically strong pseudo-random keystream derived from a shared
//! secret.  The paper's prototype used CryptoPP's stream ciphers; here we
//! implement ChaCha20 from scratch.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;
/// Block size in bytes.
pub const BLOCK_LEN: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 block for (key, nonce, counter).
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// A ChaCha20 keystream generator.
///
/// Produces an effectively unbounded byte stream deterministically derived
/// from a 32-byte key and 12-byte nonce.  The 32-bit block counter rolls over
/// into the first nonce word, giving a 2^70-byte period — far beyond anything
/// a Dissent session produces.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u64,
    buffer: [u8; BLOCK_LEN],
    buffer_pos: usize,
}

impl ChaCha20 {
    /// Create a keystream for the given key and nonce, starting at block 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        ChaCha20 {
            key: *key,
            nonce: *nonce,
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            buffer_pos: BLOCK_LEN,
        }
    }

    /// Compute the keystream block at the current counter and advance it,
    /// without touching the partial-block buffer.
    fn next_block(&mut self) -> [u8; BLOCK_LEN] {
        // Fold counter bits above 32 into the first nonce word so long
        // streams do not repeat.
        let mut nonce = self.nonce;
        let hi = (self.counter >> 32) as u32;
        if hi != 0 {
            let base = u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]);
            nonce[0..4].copy_from_slice(&(base ^ hi).to_le_bytes());
        }
        let block = chacha20_block(&self.key, &nonce, self.counter as u32);
        self.counter = self.counter.wrapping_add(1);
        block
    }

    fn refill(&mut self) {
        self.buffer = self.next_block();
        self.buffer_pos = 0;
    }

    /// Reposition the stream at the start of keystream block `block`.
    ///
    /// ChaCha20 is random-access by construction — every 64-byte block is an
    /// independent function of (key, nonce, counter) — so seeking costs
    /// nothing and the next byte produced is byte `64 * block` of the
    /// stream.  This is what makes single-bit pad reveals in the accusation
    /// process O(1) instead of O(stream position).
    pub fn seek_to_block(&mut self, block: u64) {
        self.counter = block;
        self.buffer_pos = BLOCK_LEN;
    }

    /// Reposition the stream at byte offset `pos` (any alignment).
    pub fn seek(&mut self, pos: u64) {
        self.seek_to_block(pos / BLOCK_LEN as u64);
        let rem = (pos % BLOCK_LEN as u64) as usize;
        if rem != 0 {
            self.refill();
            self.buffer_pos = rem;
        }
    }

    /// Fill `out` with keystream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.buffer_pos == BLOCK_LEN {
                self.refill();
            }
            let take = (BLOCK_LEN - self.buffer_pos).min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
            self.buffer_pos += take;
            written += take;
        }
    }

    /// Produce `len` keystream bytes.
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }

    /// XOR the keystream into `data` in place (encryption == decryption).
    ///
    /// Equivalent to XORing [`Self::keystream`]`(data.len())` into `data`,
    /// but fused: whole blocks are XORed word-wise straight from the block
    /// function into `data` with no intermediate keystream allocation or
    /// copy.  This is the engine under the DC-net pad accumulators, where it
    /// runs over clients × cleartext-length bytes per round.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut pos = 0;
        // Drain any partial block buffered by a previous unaligned read.
        if self.buffer_pos < BLOCK_LEN {
            let take = (BLOCK_LEN - self.buffer_pos).min(data.len());
            crate::xor::xor_into(
                &mut data[..take],
                &self.buffer[self.buffer_pos..self.buffer_pos + take],
            );
            self.buffer_pos += take;
            pos = take;
        }
        // Full blocks stream directly from the block function.
        while data.len() - pos >= BLOCK_LEN {
            let block = self.next_block();
            crate::xor::xor_into(&mut data[pos..pos + BLOCK_LEN], &block);
            pos += BLOCK_LEN;
        }
        // Tail: buffer one block and remember the leftover for next time.
        if pos < data.len() {
            self.refill();
            let take = data.len() - pos;
            crate::xor::xor_into(&mut data[pos..], &self.buffer[..take]);
            self.buffer_pos = take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, &nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: "Ladies and Gentlemen..." with counter starting at 1.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut cipher = ChaCha20::new(&key, &nonce);
        // Skip block 0 to start the keystream at counter 1, as in the RFC.
        cipher.keystream(64);
        let mut data = plaintext.to_vec();
        cipher.apply(&mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        assert_eq!(hex(&data[112..114]), "874d");
    }

    #[test]
    fn keystream_is_deterministic_and_seekless_chunks_agree() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut a = ChaCha20::new(&key, &nonce);
        let mut b = ChaCha20::new(&key, &nonce);
        let whole = a.keystream(1000);
        let mut pieces = Vec::new();
        for chunk in [1usize, 63, 64, 65, 100, 707] {
            pieces.extend(b.keystream(chunk));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn rfc8439_seek_vector() {
        // Seeking to block 1 must reproduce the RFC 8439 §2.3.2 block
        // exactly, with no dependence on how much stream was read before.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let expected = "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e";
        // Fresh stream, direct seek.
        let mut a = ChaCha20::new(&key, &nonce);
        a.seek_to_block(1);
        assert_eq!(hex(&a.keystream(64)), expected);
        // Stream mid-way through an unrelated position, then seek back.
        let mut b = ChaCha20::new(&key, &nonce);
        b.keystream(1000);
        b.seek_to_block(1);
        assert_eq!(hex(&b.keystream(64)), expected);
    }

    #[test]
    fn seek_matches_sequential_stream_at_every_offset() {
        let key = [5u8; 32];
        let nonce = [8u8; 12];
        let whole = ChaCha20::new(&key, &nonce).keystream(4 * BLOCK_LEN);
        // Byte offsets straddling block boundaries (63/64/65, 127/128/129).
        for pos in [0usize, 1, 63, 64, 65, 100, 127, 128, 129, 191] {
            let mut s = ChaCha20::new(&key, &nonce);
            s.seek(pos as u64);
            assert_eq!(s.keystream(8), whole[pos..pos + 8], "offset {pos}");
        }
    }

    #[test]
    fn fused_apply_equals_keystream_xor_across_chunkings() {
        let key = [11u8; 32];
        let nonce = [2u8; 12];
        let msg: Vec<u8> = (0..500).map(|i| (i * 37) as u8).collect();
        let ks = ChaCha20::new(&key, &nonce).keystream(msg.len());
        let expected: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        // Apply in irregular chunks so every partial-buffer path is hit.
        let mut data = msg.clone();
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut start = 0;
        for chunk in [1usize, 63, 64, 65, 7, 300] {
            let end = (start + chunk).min(data.len());
            cipher.apply(&mut data[start..end]);
            start = end;
        }
        assert_eq!(data, expected);
    }

    #[test]
    fn apply_round_trips() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let msg = b"attack at dawn".to_vec();
        let mut data = msg.clone();
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_ne!(data, msg);
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let nonce = [0u8; 12];
        let a = ChaCha20::new(&[1u8; 32], &nonce).keystream(64);
        let b = ChaCha20::new(&[2u8; 32], &nonce).keystream(64);
        assert_ne!(a, b);
    }
}
