//! ChaCha20 stream cipher (RFC 8439), with a multi-block fast path.
//!
//! Dissent's DC-net pads (`PRNG(K_ij)` in Algorithms 1 and 2) and the
//! OAEP-style message padding both require a fast, deterministic,
//! cryptographically strong pseudo-random keystream derived from a shared
//! secret.  The paper's prototype used CryptoPP's stream ciphers; here we
//! implement ChaCha20 from scratch.
//!
//! The block function is the floor of the whole DC-net data path (a server
//! expands N clients × L bytes of pad per round), so alongside the scalar
//! [`chacha20_block`] the module provides multi-block strides:
//! [`chacha20_blocks4`] (four consecutive blocks, 256 B) and
//! [`chacha20_blocks8`] (eight consecutive blocks, 512 B), each backed by a
//! portable interleaved kernel (independent lanes expose instruction-level
//! parallelism) and by SSE2/AVX2/AVX-512 kernels selected once at runtime
//! via `is_x86_feature_detected!` and cached.  Every stride also exists in a
//! *fused* form ([`chacha20_blocks4_xor`], [`chacha20_blocks8_xor`]) that
//! XORs the keystream words into the destination right at the
//! add-and-serialize step of the kernel — so [`ChaCha20::apply`] (and with
//! it every DC-net pad fold) never round-trips keystream through a
//! temporary buffer.  [`ChaCha20::fill`] and [`ChaCha20::apply`] consume
//! whole 8-block then 4-block strides and fall back to the scalar block for
//! heads and tails, so `seek`/byte-level semantics are exactly those of the
//! scalar stream — proven byte-identical in
//! `tests/proptest_chacha_wide.rs`.
//!
//! Setting `DISSENT_CHACHA_FORCE_SCALAR=1` in the environment pins the
//! dispatcher to the portable kernel (read once, at first use); CI runs a
//! lane with it set so the fallback stays covered on every push.
//! `DISSENT_CHACHA_FORCE_BACKEND=portable|sse2|avx2|avx512` pins a specific
//! kernel instead (falling back to portable, with a warning on stderr, if
//! the hardware lacks the requested feature); the bench runner uses it to
//! measure every backend the host supports.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;
/// Block size in bytes.
pub const BLOCK_LEN: usize = 64;
/// Blocks per wide stride ([`chacha20_blocks4`]).
pub const WIDE_BLOCKS: usize = 4;
/// Bytes per wide stride (256).
pub const WIDE_LEN: usize = WIDE_BLOCKS * BLOCK_LEN;
/// Blocks per extra-wide stride ([`chacha20_blocks8`]).
pub const WIDE8_BLOCKS: usize = 8;
/// Bytes per extra-wide stride (512).
pub const WIDE8_LEN: usize = WIDE8_BLOCKS * BLOCK_LEN;

/// The four "expand 32-byte k" constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The RFC 8439 initial state for (key, nonce, counter).
#[inline(always)]
fn initial_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// Compute one 64-byte ChaCha20 block for (key, nonce, counter).
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
) -> [u8; BLOCK_LEN] {
    let state = initial_state(key, nonce, counter);
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Portable 4-way interleaved kernel: blocks `counter .. counter+3` (u32
/// wrapping, as in the RFC) written to `out` in order.
///
/// The four lane states are independent, so stepping every lane through
/// each quarter-round position in lockstep exposes 4-wide instruction-level
/// parallelism to the scalar pipeline (and lets the compiler auto-vectorize
/// where it can).  This is the dispatch fallback and the oracle-adjacent
/// reference the SIMD kernels are tested against.
pub fn chacha20_blocks4_portable(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    out: &mut [u8; WIDE_LEN],
) {
    blocks_portable::<WIDE_BLOCKS, false>(key, nonce, counter, out);
}

/// Portable 8-way interleaved kernel: blocks `counter .. counter+7` (u32
/// wrapping) written to `out` in order.  Twice the lane count of
/// [`chacha20_blocks4_portable`]; same lockstep structure.
pub fn chacha20_blocks8_portable(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    out: &mut [u8; WIDE8_LEN],
) {
    blocks_portable::<WIDE8_BLOCKS, false>(key, nonce, counter, out);
}

/// Fused portable 8-way kernel: the keystream for blocks
/// `counter .. counter+7` is XORed into `data` word-by-word at the final
/// add-and-serialize step — no intermediate keystream buffer exists.
pub fn chacha20_blocks8_xor_portable(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    data: &mut [u8; WIDE8_LEN],
) {
    blocks_portable::<WIDE8_BLOCKS, true>(key, nonce, counter, data);
}

/// Shared body of the portable interleaved kernels: `LANES` independent
/// block states stepped through every quarter-round position in lockstep.
/// With `XOR` the serialization step folds each keystream word into the
/// destination instead of overwriting it (the fused form).
fn blocks_portable<const LANES: usize, const XOR: bool>(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), LANES * BLOCK_LEN);
    let base = initial_state(key, nonce, counter);
    let mut init = [base; LANES];
    for (lane, state) in init.iter_mut().enumerate() {
        state[12] = counter.wrapping_add(lane as u32);
    }
    let mut lanes = init;
    for _ in 0..10 {
        for s in lanes.iter_mut() {
            quarter_round(s, 0, 4, 8, 12);
            quarter_round(s, 1, 5, 9, 13);
            quarter_round(s, 2, 6, 10, 14);
            quarter_round(s, 3, 7, 11, 15);
            quarter_round(s, 0, 5, 10, 15);
            quarter_round(s, 1, 6, 11, 12);
            quarter_round(s, 2, 7, 8, 13);
            quarter_round(s, 3, 4, 9, 14);
        }
    }
    for lane in 0..LANES {
        let off = lane * BLOCK_LEN;
        for i in 0..16 {
            let mut word = lanes[lane][i].wrapping_add(init[lane][i]);
            if XOR {
                let dst: [u8; 4] = out[off + i * 4..off + i * 4 + 4]
                    .try_into()
                    .expect("4-byte word");
                word ^= u32::from_le_bytes(dst);
            }
            out[off + i * 4..off + i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
    }
}

#[cfg(target_arch = "x86_64")]
// The crate denies `unsafe_code`; these kernels are the sanctioned
// exception — every unsafe surface is a `core::arch` intrinsic behind a
// `#[target_feature]` gate whose availability the dispatcher proves with
// `is_x86_feature_detected!`, and every store stays inside `out`'s bounds.
#[allow(unsafe_code)]
mod x86 {
    //! SSE2/AVX2 ChaCha20 kernels in row form.
    //!
    //! A block's state is held as four row vectors `a b c d` (constants,
    //! key low, key high, counter‖nonce).  A double round is the
    //! element-wise quarter-round over the columns, a per-lane rotation of
    //! rows 1–3 to bring the diagonals into column position, the same
    //! quarter-round again, and the inverse rotation.  The SSE2 kernel runs
    //! four blocks' register sets in lockstep for ILP; the AVX2 kernel
    //! packs two blocks per 256-bit register (one per 128-bit lane — all
    //! shuffles used here operate lane-wise, so block lanes never mix) and
    //! runs two such pairs in lockstep; the AVX-512 kernel packs four
    //! blocks per 512-bit register (again one per 128-bit lane, rotating
    //! diagonals with `vpermd` index vectors and using the native
    //! `vprold` 32-bit rotate) and runs two such quads in lockstep for the
    //! full 8-block stride.
    //!
    //! Every kernel is generic over `XOR`: with it set, the final
    //! add-and-serialize step loads the destination, XORs the keystream
    //! words in registers, and stores the result — the fused form that
    //! [`super::chacha20_blocks4_xor`] / [`super::chacha20_blocks8_xor`]
    //! dispatch to, eliminating the keystream temp buffer from
    //! `ChaCha20::apply`.

    use super::{BLOCK_LEN, KEY_LEN, NONCE_LEN, SIGMA, WIDE8_LEN, WIDE_LEN};
    use core::arch::x86_64::*;

    /// Rotate each 32-bit element left by `$n` (SSE2).
    macro_rules! rotl_128 {
        ($x:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
        };
    }

    /// Rotate each 32-bit element left by `$n` (AVX2 shift form, for the
    /// 12- and 7-bit rotations that have no byte-shuffle equivalent).
    macro_rules! rotl_256 {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($x, $n), _mm256_srli_epi32($x, 32 - $n))
        };
    }

    /// One SSE2 quarter-round step over the row sets of all four blocks.
    macro_rules! qround_128 {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            for j in 0..4 {
                $a[j] = _mm_add_epi32($a[j], $b[j]);
                $d[j] = _mm_xor_si128($d[j], $a[j]);
                $d[j] = rotl_128!($d[j], 16);
                $c[j] = _mm_add_epi32($c[j], $d[j]);
                $b[j] = _mm_xor_si128($b[j], $c[j]);
                $b[j] = rotl_128!($b[j], 12);
                $a[j] = _mm_add_epi32($a[j], $b[j]);
                $d[j] = _mm_xor_si128($d[j], $a[j]);
                $d[j] = rotl_128!($d[j], 8);
                $c[j] = _mm_add_epi32($c[j], $d[j]);
                $b[j] = _mm_xor_si128($b[j], $c[j]);
                $b[j] = rotl_128!($b[j], 7);
            }
        };
    }

    /// Blocks `counter .. counter+3` via four lockstep SSE2 register sets.
    ///
    /// # Safety
    /// Requires SSE2 (guaranteed on x86_64, but the caller dispatches via
    /// `is_x86_feature_detected!` anyway).
    #[target_feature(enable = "sse2")]
    pub unsafe fn blocks4_sse2(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE_LEN],
    ) {
        blocks4_sse2_x::<false>(key, nonce, counter, out)
    }

    /// Blocks `counter .. counter+7` as two consecutive SSE2 4-block
    /// strides (the register file is already saturated at four lockstep
    /// sets, so wider lockstep would only spill).
    ///
    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn blocks8_sse2<const XOR: bool>(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE8_LEN],
    ) {
        let (lo, hi) = out.split_at_mut(WIDE_LEN);
        blocks4_sse2_x::<XOR>(key, nonce, counter, lo.try_into().expect("256 B half"));
        blocks4_sse2_x::<XOR>(
            key,
            nonce,
            counter.wrapping_add(4),
            hi.try_into().expect("256 B half"),
        );
    }

    /// [`blocks4_sse2`] body, generic over fused-XOR serialization.
    ///
    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn blocks4_sse2_x<const XOR: bool>(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE_LEN],
    ) {
        let a0 = _mm_loadu_si128(SIGMA.as_ptr() as *const __m128i);
        let b0 = _mm_loadu_si128(key.as_ptr() as *const __m128i);
        let c0 = _mm_loadu_si128(key.as_ptr().add(16) as *const __m128i);
        let n = [
            u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]),
            u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]),
            u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]),
        ];
        let mut d0 = [_mm_setzero_si128(); 4];
        for (j, d) in d0.iter_mut().enumerate() {
            *d = _mm_set_epi32(
                n[2] as i32,
                n[1] as i32,
                n[0] as i32,
                counter.wrapping_add(j as u32) as i32,
            );
        }
        let mut a = [a0; 4];
        let mut b = [b0; 4];
        let mut c = [c0; 4];
        let mut d = d0;
        for _ in 0..10 {
            // Column round.
            qround_128!(a, b, c, d);
            // Diagonalize: rotate rows 1..3 left by 1, 2, 3 elements.
            for j in 0..4 {
                b[j] = _mm_shuffle_epi32(b[j], 0x39);
                c[j] = _mm_shuffle_epi32(c[j], 0x4E);
                d[j] = _mm_shuffle_epi32(d[j], 0x93);
            }
            // Diagonal round.
            qround_128!(a, b, c, d);
            // Undo the rotation.
            for j in 0..4 {
                b[j] = _mm_shuffle_epi32(b[j], 0x93);
                c[j] = _mm_shuffle_epi32(c[j], 0x4E);
                d[j] = _mm_shuffle_epi32(d[j], 0x39);
            }
        }
        for j in 0..4 {
            let base = out.as_mut_ptr().add(j * BLOCK_LEN) as *mut __m128i;
            let mut fa = _mm_add_epi32(a[j], a0);
            let mut fb = _mm_add_epi32(b[j], b0);
            let mut fc = _mm_add_epi32(c[j], c0);
            let mut fd = _mm_add_epi32(d[j], d0[j]);
            if XOR {
                fa = _mm_xor_si128(fa, _mm_loadu_si128(base));
                fb = _mm_xor_si128(fb, _mm_loadu_si128(base.add(1)));
                fc = _mm_xor_si128(fc, _mm_loadu_si128(base.add(2)));
                fd = _mm_xor_si128(fd, _mm_loadu_si128(base.add(3)));
            }
            _mm_storeu_si128(base, fa);
            _mm_storeu_si128(base.add(1), fb);
            _mm_storeu_si128(base.add(2), fc);
            _mm_storeu_si128(base.add(3), fd);
        }
    }

    /// One AVX2 quarter-round step over both two-block register sets.
    /// Byte-granular rotations (16, 8) use `vpshufb`.
    macro_rules! qround_256 {
        ($a:ident, $b:ident, $c:ident, $d:ident, $rot16:ident, $rot8:ident) => {
            for j in 0..2 {
                $a[j] = _mm256_add_epi32($a[j], $b[j]);
                $d[j] = _mm256_xor_si256($d[j], $a[j]);
                $d[j] = _mm256_shuffle_epi8($d[j], $rot16);
                $c[j] = _mm256_add_epi32($c[j], $d[j]);
                $b[j] = _mm256_xor_si256($b[j], $c[j]);
                $b[j] = rotl_256!($b[j], 12);
                $a[j] = _mm256_add_epi32($a[j], $b[j]);
                $d[j] = _mm256_xor_si256($d[j], $a[j]);
                $d[j] = _mm256_shuffle_epi8($d[j], $rot8);
                $c[j] = _mm256_add_epi32($c[j], $d[j]);
                $b[j] = _mm256_xor_si256($b[j], $c[j]);
                $b[j] = rotl_256!($b[j], 7);
            }
        };
    }

    /// Blocks `counter .. counter+3` via two lockstep AVX2 register sets,
    /// each packing two blocks (one per 128-bit lane).
    ///
    /// # Safety
    /// Requires AVX2; callers must check `is_x86_feature_detected!("avx2")`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks4_avx2(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE_LEN],
    ) {
        blocks4_avx2_x::<false>(key, nonce, counter, out)
    }

    /// Blocks `counter .. counter+7` as the AVX2 double stride: two
    /// back-to-back 4-block kernels (two two-block register sets each).
    /// Four lockstep two-block sets in one kernel would need 16 row
    /// registers plus rotation tables and spill, so the double stride is
    /// the sweet spot below AVX-512.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks8_avx2<const XOR: bool>(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE8_LEN],
    ) {
        let (lo, hi) = out.split_at_mut(WIDE_LEN);
        blocks4_avx2_x::<XOR>(key, nonce, counter, lo.try_into().expect("256 B half"));
        blocks4_avx2_x::<XOR>(
            key,
            nonce,
            counter.wrapping_add(4),
            hi.try_into().expect("256 B half"),
        );
    }

    /// [`blocks4_avx2`] body, generic over fused-XOR serialization.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks4_avx2_x<const XOR: bool>(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE_LEN],
    ) {
        // Per-lane byte shuffles implementing 32-bit rotate-left by 16 / 8.
        #[rustfmt::skip]
        let rot16 = _mm256_setr_epi8(
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
        );
        #[rustfmt::skip]
        let rot8 = _mm256_setr_epi8(
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
        );
        let a0 = _mm256_broadcastsi128_si256(_mm_loadu_si128(SIGMA.as_ptr() as *const __m128i));
        let b0 = _mm256_broadcastsi128_si256(_mm_loadu_si128(key.as_ptr() as *const __m128i));
        let c0 =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(key.as_ptr().add(16) as *const __m128i));
        let n = [
            u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]) as i32,
            u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]) as i32,
            u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]) as i32,
        ];
        // d rows: low lane = block j, high lane = block j+1.
        let mut d0 = [_mm256_setzero_si256(); 2];
        for (j, d) in d0.iter_mut().enumerate() {
            *d = _mm256_setr_epi32(
                counter.wrapping_add(2 * j as u32) as i32,
                n[0],
                n[1],
                n[2],
                counter.wrapping_add(2 * j as u32 + 1) as i32,
                n[0],
                n[1],
                n[2],
            );
        }
        let mut a = [a0; 2];
        let mut b = [b0; 2];
        let mut c = [c0; 2];
        let mut d = d0;
        for _ in 0..10 {
            qround_256!(a, b, c, d, rot16, rot8);
            for j in 0..2 {
                // `vpshufd` rotates within each 128-bit lane, so both packed
                // blocks diagonalize independently.
                b[j] = _mm256_shuffle_epi32(b[j], 0x39);
                c[j] = _mm256_shuffle_epi32(c[j], 0x4E);
                d[j] = _mm256_shuffle_epi32(d[j], 0x93);
            }
            qround_256!(a, b, c, d, rot16, rot8);
            for j in 0..2 {
                b[j] = _mm256_shuffle_epi32(b[j], 0x93);
                c[j] = _mm256_shuffle_epi32(c[j], 0x4E);
                d[j] = _mm256_shuffle_epi32(d[j], 0x39);
            }
        }
        for j in 0..2 {
            let fa = _mm256_add_epi32(a[j], a0);
            let fb = _mm256_add_epi32(b[j], b0);
            let fc = _mm256_add_epi32(c[j], c0);
            let fd = _mm256_add_epi32(d[j], d0[j]);
            let base = out.as_mut_ptr().add(j * 2 * BLOCK_LEN);
            // Un-pack the two lane-blocks: rows of the low-lane block, then
            // rows of the high-lane block.  The fused form stays in ymm
            // registers: each pair of 64-byte blocks is re-packed row-wise,
            // XORed against two 256-bit destination loads, and stored.
            let rows = [fa, fb, fc, fd];
            for (r, row) in rows.iter().enumerate() {
                let mut lo = _mm256_castsi256_si128(*row);
                let mut hi = _mm256_extracti128_si256(*row, 1);
                let plo = base.add(16 * r) as *mut __m128i;
                let phi = base.add(BLOCK_LEN + 16 * r) as *mut __m128i;
                if XOR {
                    lo = _mm_xor_si128(lo, _mm_loadu_si128(plo));
                    hi = _mm_xor_si128(hi, _mm_loadu_si128(phi));
                }
                _mm_storeu_si128(plo, lo);
                _mm_storeu_si128(phi, hi);
            }
        }
    }

    /// One AVX-512 quarter-round step over both four-block register sets.
    /// All four rotation amounts use the native `vprold` rotate.
    macro_rules! qround_512 {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            for j in 0..2 {
                $a[j] = _mm512_add_epi32($a[j], $b[j]);
                $d[j] = _mm512_xor_si512($d[j], $a[j]);
                $d[j] = _mm512_rol_epi32::<16>($d[j]);
                $c[j] = _mm512_add_epi32($c[j], $d[j]);
                $b[j] = _mm512_xor_si512($b[j], $c[j]);
                $b[j] = _mm512_rol_epi32::<12>($b[j]);
                $a[j] = _mm512_add_epi32($a[j], $b[j]);
                $d[j] = _mm512_xor_si512($d[j], $a[j]);
                $d[j] = _mm512_rol_epi32::<8>($d[j]);
                $c[j] = _mm512_add_epi32($c[j], $d[j]);
                $b[j] = _mm512_xor_si512($b[j], $c[j]);
                $b[j] = _mm512_rol_epi32::<7>($b[j]);
            }
        };
    }

    /// Serialize one 128-bit lane (= one block's four rows) of a finished
    /// register set, optionally fusing the XOR against the destination.
    macro_rules! flush_lane_512 {
        ($out:ident, $xor:expr, $block:expr, $k:literal,
         $fa:ident, $fb:ident, $fc:ident, $fd:ident) => {{
            let base = $out.as_mut_ptr().add($block * BLOCK_LEN) as *mut __m128i;
            let mut r0 = _mm512_extracti32x4_epi32::<$k>($fa);
            let mut r1 = _mm512_extracti32x4_epi32::<$k>($fb);
            let mut r2 = _mm512_extracti32x4_epi32::<$k>($fc);
            let mut r3 = _mm512_extracti32x4_epi32::<$k>($fd);
            if $xor {
                r0 = _mm_xor_si128(r0, _mm_loadu_si128(base));
                r1 = _mm_xor_si128(r1, _mm_loadu_si128(base.add(1)));
                r2 = _mm_xor_si128(r2, _mm_loadu_si128(base.add(2)));
                r3 = _mm_xor_si128(r3, _mm_loadu_si128(base.add(3)));
            }
            _mm_storeu_si128(base, r0);
            _mm_storeu_si128(base.add(1), r1);
            _mm_storeu_si128(base.add(2), r2);
            _mm_storeu_si128(base.add(3), r3);
        }};
    }

    /// Blocks `counter .. counter+7` via two lockstep AVX-512 register
    /// sets, each packing four blocks (one per 128-bit lane).
    ///
    /// # Safety
    /// Requires AVX-512F; callers must check
    /// `is_x86_feature_detected!("avx512f")`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn blocks8_avx512<const XOR: bool>(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
        out: &mut [u8; WIDE8_LEN],
    ) {
        // Per-128-bit-lane element rotation index vectors for the
        // diagonalization step: `rotl1[i]` maps element `i` to the element
        // one position left within its lane (the `vpshufd 0x39`
        // equivalent), `rotl2` two positions (`0x4E`), `rotl3` three
        // (`0x93`).  Expressed as `vpermd` index vectors because
        // `_mm512_shuffle_epi32` takes a `_MM_PERM_ENUM` immediate that
        // cannot be built from a const-generic rotation count.
        #[rustfmt::skip]
        let rotl1 = _mm512_setr_epi32(1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12);
        #[rustfmt::skip]
        let rotl2 = _mm512_setr_epi32(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
        #[rustfmt::skip]
        let rotl3 = _mm512_setr_epi32(3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
        let a0 = _mm512_broadcast_i32x4(_mm_loadu_si128(SIGMA.as_ptr() as *const __m128i));
        let b0 = _mm512_broadcast_i32x4(_mm_loadu_si128(key.as_ptr() as *const __m128i));
        let c0 = _mm512_broadcast_i32x4(_mm_loadu_si128(key.as_ptr().add(16) as *const __m128i));
        let n = [
            u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]) as i32,
            u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]) as i32,
            u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]) as i32,
        ];
        let dbase = _mm512_broadcast_i32x4(_mm_set_epi32(n[2], n[1], n[0], counter as i32));
        // Element 0 of each 128-bit lane is that lane-block's counter;
        // 32-bit vector adds wrap exactly like `u32::wrapping_add`.
        #[rustfmt::skip]
        let off0 = _mm512_setr_epi32(0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0);
        #[rustfmt::skip]
        let off1 = _mm512_setr_epi32(4, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0, 0, 7, 0, 0, 0);
        let d0 = [_mm512_add_epi32(dbase, off0), _mm512_add_epi32(dbase, off1)];
        let mut a = [a0; 2];
        let mut b = [b0; 2];
        let mut c = [c0; 2];
        let mut d = d0;
        for _ in 0..10 {
            qround_512!(a, b, c, d);
            for j in 0..2 {
                // `vpermd` with per-lane index vectors: both quads of
                // packed blocks diagonalize independently.
                b[j] = _mm512_permutexvar_epi32(rotl1, b[j]);
                c[j] = _mm512_permutexvar_epi32(rotl2, c[j]);
                d[j] = _mm512_permutexvar_epi32(rotl3, d[j]);
            }
            qround_512!(a, b, c, d);
            for j in 0..2 {
                b[j] = _mm512_permutexvar_epi32(rotl3, b[j]);
                c[j] = _mm512_permutexvar_epi32(rotl2, c[j]);
                d[j] = _mm512_permutexvar_epi32(rotl1, d[j]);
            }
        }
        for j in 0..2 {
            let fa = _mm512_add_epi32(a[j], a0);
            let fb = _mm512_add_epi32(b[j], b0);
            let fc = _mm512_add_epi32(c[j], c0);
            let fd = _mm512_add_epi32(d[j], d0[j]);
            flush_lane_512!(out, XOR, 4 * j, 0, fa, fb, fc, fd);
            flush_lane_512!(out, XOR, 4 * j + 1, 1, fa, fb, fc, fd);
            flush_lane_512!(out, XOR, 4 * j + 2, 2, fa, fb, fc, fd);
            flush_lane_512!(out, XOR, 4 * j + 3, 3, fa, fb, fc, fd);
        }
    }
}

/// Which multi-block kernel the dispatcher selected.
///
/// `Avx512` is only selected when the CPU also has AVX2, because its
/// 4-block stride runs on the AVX2 kernel (a half-width AVX-512 pass would
/// waste the upper lanes for no gain).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WideBackend {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// The fastest backend the hardware supports.
fn detect_backend() -> WideBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") {
            return WideBackend::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return WideBackend::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return WideBackend::Sse2;
        }
    }
    WideBackend::Portable
}

/// Resolve a `DISSENT_CHACHA_FORCE_BACKEND` name, falling back to the
/// portable kernel (with a warning for anything that is not a spelling of
/// it) when the hardware cannot honour the request — a forced backend must
/// never select an undetected feature.
fn forced_backend(name: &str) -> WideBackend {
    let requested = name.to_ascii_lowercase();
    #[cfg(target_arch = "x86_64")]
    match requested.as_str() {
        "avx512" if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") => {
            return WideBackend::Avx512;
        }
        "avx2" if is_x86_feature_detected!("avx2") => return WideBackend::Avx2,
        "sse2" if is_x86_feature_detected!("sse2") => return WideBackend::Sse2,
        _ => {}
    }
    if !matches!(
        requested.as_str(),
        "portable" | "portable4" | "portable8" | "scalar"
    ) {
        eprintln!(
            "DISSENT_CHACHA_FORCE_BACKEND={requested}: not supported on this host, \
             using the portable kernel"
        );
    }
    WideBackend::Portable
}

/// Backend selection: detected once on first use, then cached (an atomic
/// load per stride thereafter).  `DISSENT_CHACHA_FORCE_SCALAR` (any value
/// but `0`) pins the portable kernel and takes precedence;
/// `DISSENT_CHACHA_FORCE_BACKEND=<name>` pins a specific kernel, subject
/// to hardware support.
fn wide_backend() -> WideBackend {
    use std::sync::OnceLock;
    static BACKEND: OnceLock<WideBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if std::env::var_os("DISSENT_CHACHA_FORCE_SCALAR").is_some_and(|v| v != *"0") {
            return WideBackend::Portable;
        }
        match std::env::var("DISSENT_CHACHA_FORCE_BACKEND") {
            Ok(name) if !name.is_empty() => forced_backend(&name),
            _ => detect_backend(),
        }
    })
}

/// Name of the selected multi-block backend (`"avx512"`, `"avx2"`,
/// `"sse2"` or `"portable4"`) — for bench labels and CI logs.
pub fn wide_backend_name() -> &'static str {
    match wide_backend() {
        WideBackend::Portable => "portable4",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => "sse2",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx512 => "avx512",
    }
}

/// Name of the kernel behind the 8-block stride (`"avx512"`, `"avx2x2"`,
/// `"sse2x2"` or `"portable8"`) — the `x2` suffix marks double-stride
/// compositions of the 4-block kernel.
pub fn wide8_backend_name() -> &'static str {
    match wide_backend() {
        WideBackend::Portable => "portable8",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => "sse2x2",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 => "avx2x2",
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx512 => "avx512",
    }
}

/// Compute the four consecutive blocks `counter .. counter+3` (u32
/// wrapping) into `out`, through the runtime-selected kernel.
///
/// Byte-identical to four [`chacha20_block`] calls for every (key, nonce,
/// counter) — the contract the oracle suite in
/// `tests/proptest_chacha_wide.rs` enforces for every backend.
#[allow(unsafe_code)] // see the note on `mod x86`
pub fn chacha20_blocks4(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    out: &mut [u8; WIDE_LEN],
) {
    match wide_backend() {
        WideBackend::Portable => chacha20_blocks4_portable(key, nonce, counter, out),
        // SAFETY: the dispatcher only returns this variant after
        // `is_x86_feature_detected!("sse2")` confirmed the feature.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => unsafe { x86::blocks4_sse2(key, nonce, counter, out) },
        // SAFETY: both variants imply `is_x86_feature_detected!("avx2")`
        // held when the dispatcher chose the backend.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 | WideBackend::Avx512 => unsafe {
            x86::blocks4_avx2(key, nonce, counter, out)
        },
    }
}

/// Fused form of [`chacha20_blocks4`]: XOR the keystream of blocks
/// `counter .. counter+3` into `data` with no intermediate buffer.
#[allow(unsafe_code)] // see the note on `mod x86`
pub fn chacha20_blocks4_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    data: &mut [u8; WIDE_LEN],
) {
    match wide_backend() {
        WideBackend::Portable => blocks_portable::<WIDE_BLOCKS, true>(key, nonce, counter, data),
        // SAFETY: SSE2 availability proven by the dispatcher's
        // `is_x86_feature_detected!` probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => unsafe { x86::blocks4_sse2_x::<true>(key, nonce, counter, data) },
        // SAFETY: both variants imply the dispatcher's AVX2 probe held.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 | WideBackend::Avx512 => unsafe {
            x86::blocks4_avx2_x::<true>(key, nonce, counter, data)
        },
    }
}

/// Compute the eight consecutive blocks `counter .. counter+7` (u32
/// wrapping) into `out`, through the runtime-selected kernel.
///
/// Byte-identical to eight [`chacha20_block`] calls for every (key, nonce,
/// counter), for every backend — same oracle contract as
/// [`chacha20_blocks4`].
#[allow(unsafe_code)] // see the note on `mod x86`
pub fn chacha20_blocks8(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    out: &mut [u8; WIDE8_LEN],
) {
    match wide_backend() {
        WideBackend::Portable => chacha20_blocks8_portable(key, nonce, counter, out),
        // SAFETY: SSE2 availability proven by the dispatcher's
        // `is_x86_feature_detected!` probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => unsafe { x86::blocks8_sse2::<false>(key, nonce, counter, out) },
        // SAFETY: AVX2 availability proven by the dispatcher's probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 => unsafe { x86::blocks8_avx2::<false>(key, nonce, counter, out) },
        // SAFETY: AVX-512F availability proven by the dispatcher's probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx512 => unsafe { x86::blocks8_avx512::<false>(key, nonce, counter, out) },
    }
}

/// Fused form of [`chacha20_blocks8`]: XOR the keystream of blocks
/// `counter .. counter+7` into `data` with no intermediate buffer — the
/// engine under [`ChaCha20::apply`] and every DC-net pad fold.
#[allow(unsafe_code)] // see the note on `mod x86`
pub fn chacha20_blocks8_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
    data: &mut [u8; WIDE8_LEN],
) {
    match wide_backend() {
        WideBackend::Portable => chacha20_blocks8_xor_portable(key, nonce, counter, data),
        // SAFETY: SSE2 availability proven by the dispatcher's
        // `is_x86_feature_detected!` probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Sse2 => unsafe { x86::blocks8_sse2::<true>(key, nonce, counter, data) },
        // SAFETY: AVX2 availability proven by the dispatcher's probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx2 => unsafe { x86::blocks8_avx2::<true>(key, nonce, counter, data) },
        // SAFETY: AVX-512F availability proven by the dispatcher's probe.
        #[cfg(target_arch = "x86_64")]
        WideBackend::Avx512 => unsafe { x86::blocks8_avx512::<true>(key, nonce, counter, data) },
    }
}

/// A ChaCha20 keystream generator.
///
/// Produces an effectively unbounded byte stream deterministically derived
/// from a 32-byte key and 12-byte nonce.  The 32-bit block counter rolls over
/// into the first nonce word, giving a 2^70-byte period — far beyond anything
/// a Dissent session produces.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u64,
    buffer: [u8; BLOCK_LEN],
    buffer_pos: usize,
}

impl ChaCha20 {
    /// Create a keystream for the given key and nonce, starting at block 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        ChaCha20 {
            key: *key,
            nonce: *nonce,
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            buffer_pos: BLOCK_LEN,
        }
    }

    /// The nonce with the counter bits above 32 folded into its first word,
    /// so long streams do not repeat (2^70-byte period).
    fn effective_nonce(&self) -> [u8; NONCE_LEN] {
        let mut nonce = self.nonce;
        let hi = (self.counter >> 32) as u32;
        if hi != 0 {
            let base = u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]);
            nonce[0..4].copy_from_slice(&(base ^ hi).to_le_bytes());
        }
        nonce
    }

    /// Compute the keystream block at the current counter and advance it,
    /// without touching the partial-block buffer.
    fn next_block(&mut self) -> [u8; BLOCK_LEN] {
        let block = chacha20_block(&self.key, &self.effective_nonce(), self.counter as u32);
        self.counter = self.counter.wrapping_add(1);
        block
    }

    /// Whether the next [`WIDE_BLOCKS`] blocks share one effective nonce —
    /// i.e. the 32-bit counter does not roll over into the nonce fold
    /// inside the stride.  False once per 2^32 blocks (256 GiB); the scalar
    /// path carries the stream across the boundary.
    fn wide_stride_ok(&self) -> bool {
        self.counter >> 32 == self.counter.wrapping_add(WIDE_BLOCKS as u64 - 1) >> 32
    }

    /// Same guard for the 8-block stride.
    fn wide8_stride_ok(&self) -> bool {
        self.counter >> 32 == self.counter.wrapping_add(WIDE8_BLOCKS as u64 - 1) >> 32
    }

    fn refill(&mut self) {
        self.buffer = self.next_block();
        self.buffer_pos = 0;
    }

    /// Reposition the stream at the start of keystream block `block`.
    ///
    /// ChaCha20 is random-access by construction — every 64-byte block is an
    /// independent function of (key, nonce, counter) — so seeking costs
    /// nothing and the next byte produced is byte `64 * block` of the
    /// stream.  This is what makes single-bit pad reveals in the accusation
    /// process O(1) instead of O(stream position).
    pub fn seek_to_block(&mut self, block: u64) {
        self.counter = block;
        self.buffer_pos = BLOCK_LEN;
    }

    /// Reposition the stream at byte offset `pos` (any alignment).
    pub fn seek(&mut self, pos: u64) {
        self.seek_to_block(pos / BLOCK_LEN as u64);
        let rem = (pos % BLOCK_LEN as u64) as usize;
        if rem != 0 {
            self.refill();
            self.buffer_pos = rem;
        }
    }

    /// Fill `out` with keystream bytes.
    ///
    /// Whole 8-block (512 B) strides stream through [`chacha20_blocks8`]
    /// and 4-block (256 B) strides through [`chacha20_blocks4`]; the
    /// partial-block head left by an unaligned [`Self::seek`] (or a
    /// previous short read) is always drained from the buffer *before* the
    /// wide loops, and the tail falls back to the scalar block, so chunking
    /// never changes the byte stream.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut written = 0;
        // Drain any buffered partial block first.
        if self.buffer_pos < BLOCK_LEN {
            let take = (BLOCK_LEN - self.buffer_pos).min(out.len());
            out[..take].copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
            self.buffer_pos += take;
            written = take;
        }
        // Extra-wide strides straight into the output.
        while out.len() - written >= WIDE8_LEN && self.wide8_stride_ok() {
            let chunk: &mut [u8; WIDE8_LEN] = (&mut out[written..written + WIDE8_LEN])
                .try_into()
                .expect("stride is WIDE8_LEN bytes");
            chacha20_blocks8(
                &self.key,
                &self.effective_nonce(),
                self.counter as u32,
                chunk,
            );
            self.counter = self.counter.wrapping_add(WIDE8_BLOCKS as u64);
            written += WIDE8_LEN;
        }
        // Wide strides straight into the output.
        while out.len() - written >= WIDE_LEN && self.wide_stride_ok() {
            let chunk: &mut [u8; WIDE_LEN] = (&mut out[written..written + WIDE_LEN])
                .try_into()
                .expect("stride is WIDE_LEN bytes");
            chacha20_blocks4(
                &self.key,
                &self.effective_nonce(),
                self.counter as u32,
                chunk,
            );
            self.counter = self.counter.wrapping_add(WIDE_BLOCKS as u64);
            written += WIDE_LEN;
        }
        // Scalar head/tail through the block buffer.
        while written < out.len() {
            if self.buffer_pos == BLOCK_LEN {
                self.refill();
            }
            let take = (BLOCK_LEN - self.buffer_pos).min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
            self.buffer_pos += take;
            written += take;
        }
    }

    /// Produce `len` keystream bytes.
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }

    /// XOR the keystream into `data` in place (encryption == decryption).
    ///
    /// Equivalent to XORing [`Self::keystream`]`(data.len())` into `data`,
    /// but fused end to end: whole 8- and 4-block strides go through
    /// [`chacha20_blocks8_xor`] / [`chacha20_blocks4_xor`], whose kernels
    /// XOR the keystream words against the destination in SIMD registers —
    /// the keystream for a stride never exists in memory at all.  This is
    /// the engine under the DC-net pad accumulators, where it runs over
    /// clients × cleartext-length bytes per round.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut pos = 0;
        // Drain any partial block buffered by a previous unaligned read.
        if self.buffer_pos < BLOCK_LEN {
            let take = (BLOCK_LEN - self.buffer_pos).min(data.len());
            crate::xor::xor_into(
                &mut data[..take],
                &self.buffer[self.buffer_pos..self.buffer_pos + take],
            );
            self.buffer_pos += take;
            pos = take;
        }
        // Extra-wide strides: 512 B of keystream folded straight into the
        // destination by the fused kernel.
        while data.len() - pos >= WIDE8_LEN && self.wide8_stride_ok() {
            let chunk: &mut [u8; WIDE8_LEN] = (&mut data[pos..pos + WIDE8_LEN])
                .try_into()
                .expect("stride is WIDE8_LEN bytes");
            chacha20_blocks8_xor(
                &self.key,
                &self.effective_nonce(),
                self.counter as u32,
                chunk,
            );
            self.counter = self.counter.wrapping_add(WIDE8_BLOCKS as u64);
            pos += WIDE8_LEN;
        }
        // Wide strides: 256 B at a time through the fused 4-block kernel.
        while data.len() - pos >= WIDE_LEN && self.wide_stride_ok() {
            let chunk: &mut [u8; WIDE_LEN] = (&mut data[pos..pos + WIDE_LEN])
                .try_into()
                .expect("stride is WIDE_LEN bytes");
            chacha20_blocks4_xor(
                &self.key,
                &self.effective_nonce(),
                self.counter as u32,
                chunk,
            );
            self.counter = self.counter.wrapping_add(WIDE_BLOCKS as u64);
            pos += WIDE_LEN;
        }
        // Full blocks stream directly from the block function.
        while data.len() - pos >= BLOCK_LEN {
            let block = self.next_block();
            crate::xor::xor_into(&mut data[pos..pos + BLOCK_LEN], &block);
            pos += BLOCK_LEN;
        }
        // Tail: buffer one block and remember the leftover for next time.
        if pos < data.len() {
            self.refill();
            let take = data.len() - pos;
            crate::xor::xor_into(&mut data[pos..], &self.buffer[..take]);
            self.buffer_pos = take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, &nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: "Ladies and Gentlemen..." with counter starting at 1.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut cipher = ChaCha20::new(&key, &nonce);
        // Skip block 0 to start the keystream at counter 1, as in the RFC.
        cipher.keystream(64);
        let mut data = plaintext.to_vec();
        cipher.apply(&mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        assert_eq!(hex(&data[112..114]), "874d");
    }

    #[test]
    fn keystream_is_deterministic_and_seekless_chunks_agree() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut a = ChaCha20::new(&key, &nonce);
        let mut b = ChaCha20::new(&key, &nonce);
        let whole = a.keystream(1000);
        let mut pieces = Vec::new();
        for chunk in [1usize, 63, 64, 65, 100, 707] {
            pieces.extend(b.keystream(chunk));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn rfc8439_seek_vector() {
        // Seeking to block 1 must reproduce the RFC 8439 §2.3.2 block
        // exactly, with no dependence on how much stream was read before.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let expected = "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e";
        // Fresh stream, direct seek.
        let mut a = ChaCha20::new(&key, &nonce);
        a.seek_to_block(1);
        assert_eq!(hex(&a.keystream(64)), expected);
        // Stream mid-way through an unrelated position, then seek back.
        let mut b = ChaCha20::new(&key, &nonce);
        b.keystream(1000);
        b.seek_to_block(1);
        assert_eq!(hex(&b.keystream(64)), expected);
    }

    #[test]
    fn wide_kernels_match_four_scalar_blocks() {
        // Portable 4-way and the dispatched (possibly SIMD) kernel must both
        // reproduce four consecutive scalar blocks exactly, including at the
        // u32 counter wrap.
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = (i as u8).wrapping_mul(7).wrapping_add(3);
        }
        let nonce = [0xA5u8; 12];
        for counter in [0u32, 1, 1000, u32::MAX - 3, u32::MAX - 1, u32::MAX] {
            let mut expected = [0u8; WIDE_LEN];
            for b in 0..WIDE_BLOCKS {
                let block = chacha20_block(&key, &nonce, counter.wrapping_add(b as u32));
                expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN].copy_from_slice(&block);
            }
            let mut portable = [0u8; WIDE_LEN];
            chacha20_blocks4_portable(&key, &nonce, counter, &mut portable);
            assert_eq!(portable, expected, "portable, counter {counter}");
            let mut dispatched = [0u8; WIDE_LEN];
            chacha20_blocks4(&key, &nonce, counter, &mut dispatched);
            assert_eq!(
                dispatched,
                expected,
                "dispatched ({}), counter {counter}",
                wide_backend_name()
            );
        }
    }

    /// Eight consecutive scalar blocks — the oracle for the 8-block kernels.
    fn eight_scalar_blocks(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        counter: u32,
    ) -> [u8; WIDE8_LEN] {
        let mut expected = [0u8; WIDE8_LEN];
        for b in 0..WIDE8_BLOCKS {
            let block = chacha20_block(key, nonce, counter.wrapping_add(b as u32));
            expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN].copy_from_slice(&block);
        }
        expected
    }

    #[test]
    fn wide8_kernels_match_eight_scalar_blocks() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = (i as u8).wrapping_mul(11).wrapping_add(5);
        }
        let nonce = [0x6Eu8; 12];
        for counter in [0u32, 1, 1000, u32::MAX - 7, u32::MAX - 3, u32::MAX] {
            let expected = eight_scalar_blocks(&key, &nonce, counter);
            let mut portable = [0u8; WIDE8_LEN];
            chacha20_blocks8_portable(&key, &nonce, counter, &mut portable);
            assert_eq!(portable, expected, "portable8, counter {counter}");
            let mut dispatched = [0u8; WIDE8_LEN];
            chacha20_blocks8(&key, &nonce, counter, &mut dispatched);
            assert_eq!(
                dispatched,
                expected,
                "dispatched ({}), counter {counter}",
                wide8_backend_name()
            );
        }
    }

    #[test]
    fn fused_xor_kernels_equal_compute_then_xor() {
        let key = [0x2Bu8; 32];
        let nonce = [0x17u8; 12];
        for counter in [0u32, 3, u32::MAX - 5] {
            let base: Vec<u8> = (0..WIDE8_LEN).map(|i| (i * 7 + 1) as u8).collect();
            let ks = eight_scalar_blocks(&key, &nonce, counter);
            let expected: Vec<u8> = base.iter().zip(ks.iter()).map(|(m, k)| m ^ k).collect();
            // Dispatched 8-block fused kernel.
            let mut fused8: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
            chacha20_blocks8_xor(&key, &nonce, counter, &mut fused8);
            assert_eq!(
                fused8.to_vec(),
                expected,
                "blocks8_xor ({}), counter {counter}",
                wide8_backend_name()
            );
            // Portable 8-block fused kernel, called directly.
            let mut fusedp: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
            chacha20_blocks8_xor_portable(&key, &nonce, counter, &mut fusedp);
            assert_eq!(
                fusedp.to_vec(),
                expected,
                "portable8 xor, counter {counter}"
            );
            // Dispatched 4-block fused kernel over both halves.
            let mut fused4: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
            let (lo, hi) = fused4.split_at_mut(WIDE_LEN);
            chacha20_blocks4_xor(&key, &nonce, counter, lo.try_into().unwrap());
            chacha20_blocks4_xor(
                &key,
                &nonce,
                counter.wrapping_add(4),
                hi.try_into().unwrap(),
            );
            assert_eq!(
                fused4.to_vec(),
                expected,
                "blocks4_xor ({}), counter {counter}",
                wide_backend_name()
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[allow(unsafe_code)] // see the note on `mod x86`
    fn x86_wide8_kernels_match_eight_scalar_blocks_directly() {
        // Direct per-kernel coverage independent of what the dispatcher
        // picked, plain and fused, including at the u32 counter wrap.
        let key = [0x44u8; 32];
        let nonce = [0x99u8; 12];
        for counter in [0u32, 12, u32::MAX - 7] {
            let expected = eight_scalar_blocks(&key, &nonce, counter);
            let base: Vec<u8> = (0..WIDE8_LEN).map(|i| (i * 5 + 2) as u8).collect();
            let xored: Vec<u8> = base
                .iter()
                .zip(expected.iter())
                .map(|(m, k)| m ^ k)
                .collect();
            if is_x86_feature_detected!("sse2") {
                let mut got = [0u8; WIDE8_LEN];
                // SAFETY: SSE2 availability checked above.
                unsafe { x86::blocks8_sse2::<false>(&key, &nonce, counter, &mut got) };
                assert_eq!(got, expected, "sse2x2, counter {counter}");
                let mut fused: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
                // SAFETY: as above.
                unsafe { x86::blocks8_sse2::<true>(&key, &nonce, counter, &mut fused) };
                assert_eq!(fused.to_vec(), xored, "sse2x2 fused, counter {counter}");
            }
            if is_x86_feature_detected!("avx2") {
                let mut got = [0u8; WIDE8_LEN];
                // SAFETY: AVX2 availability checked above.
                unsafe { x86::blocks8_avx2::<false>(&key, &nonce, counter, &mut got) };
                assert_eq!(got, expected, "avx2x2, counter {counter}");
                let mut fused: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
                // SAFETY: as above.
                unsafe { x86::blocks8_avx2::<true>(&key, &nonce, counter, &mut fused) };
                assert_eq!(fused.to_vec(), xored, "avx2x2 fused, counter {counter}");
            }
            if is_x86_feature_detected!("avx512f") {
                let mut got = [0u8; WIDE8_LEN];
                // SAFETY: AVX-512F availability checked above.
                unsafe { x86::blocks8_avx512::<false>(&key, &nonce, counter, &mut got) };
                assert_eq!(got, expected, "avx512, counter {counter}");
                let mut fused: [u8; WIDE8_LEN] = base.clone().try_into().unwrap();
                // SAFETY: as above.
                unsafe { x86::blocks8_avx512::<true>(&key, &nonce, counter, &mut fused) };
                assert_eq!(fused.to_vec(), xored, "avx512 fused, counter {counter}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[allow(unsafe_code)] // see the note on `mod x86`
    fn sse2_kernel_matches_four_scalar_blocks_directly() {
        // The dispatcher prefers AVX2 wherever it exists, so the SSE2
        // kernel would otherwise only ever run on pre-AVX2 hardware; call
        // it directly against the scalar oracle (SSE2 is x86_64 baseline,
        // so this runs on every x86_64 test box).
        if !is_x86_feature_detected!("sse2") {
            return;
        }
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = (i as u8).wrapping_mul(13).wrapping_add(1);
        }
        let nonce = [0x3Cu8; 12];
        for counter in [0u32, 5, u32::MAX - 2] {
            let mut expected = [0u8; WIDE_LEN];
            for b in 0..WIDE_BLOCKS {
                let block = chacha20_block(&key, &nonce, counter.wrapping_add(b as u32));
                expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN].copy_from_slice(&block);
            }
            let mut got = [0u8; WIDE_LEN];
            // SAFETY: SSE2 availability checked above.
            unsafe { x86::blocks4_sse2(&key, &nonce, counter, &mut got) };
            assert_eq!(got, expected, "sse2, counter {counter}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[allow(unsafe_code)] // see the note on `mod x86`
    fn avx2_kernel_matches_four_scalar_blocks_directly() {
        // Same direct-call coverage for AVX2, independent of what the
        // dispatcher picked (e.g. under DISSENT_CHACHA_FORCE_SCALAR).
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        let key = [0x5Du8; 32];
        let nonce = [0x71u8; 12];
        for counter in [0u32, 9, u32::MAX - 1] {
            let mut expected = [0u8; WIDE_LEN];
            for b in 0..WIDE_BLOCKS {
                let block = chacha20_block(&key, &nonce, counter.wrapping_add(b as u32));
                expected[b * BLOCK_LEN..(b + 1) * BLOCK_LEN].copy_from_slice(&block);
            }
            let mut got = [0u8; WIDE_LEN];
            // SAFETY: AVX2 availability checked above.
            unsafe { x86::blocks4_avx2(&key, &nonce, counter, &mut got) };
            assert_eq!(got, expected, "avx2, counter {counter}");
        }
    }

    #[test]
    fn interleaved_seek_and_fill_at_odd_offsets_matches_straight_line() {
        // Regression for partial-block head handling: seeking to
        // non-block-aligned offsets and filling odd lengths (short enough to
        // stay in the head, long enough to cross into the wide stride) must
        // always reproduce the corresponding window of one straight-line
        // keystream.
        let key = [0x21u8; 32];
        let nonce = [0x43u8; 12];
        let whole = ChaCha20::new(&key, &nonce).keystream(8 * WIDE_LEN);
        let mut s = ChaCha20::new(&key, &nonce);
        for &(pos, len) in &[
            (1usize, 3usize),
            (63, 2),     // head straddles the first block boundary
            (65, 300),   // unaligned head, then a wide stride, then a tail
            (100, 1),    // single byte from mid-block
            (255, 258),  // crosses a stride boundary both sides
            (511, 513),  // block- and stride-straddling
            (7, 256),    // exactly one stride after an odd head
            (320, 0),    // empty fill must not disturb the position
            (320, 64),   // aligned follow-up after the empty fill
            (1023, 700), // deep unaligned seek
        ] {
            s.seek(pos as u64);
            let mut out = vec![0u8; len];
            s.fill(&mut out);
            assert_eq!(out, whole[pos..pos + len], "pos {pos} len {len}");
        }
    }

    #[test]
    fn seek_matches_sequential_stream_at_every_offset() {
        let key = [5u8; 32];
        let nonce = [8u8; 12];
        let whole = ChaCha20::new(&key, &nonce).keystream(4 * BLOCK_LEN);
        // Byte offsets straddling block boundaries (63/64/65, 127/128/129).
        for pos in [0usize, 1, 63, 64, 65, 100, 127, 128, 129, 191] {
            let mut s = ChaCha20::new(&key, &nonce);
            s.seek(pos as u64);
            assert_eq!(s.keystream(8), whole[pos..pos + 8], "offset {pos}");
        }
    }

    #[test]
    fn fused_apply_equals_keystream_xor_across_chunkings() {
        let key = [11u8; 32];
        let nonce = [2u8; 12];
        let msg: Vec<u8> = (0..500).map(|i| (i * 37) as u8).collect();
        let ks = ChaCha20::new(&key, &nonce).keystream(msg.len());
        let expected: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        // Apply in irregular chunks so every partial-buffer path is hit.
        let mut data = msg.clone();
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut start = 0;
        for chunk in [1usize, 63, 64, 65, 7, 300] {
            let end = (start + chunk).min(data.len());
            cipher.apply(&mut data[start..end]);
            start = end;
        }
        assert_eq!(data, expected);
    }

    #[test]
    fn apply_round_trips() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let msg = b"attack at dawn".to_vec();
        let mut data = msg.clone();
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_ne!(data, msg);
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let nonce = [0u8; 12];
        let a = ChaCha20::new(&[1u8; 32], &nonce).keystream(64);
        let b = ChaCha20::new(&[2u8; 32], &nonce).keystream(64);
        assert_ne!(a, b);
    }
}
