//! The linter applied to itself: the workspace at HEAD must be clean, and
//! the binary must fail (non-zero exit) on a tree with a seeded violation —
//! the property the blocking CI lane relies on.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean_at_head() {
    let report = dissent_lint::lint_workspace(&workspace_root()).expect("walk workspace");
    let unwaived: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| !d.waived)
        .map(|d| d.to_string())
        .collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived findings:\n{}",
        unwaived.join("\n")
    );
    assert_eq!(report.unwaived_errors(), 0);
    // The walk really covered the tree (guards against a silently-empty
    // root making this test vacuous).
    assert!(
        report.files_checked > 50,
        "only {} files checked — wrong root?",
        report.files_checked
    );
}

#[test]
fn every_waiver_in_the_workspace_carries_a_reason() {
    // `extract_waivers` rejects reasonless waivers as bad-waiver errors, so
    // a clean workspace implies this; assert it directly anyway so the
    // acceptance criterion has a named test.
    let report = dissent_lint::lint_workspace(&workspace_root()).expect("walk workspace");
    let bad: Vec<&dissent_lint::diag::Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "bad-waiver")
        .collect();
    assert!(bad.is_empty(), "reasonless/malformed waivers: {bad:?}");
}

#[test]
fn summary_line_reports_the_real_waiver_count() {
    let report = dissent_lint::lint_workspace(&workspace_root()).expect("walk workspace");
    let line = report.summary_line();
    let waived = report.diagnostics.iter().filter(|d| d.waived).count();
    assert!(line.contains(&format!("waived={waived}")), "{line}");
    assert!(
        line.contains(&format!("files={}", report.files_checked)),
        "{line}"
    );
}

/// Run the built `dissent-lint` binary against a freshly-written tree.
fn run_binary_on(tree: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dissent-lint"))
        .arg(tree)
        .output()
        .expect("spawn dissent-lint")
}

fn scratch_tree(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/net/src")).expect("mkdir");
    dir
}

#[test]
fn binary_fails_on_a_seeded_violation() {
    let dir = scratch_tree("lint-seeded");
    fs::write(
        dir.join("crates/net/src/transport.rs"),
        "fn decode(b: &[u8]) -> usize { b.len() as u64 as usize }\n",
    )
    .expect("write fixture");
    let out = run_binary_on(&dir);
    assert!(
        !out.status.success(),
        "linter accepted a seeded unchecked-wire-narrowing violation"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("unchecked-wire-narrowing=1"),
        "summary should count the seeded violation:\n{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 unwaived finding"), "{stderr}");
}

#[test]
fn binary_passes_on_a_clean_tree_and_prints_the_summary() {
    let dir = scratch_tree("lint-clean");
    fs::write(
        dir.join("crates/net/src/transport.rs"),
        "fn decode(b: &[u8]) -> Result<usize, ()> { usize::try_from(b.len() as u64).map_err(|_| ()) }\n",
    )
    .expect("write fixture");
    let out = run_binary_on(&dir);
    assert!(out.status.success(), "clean tree must pass");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .last()
        .expect("summary is the last stdout line");
    assert!(summary.starts_with("lint-summary: "), "{summary}");
    assert!(summary.ends_with("waived=0 files=1"), "{summary}");
}
