//! Fixture suite: every rule exercised against accepting and rejecting
//! snippets, plus waiver behavior and the `#[cfg(test)]` exemption.
//!
//! The snippets live in string literals, so the workspace linter (which
//! reads files, then lexes them — string contents never become tokens)
//! does not see its own test inputs as violations.

use dissent_lint::diag::{Diagnostic, Severity};
use dissent_lint::lint_source;

/// Unwaived findings for `rule` in `src`, linted under `path`.
fn findings(path: &str, src: &str, rule: &str) -> Vec<Diagnostic> {
    lint_source(path, src)
        .into_iter()
        .filter(|d| d.rule == rule && !d.waived)
        .collect()
}

fn count(path: &str, src: &str, rule: &str) -> usize {
    findings(path, src, rule).len()
}

// --- raw-bigint-arith ------------------------------------------------------

#[test]
fn bigint_arith_flagged_outside_crypto() {
    let src = "fn f(a: &BigUint) { let x = a.modpow(a, a); }\n";
    // One hit for the `BigUint` type mention, one for the `modpow` call.
    assert_eq!(
        count("crates/dcnet/src/pads.rs", src, "raw-bigint-arith"),
        2
    );
    // The same text inside crates/crypto is the implementation itself.
    assert_eq!(
        count("crates/crypto/src/group.rs", src, "raw-bigint-arith"),
        0
    );
    // Oracle code in tests/ may cross-check against naive arithmetic.
    assert_eq!(
        count("crates/dcnet/tests/oracle.rs", src, "raw-bigint-arith"),
        0
    );
}

#[test]
fn bigint_byte_codecs_are_exempt() {
    let src = "fn f(b: &[u8]) { let x = BigUint::from_bytes_be(b); }\n";
    assert_eq!(
        count("crates/core/src/messages.rs", src, "raw-bigint-arith"),
        0
    );
    let arith = "fn f(x: BigUint) { let y = BigUint::from(3u8); }\n";
    assert_eq!(
        count("crates/core/src/messages.rs", arith, "raw-bigint-arith"),
        2
    );
}

#[test]
fn bigint_in_strings_and_comments_is_invisible() {
    let src = "// modpow is banned here\nfn f() { let s = \"BigUint::modpow\"; }\n";
    assert_eq!(
        count("crates/core/src/round.rs", src, "raw-bigint-arith"),
        0
    );
}

// --- unsafe-outside-kernels ------------------------------------------------

#[test]
fn unsafe_outside_allowlist_is_flagged() {
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert_eq!(
        count("crates/net/src/sim.rs", src, "unsafe-outside-kernels"),
        1
    );
}

#[test]
fn unsafe_in_kernel_module_needs_adjacent_safety_comment() {
    let bare = "fn f() { unsafe { go() } }\n";
    assert_eq!(
        count(
            "crates/crypto/src/chacha.rs",
            bare,
            "unsafe-outside-kernels"
        ),
        1
    );
    let commented = "fn f() {\n    // SAFETY: feature probe above.\n    unsafe { go() }\n}\n";
    assert_eq!(
        count(
            "crates/crypto/src/chacha.rs",
            commented,
            "unsafe-outside-kernels"
        ),
        0
    );
    // The comment may sit above an attribute, and a `# Safety` doc section
    // on the unsafe fn itself also counts.
    let through_attr =
        "// SAFETY: probed.\n#[cfg(target_arch = \"x86_64\")]\nfn f() { unsafe { go() } }\n";
    assert_eq!(
        count(
            "crates/crypto/src/chacha.rs",
            through_attr,
            "unsafe-outside-kernels"
        ),
        0
    );
    let doc_section =
        "/// Does things.\n///\n/// # Safety\n/// Caller proves sse2.\nunsafe fn f() {}\n";
    assert_eq!(
        count(
            "crates/crypto/src/chacha.rs",
            doc_section,
            "unsafe-outside-kernels"
        ),
        0
    );
}

#[test]
fn safety_comment_cannot_be_borrowed_across_code() {
    // A code line between the comment and the unsafe block breaks adjacency:
    // each site must carry its own justification.
    let src = "fn f() {\n    // SAFETY: for the first one only.\n    let a = 1;\n    unsafe { go() }\n}\n";
    assert_eq!(
        count("crates/crypto/src/chacha.rs", src, "unsafe-outside-kernels"),
        1
    );
}

// --- unchecked-wire-narrowing ----------------------------------------------

#[test]
fn narrowing_casts_flagged_only_in_wire_files() {
    let src = "fn f(n: u64) -> usize { n as usize }\n";
    assert_eq!(
        count(
            "crates/core/src/messages.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        1
    );
    assert_eq!(
        count(
            "crates/net/src/transport.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        1
    );
    // Same basename outside a src/ tree, or another module entirely: clean.
    assert_eq!(
        count("crates/core/src/round.rs", src, "unchecked-wire-narrowing"),
        0
    );
    assert_eq!(
        count("docs/messages.rs", src, "unchecked-wire-narrowing"),
        0
    );
}

#[test]
fn widening_casts_are_fine() {
    let src = "fn f(n: u16) -> u64 { n as u64 }\n";
    assert_eq!(
        count(
            "crates/core/src/messages.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
}

#[test]
fn checked_narrowing_is_the_accepted_form() {
    let src = "fn f(n: u64) -> Result<usize, E> { usize::try_from(n).map_err(|_| E::Overflow) }\n";
    assert_eq!(
        count(
            "crates/core/src/messages.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
}

// --- panic-in-decode-path --------------------------------------------------

#[test]
fn panics_flagged_in_wire_files() {
    let src = "fn f(b: &[u8]) -> u32 {\n    let x: [u8; 4] = b.try_into().unwrap();\n    if b.is_empty() { panic!(\"no\") }\n    u32::from_be_bytes(x)\n}\n";
    assert_eq!(
        count("crates/net/src/transport.rs", src, "panic-in-decode-path"),
        2
    );
    assert_eq!(
        count("crates/dcnet/src/pads.rs", src, "panic-in-decode-path"),
        0
    );
}

#[test]
fn unwrap_as_plain_ident_is_not_a_method_call() {
    // `unwrap` as a function name or path segment is not `.unwrap()`.
    let src = "fn unwrap(x: u8) -> u8 { x }\nfn g() { let y = unwrap(3); }\n";
    assert_eq!(
        count("crates/net/src/transport.rs", src, "panic-in-decode-path"),
        0
    );
}

#[test]
fn cfg_test_items_are_exempt_from_panic_and_narrowing_rules() {
    let src = "fn decode(b: &[u8]) -> u8 { b[0] }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn round_trip() {\n        let v: Vec<u8> = decode(&[1]).try_into().unwrap();\n        let n = 3u64 as usize;\n        assert_eq!(v.len(), n);\n    }\n}\n";
    assert_eq!(
        count("crates/core/src/messages.rs", src, "panic-in-decode-path"),
        0
    );
    assert_eq!(
        count(
            "crates/core/src/messages.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
    // The same calls outside the test module are findings.
    let bare = "fn decode(b: &[u8]) -> u8 { let v: u8 = b.first().copied().unwrap(); v }\n";
    assert_eq!(
        count("crates/core/src/messages.rs", bare, "panic-in-decode-path"),
        1
    );
}

// --- secret-compare --------------------------------------------------------

#[test]
fn secret_equality_flagged_in_auth_files() {
    let src = "fn f(sig: &[u8], other: &[u8]) -> bool { sig == other }\n";
    assert_eq!(count("crates/net/src/auth.rs", src, "secret-compare"), 1);
    assert_eq!(
        count("crates/crypto/src/schnorr.rs", src, "secret-compare"),
        1
    );
    // Outside the auth files the rule does not apply.
    assert_eq!(count("crates/core/src/round.rs", src, "secret-compare"), 0);
}

#[test]
fn non_secret_equality_in_auth_files_is_fine() {
    let src = "fn f(version: u16) -> bool { version == 1 }\n";
    assert_eq!(count("crates/net/src/auth.rs", src, "secret-compare"), 0);
}

#[test]
fn ct_eq_is_the_accepted_form() {
    let src = "fn f(tag: &[u8], other: &[u8]) -> bool { dissent_crypto::xor::ct_eq(tag, other) }\n";
    assert_eq!(count("crates/net/src/auth.rs", src, "secret-compare"), 0);
}

// --- lock-in-hot-path --------------------------------------------------------

#[test]
fn locks_flagged_in_round_pipeline_and_dcnet() {
    let src = "use std::sync::Mutex;\nfn f(m: &Mutex<u64>) { *m.lock().unwrap() += 1; }\n";
    // Two `Mutex` mentions plus the `.lock()` call.
    assert_eq!(
        count("crates/core/src/round.rs", src, "lock-in-hot-path"),
        3
    );
    assert_eq!(
        count("crates/core/src/pipeline.rs", src, "lock-in-hot-path"),
        3
    );
    assert_eq!(count("crates/dcnet/src/pad.rs", src, "lock-in-hot-path"), 3);
    // Elsewhere (e.g. the metrics registry itself) locks are allowed.
    assert_eq!(
        count("crates/metrics/src/lib.rs", src, "lock-in-hot-path"),
        0
    );
    assert_eq!(count("crates/core/src/node.rs", src, "lock-in-hot-path"), 0);
}

#[test]
fn rwlock_and_read_guard_flagged_in_hot_path() {
    let src = "fn f(l: &std::sync::RwLock<u64>) -> u64 { *l.read().unwrap() }\n";
    assert_eq!(
        count("crates/core/src/pipeline.rs", src, "lock-in-hot-path"),
        1
    );
}

#[test]
fn plain_lock_identifiers_and_tests_are_not_findings() {
    // `lock` as a field or a free function is not `.lock()`, and test
    // modules may lock freely (e.g. to serialize env-var tests).
    let src = "struct S { lock: u8 }\nfn lock() {}\nfn g() { lock(); }\n\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    static GUARD: Mutex<()> = Mutex::new(());\n    #[test]\n    fn t() { let _g = GUARD.lock().unwrap(); }\n}\n";
    assert_eq!(
        count("crates/core/src/round.rs", src, "lock-in-hot-path"),
        0
    );
}

// --- waivers ----------------------------------------------------------------

#[test]
fn waiver_on_preceding_line_suppresses_the_finding() {
    let src = "// lint:allow(unchecked-wire-narrowing): encoder-side, bounded by MAX_FRAME.\nfn f(n: u64) -> usize { n as usize }\n";
    let all = lint_source("crates/net/src/transport.rs", src);
    let waived: Vec<_> = all
        .iter()
        .filter(|d| d.rule == "unchecked-wire-narrowing")
        .collect();
    assert_eq!(waived.len(), 1);
    assert!(waived[0].waived);
    assert_eq!(
        count("crates/net/src/transport.rs", src, "unused-waiver"),
        0
    );
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = "fn f(n: u64) -> usize { n as usize } // lint:allow(unchecked-wire-narrowing): caller bounds n.\n";
    assert_eq!(
        count(
            "crates/net/src/transport.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
}

#[test]
fn waiver_without_reason_is_an_error() {
    let src = "// lint:allow(unchecked-wire-narrowing)\nfn f(n: u64) -> usize { n as usize }\n";
    assert_eq!(count("crates/net/src/transport.rs", src, "bad-waiver"), 1);
    // And it does not waive: the finding stays.
    assert_eq!(
        count(
            "crates/net/src/transport.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        1
    );
}

#[test]
fn waiver_naming_unknown_rule_is_an_error() {
    let src = "// lint:allow(no-such-rule): because.\nfn f() {}\n";
    assert_eq!(count("crates/net/src/transport.rs", src, "bad-waiver"), 1);
}

#[test]
fn waiver_covering_nothing_is_a_warning() {
    let src = "// lint:allow(panic-in-decode-path): stale.\nfn f() -> u8 { 3 }\n";
    let all = lint_source("crates/net/src/transport.rs", src);
    let unused: Vec<_> = all.iter().filter(|d| d.rule == "unused-waiver").collect();
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].severity, Severity::Warning);
}

#[test]
fn waiver_only_covers_its_named_rule() {
    let src = "// lint:allow(unchecked-wire-narrowing): length is bounded.\nfn f(b: &[u8]) -> usize { let n = b.len() as u64; (n as usize) + usize::from(b.first().copied().unwrap())\n}\n";
    // The cast on the covered line is waived; the unwrap is not.
    assert_eq!(
        count(
            "crates/net/src/transport.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
    assert_eq!(
        count("crates/net/src/transport.rs", src, "panic-in-decode-path"),
        1
    );
}

#[test]
fn waiver_can_name_multiple_rules() {
    let src = "// lint:allow(unchecked-wire-narrowing, panic-in-decode-path): fuzz shim.\nfn f(b: &[u8]) -> usize { (b.len() as u64 as usize) + usize::from(b.first().copied().unwrap()) }\n";
    assert_eq!(
        count(
            "crates/net/src/transport.rs",
            src,
            "unchecked-wire-narrowing"
        ),
        0
    );
    assert_eq!(
        count("crates/net/src/transport.rs", src, "panic-in-decode-path"),
        0
    );
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_waiver() {
    // Docs that *describe* `lint:allow(...)` mid-sentence must neither waive
    // anything nor be reported as malformed.
    let src = "//! Waive findings with `lint:allow(rule)` comments.\nfn f() {}\n";
    assert_eq!(count("crates/net/src/transport.rs", src, "bad-waiver"), 0);
    assert_eq!(
        count("crates/net/src/transport.rs", src, "unused-waiver"),
        0
    );
}

// --- diagnostics ------------------------------------------------------------

#[test]
fn diagnostics_carry_position_and_render_stably() {
    let src = "fn f(n: u64) -> usize {\n    n as usize\n}\n";
    let all = findings(
        "crates/net/src/transport.rs",
        src,
        "unchecked-wire-narrowing",
    );
    assert_eq!(all.len(), 1);
    let d = &all[0];
    assert_eq!((d.line, d.col), (2, 7));
    let rendered = d.to_string();
    assert!(
        rendered.starts_with("crates/net/src/transport.rs:2:7: error[unchecked-wire-narrowing]:"),
        "{rendered}"
    );
}
