//! A small hand-rolled Rust lexer: just enough token structure for the
//! project-invariant lints.
//!
//! The lexer understands everything that can *hide* text from a naive
//! substring scan — line comments, nested block comments, cooked and raw
//! (byte) strings, char literals vs. lifetimes — so a rule that looks for
//! the identifier `unsafe` never fires on a string literal or a doc
//! comment that merely mentions it.  It deliberately does not build a
//! syntax tree: the invariants it serves are lexical ("this identifier
//! must not appear here", "this token must be preceded by that comment"),
//! and a token stream with precise line/column positions is the smallest
//! structure that decides them reliably.

/// What kind of token was lexed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `as`, `BigUint`, ...).
    Ident,
    /// Operator or delimiter; multi-character operators (`==`, `::`, `->`,
    /// ...) are lexed as one token so rules can match them exactly.
    Punct,
    /// String / raw-string / byte-string literal (contents opaque to rules).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token text (for [`TokKind::Str`], the raw source slice).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
    /// Token class.
    pub kind: TokKind,
}

/// One comment (line or block).  Block comments spanning several lines are
/// recorded once with their start position and full text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for line comments).
    pub end_line: u32,
    /// 1-based column of the comment's first character.
    pub col: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order, kept separate from the token stream.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so lexing is greedy.
const OPERATORS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and comments.  The lexer is total: any byte
/// sequence produces *some* result (unterminated strings and comments are
/// closed by end of file), so a rule pass never aborts on malformed input.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos;
                while let Some(nb) = c.peek(0) {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    end_line: line,
                    col,
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                // Block comments nest in Rust: track depth.
                let mut depth = 1usize;
                while depth > 0 {
                    if c.starts_with("/*") {
                        depth += 1;
                        c.bump();
                        c.bump();
                    } else if c.starts_with("*/") {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    } else if c.bump().is_none() {
                        break; // unterminated: closed by EOF
                    }
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    end_line: c.line,
                    col,
                });
            }
            b'"' => {
                let text = lex_cooked_string(&mut c, src);
                out.toks.push(Tok {
                    text,
                    line,
                    col,
                    kind: TokKind::Str,
                });
            }
            b'\'' => {
                // Char literal or lifetime.  `'\...'` and `'x'` are chars;
                // `'ident` not closed by a quote is a lifetime.
                if c.peek(1) == Some(b'\\') {
                    let text = lex_char_literal(&mut c, src);
                    out.toks.push(Tok {
                        text,
                        line,
                        col,
                        kind: TokKind::Char,
                    });
                } else if c.peek(2) == Some(b'\'') && c.peek(1) != Some(b'\'') {
                    let start = c.pos;
                    c.bump();
                    c.bump();
                    c.bump();
                    out.toks.push(Tok {
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                        kind: TokKind::Char,
                    });
                } else {
                    let start = c.pos;
                    c.bump();
                    while c.peek(0).is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.toks.push(Tok {
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                        kind: TokKind::Lifetime,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = c.pos;
                c.bump();
                while let Some(nb) = c.peek(0) {
                    if nb.is_ascii_alphanumeric() || nb == b'_' {
                        c.bump();
                    } else if nb == b'.'
                        && c.peek(1).is_some_and(|d| d.is_ascii_digit())
                        && !src[start..c.pos].contains('.')
                    {
                        c.bump(); // one decimal point, never the `..` range
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    kind: TokKind::Num,
                });
            }
            _ if is_ident_start(b) => {
                // Raw / byte string prefixes (`r"`, `r#"`, `b"`, `br#"`, ...)
                // must be recognised before plain identifier lexing.
                if let Some(text) = try_lex_raw_or_byte_string(&mut c, src) {
                    out.toks.push(Tok {
                        text,
                        line,
                        col,
                        kind: TokKind::Str,
                    });
                    continue;
                }
                let start = c.pos;
                c.bump();
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                // Byte char literal `b'x'`: the `b` was an ident candidate.
                if c.pos - start == 1 && src.as_bytes()[start] == b'b' && c.peek(0) == Some(b'\'') {
                    let text = lex_char_literal(&mut c, src);
                    out.toks.push(Tok {
                        text: format!("b{text}"),
                        line,
                        col,
                        kind: TokKind::Char,
                    });
                    continue;
                }
                out.toks.push(Tok {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    kind: TokKind::Ident,
                });
            }
            _ => {
                let mut matched = false;
                for op in OPERATORS {
                    if c.starts_with(op) {
                        for _ in 0..op.len() {
                            c.bump();
                        }
                        out.toks.push(Tok {
                            text: op.to_string(),
                            line,
                            col,
                            kind: TokKind::Punct,
                        });
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    c.bump();
                    out.toks.push(Tok {
                        text: (b as char).to_string(),
                        line,
                        col,
                        kind: TokKind::Punct,
                    });
                }
            }
        }
    }
    out
}

/// Lex a `"..."` string with `\` escapes; unterminated runs to EOF.
fn lex_cooked_string(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump(); // the escaped byte (any, including `"` and `\`)
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

/// Lex a `'...'` char literal (cursor on the opening quote), escapes
/// included; used for both `'x'` and `b'x'` bodies.
fn lex_char_literal(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                break;
            }
            b'\n' => break, // stray quote: do not swallow the file
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

/// If the cursor sits on `r"`, `r#"`, `b"`, `br#"` (any number of `#`),
/// lex the whole string literal and return its text.
fn try_lex_raw_or_byte_string(c: &mut Cursor, src: &str) -> Option<String> {
    let mut raw = false;
    let mut ahead;
    match c.peek(0)? {
        b'r' => {
            raw = true;
            ahead = 1;
        }
        b'b' => {
            ahead = 1;
            if c.peek(1) == Some(b'r') {
                raw = true;
                ahead = 2;
            }
        }
        _ => return None,
    }
    let mut hashes = 0usize;
    if raw {
        while c.peek(ahead) == Some(b'#') {
            hashes += 1;
            ahead += 1;
        }
    }
    if c.peek(ahead) != Some(b'"') {
        return None;
    }
    // `b"` (cooked byte string) has normal escape rules.
    if !raw {
        let start = c.pos;
        c.bump(); // b
        lex_cooked_string(c, src);
        return Some(src[start..c.pos].to_string());
    }
    let start = c.pos;
    for _ in 0..=ahead {
        c.bump(); // prefix, hashes and opening quote
    }
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    loop {
        if c.starts_with(&closer) {
            for _ in 0..closer.len() {
                c.bump();
            }
            break;
        }
        if c.bump().is_none() {
            break; // unterminated: closed by EOF
        }
    }
    Some(src[start..c.pos].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r####"
            // unsafe in a line comment
            /* unsafe in /* a nested */ block comment */
            let a = "unsafe in a string";
            let b = r#"unsafe in a raw string with "quotes" inside"#;
            let c = b"unsafe bytes";
            let d = br##"raw bytes with # and "# inside"##;
            real_ident();
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn char_literals_are_not_lifetimes_and_vice_versa() {
        let src = "let x: &'a str = f('#', '\\'', b'0', 'z');";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "'a");
        assert_eq!(chars.len(), 4, "{chars:?}");
    }

    #[test]
    fn multi_char_operators_lex_as_one_token() {
        let lexed = lex("a == b != c => d :: e .. f");
        let puncts: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "=>", "::", ".."]);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("0..10 1.5 0xFF 1_000");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "0xFF", "1_000"]);
    }

    #[test]
    fn unterminated_inputs_do_not_hang_or_panic() {
        for src in [
            "\"never closed",
            "/* never closed",
            "r#\"never closed\"",
            "'",
        ] {
            let _ = lex(src);
        }
    }
}
