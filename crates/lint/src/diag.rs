//! Diagnostics: what a rule reports and how it is rendered.

/// How severe a finding is.  Errors fail the build; warnings are printed
/// but never change the exit status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but non-fatal.
    Warning,
    /// Invariant violation; fails the lint run unless waived.
    Error,
}

impl Severity {
    /// The label used in rendered diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule that fired (e.g. `unsafe-outside-kernels`).
    pub rule: &'static str,
    /// Severity the rule is registered with.
    pub severity: Severity,
    /// Human-readable explanation of this specific finding.
    pub message: String,
    /// Set when an inline `// lint:allow(rule): reason` covers the finding.
    pub waived: bool,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}{}",
            self.path,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}
