//! `dissent-lint` — project-invariant static analysis for this workspace.
//!
//! ROADMAP.md carries standing constraints that no general-purpose tool
//! checks: all modular arithmetic goes through the `Group::exp`/`multi_exp`
//! Montgomery API, `unsafe` lives only in the documented ChaCha20 kernels,
//! wire-derived integers are narrowed with checked conversions, the
//! network-facing decode path never panics on attacker-controlled bytes,
//! and authentication material is compared in constant time.  Dissent's
//! thesis is that misbehavior should be *checked for proactively* rather
//! than guarded by convention; this crate applies the same philosophy to
//! the source tree — the invariants run as a blocking CI lane instead of
//! living in reviewer memory.
//!
//! Design: a hand-rolled lexer ([`lexer`]) feeds a rule registry
//! ([`rules::registry`]) producing file/line/column diagnostics ([`diag`]).
//! Exceptions are documented in place with
//! `// lint:allow(<rule>): <reason>` — a waiver without a reason is itself
//! an error.  No dependencies: the workspace builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;

use diag::{Diagnostic, Severity};
use rules::SourceFile;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output and the vendored
/// offline shims (third-party API surface, not project source).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, waived or not, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

impl Report {
    /// Unwaived error-severity findings — the count that fails CI.
    pub fn unwaived_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error && !d.waived)
            .count()
    }

    /// The stable machine-readable summary: every registered rule (plus the
    /// waiver meta-rules) with its unwaived count, alphabetical, one line —
    /// so CI logs diff cleanly across PRs.
    pub fn summary_line(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for rule in rules::registry() {
            counts.insert(rule.name, 0);
        }
        counts.insert("bad-waiver", 0);
        counts.insert("unused-waiver", 0);
        let mut waived = 0usize;
        for d in &self.diagnostics {
            if d.waived {
                waived += 1;
            } else {
                *counts.entry(d.rule).or_insert(0) += 1;
            }
        }
        let body: Vec<String> = counts
            .iter()
            .map(|(rule, n)| format!("{rule}={n}"))
            .collect();
        format!(
            "lint-summary: {} waived={} files={}",
            body.join(" "),
            waived,
            self.files_checked
        )
    }
}

/// Lint a single in-memory source file (fixture entry point): runs every
/// rule, then waiver extraction and application, exactly as the workspace
/// walk does.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::new(rel_path, src);
    let mut diags = Vec::new();
    rules::run_rules(&file, &mut diags);
    let mut waivers = rules::extract_waivers(&file, &mut diags);
    let mut extra = Vec::new();
    rules::apply_waivers(&file, &mut waivers, &mut diags, &mut extra);
    diags.extend(extra);
    diags.sort_by_key(|d| (d.line, d.col));
    diags
}

/// Recursively collect workspace `.rs` files under `root`, skipping
/// [`SKIP_DIRS`], sorted for deterministic output.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        report.diagnostics.extend(lint_source(&rel, &src));
        report.files_checked += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_is_stable_and_covers_every_rule() {
        let report = Report::default();
        let line = report.summary_line();
        for rule in rules::registry() {
            assert!(line.contains(&format!("{}=0", rule.name)), "{line}");
        }
        assert!(line.starts_with("lint-summary: "));
        assert!(line.contains("bad-waiver=0"));
        assert!(line.contains("waived=0"));
    }
}
