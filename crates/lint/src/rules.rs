//! The lint rules and the per-file context they run against.
//!
//! Each rule encodes one standing project invariant from ROADMAP.md; the
//! registry gives every rule a stable name (used by the waiver syntax and
//! the machine-readable summary) and a severity.  Rules are lexical by
//! design — see the module comment on [`crate::lexer`].

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// How one source line reads at a glance, for comment-adjacency checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineKind {
    /// No tokens, no comment.
    Blank,
    /// Only comment text (line comment, or the interior of a block comment).
    Comment,
    /// An attribute (`#[...]` / `#![...]`), possibly with a trailing comment.
    Attr,
    /// Anything else bearing tokens.
    Code,
}

/// One file prepared for rule checks: token stream, comments, line
/// classification, and the `#[cfg(test)]` / `#[test]` exemption map.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// Token-index ranges (half-open) under a test-only item.
    exempt: Vec<(usize, usize)>,
    /// Per-line classification, index 0 = line 1.
    line_kinds: Vec<LineKind>,
    /// Per-line comment text (all comments touching that line, joined).
    line_comments: Vec<String>,
    /// For each line, whether any token starts on it.
    line_has_tok: Vec<bool>,
}

impl SourceFile {
    /// Lex and prepare `src` under the given workspace-relative path.
    pub fn new(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let nlines = src.lines().count().max(1);
        let mut line_has_tok = vec![false; nlines + 1];
        let mut first_tok_on_line: Vec<Option<usize>> = vec![None; nlines + 1];
        for (i, t) in lexed.toks.iter().enumerate() {
            let l = t.line as usize;
            if l < line_has_tok.len() {
                line_has_tok[l] = true;
                if first_tok_on_line[l].is_none() {
                    first_tok_on_line[l] = Some(i);
                }
            }
        }
        let mut line_comments = vec![String::new(); nlines + 1];
        for c in &lexed.comments {
            for (off, part) in c.text.split('\n').enumerate() {
                let l = c.line as usize + off;
                if l < line_comments.len() {
                    line_comments[l].push_str(part);
                    line_comments[l].push(' ');
                }
            }
        }
        let mut line_kinds = vec![LineKind::Blank; nlines + 1];
        for l in 1..=nlines {
            line_kinds[l] = if line_has_tok[l] {
                match first_tok_on_line[l].map(|i| &lexed.toks[i]) {
                    Some(t) if t.text == "#" => LineKind::Attr,
                    _ => LineKind::Code,
                }
            } else if !line_comments[l].is_empty() {
                LineKind::Comment
            } else {
                LineKind::Blank
            };
        }
        let exempt = test_regions(&lexed.toks);
        SourceFile {
            rel_path: rel_path.to_string(),
            lexed,
            exempt,
            line_kinds,
            line_comments,
            line_has_tok,
        }
    }

    /// Is the token at `idx` inside a `#[cfg(test)]` / `#[test]` item?
    pub fn is_exempt(&self, idx: usize) -> bool {
        self.exempt.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    fn kind_of_line(&self, line: usize) -> LineKind {
        self.line_kinds
            .get(line)
            .copied()
            .unwrap_or(LineKind::Blank)
    }

    fn comment_on_line(&self, line: usize) -> &str {
        self.line_comments.get(line).map_or("", |s| s.as_str())
    }

    /// The first line at or after `line` that bears a token, if any.
    pub fn next_token_line(&self, line: usize) -> Option<u32> {
        (line..self.line_has_tok.len())
            .find(|&l| self.line_has_tok[l])
            .map(|l| l as u32)
    }

    fn diag(&self, tok: &Tok, rule: &'static str, sev: Severity, message: String) -> Diagnostic {
        Diagnostic {
            path: self.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            rule,
            severity: sev,
            message,
            waived: false,
        }
    }
}

/// Find token-index ranges belonging to test-only items: an attribute that
/// is `#[test]` or a `#[cfg(...)]` whose argument list mentions `test`,
/// followed by an item body `{ ... }` (brace-matched).
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if toks[j].kind == TokKind::Ident {
                            idents.push(&toks[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_test_attr = match idents.first() {
                Some(&"test") => true,
                Some(&"cfg") => idents.contains(&"test"),
                _ => false,
            };
            if is_test_attr {
                // Skip any further attributes, then brace-match the item
                // body.  A `;` before any `{` (e.g. `mod tests;`) means the
                // body lives elsewhere; no region.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let mut body_start = None;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            body_start = Some(k);
                            break;
                        }
                        ";" => break,
                        _ => k += 1,
                    }
                }
                if let Some(open) = body_start {
                    let mut d = 1usize;
                    let mut end = open + 1;
                    while end < toks.len() && d > 0 {
                        match toks[end].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        end += 1;
                    }
                    regions.push((i, end));
                    i = end;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

/// One registered rule.
pub struct Rule {
    /// Stable name, used in diagnostics, waivers and the summary line.
    pub name: &'static str,
    /// Severity every finding of this rule carries.
    pub severity: Severity,
    /// One-line description (for `--rules` and the README table).
    pub summary: &'static str,
    check: fn(&SourceFile, &mut Vec<Diagnostic>),
}

/// All rules, in registry order.  The summary line reports every rule here
/// even when its count is zero, so CI output diffs cleanly across PRs.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            name: "raw-bigint-arith",
            severity: Severity::Error,
            summary: "modular arithmetic outside crates/crypto must go through the \
                      Group::exp/multi_exp Montgomery API, not raw BigUint/modpow",
            check: raw_bigint_arith,
        },
        Rule {
            name: "unsafe-outside-kernels",
            severity: Severity::Error,
            summary: "`unsafe` is allowed only in the documented ChaCha20 kernel module, \
                      and every unsafe block needs an adjacent `// SAFETY:` comment",
            check: unsafe_outside_kernels,
        },
        Rule {
            name: "unchecked-wire-narrowing",
            severity: Severity::Error,
            summary: "wire-facing modules must narrow integers with try_from/checked \
                      helpers, never `as usize`/`as u32`/`as u16`",
            check: unchecked_wire_narrowing,
        },
        Rule {
            name: "panic-in-decode-path",
            severity: Severity::Error,
            summary: "transport-facing decode/ingest modules must not panic on \
                      attacker-controlled bytes (no unwrap/expect/panic!/unreachable!)",
            check: panic_in_decode_path,
        },
        Rule {
            name: "secret-compare",
            severity: Severity::Error,
            summary: "signature/tag/nonce byte comparisons in auth code must use a \
                      constant-time helper (dissent_crypto::xor::ct_eq), not `==`",
            check: secret_compare,
        },
        Rule {
            name: "lock-in-hot-path",
            severity: Severity::Error,
            summary: "the per-round hot paths (core round/pipeline engines, dcnet) must \
                      stay lock-free — no Mutex/RwLock/.lock(); shared state and \
                      instrumentation go through atomics",
            check: lock_in_hot_path,
        },
    ]
}

/// Run every registered rule over `file`.
pub fn run_rules(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for rule in registry() {
        (rule.check)(file, out);
    }
}

fn has_path_segment(path: &str, seg: &str) -> bool {
    path.split('/').any(|p| p == seg)
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// The transport-facing modules rules 3 and 4 protect: everything that
/// decodes or ingests attacker-controlled bytes.
const WIRE_FILES: [&str; 5] = [
    "messages.rs",
    "transport.rs",
    "auth.rs",
    "connauth.rs",
    "node.rs",
];

fn is_wire_file(path: &str) -> bool {
    has_path_segment(path, "src") && WIRE_FILES.contains(&basename(path))
}

// --- rule 1: raw-bigint-arith ---------------------------------------------

/// Codec-only associated functions that move bytes, not arithmetic; a
/// `BigUint::from_bytes_be(..)` in a decoder is not a modular-arithmetic
/// call site.
const BIGINT_CODEC_FNS: [&str; 4] = ["from_bytes_be", "from_bytes_le", "to_bytes_be", "from_u64"];

fn raw_bigint_arith(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let p = &file.rel_path;
    if p.starts_with("crates/crypto/")
        || has_path_segment(p, "tests")
        || has_path_segment(p, "benches")
        || has_path_segment(p, "examples")
    {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_exempt(i) {
            continue;
        }
        if t.text == "modpow" {
            out.push(
                file.diag(
                    t,
                    "raw-bigint-arith",
                    Severity::Error,
                    "`modpow` outside crates/crypto — route exponentiation through the \
                 Group::exp/multi_exp Montgomery API"
                        .into(),
                ),
            );
        } else if t.text == "BigUint" {
            // `BigUint::from_bytes_be(...)` and friends are codec calls.
            let codec = toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks
                    .get(i + 2)
                    .is_some_and(|n| BIGINT_CODEC_FNS.contains(&n.text.as_str()));
            if !codec {
                out.push(
                    file.diag(
                        t,
                        "raw-bigint-arith",
                        Severity::Error,
                        "raw `BigUint` arithmetic outside crates/crypto — use the \
                     Group::exp/multi_exp Montgomery API (byte codecs like \
                     `BigUint::from_bytes_be` are exempt)"
                            .into(),
                    ),
                );
            }
        }
    }
}

// --- rule 2: unsafe-outside-kernels ---------------------------------------

/// The only modules that may contain `unsafe`: the runtime-dispatched
/// ChaCha20 SIMD kernels, whose preconditions the dispatcher proves with
/// `is_x86_feature_detected!`.
const UNSAFE_ALLOWLIST: [&str; 1] = ["crates/crypto/src/chacha.rs"];

fn unsafe_outside_kernels(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str());
    for t in &file.lexed.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !allowlisted {
            out.push(file.diag(
                t,
                "unsafe-outside-kernels",
                Severity::Error,
                "`unsafe` outside the allowlisted ChaCha20 kernel module".into(),
            ));
            continue;
        }
        if !safety_comment_precedes(file, t.line as usize) {
            out.push(
                file.diag(
                    t,
                    "unsafe-outside-kernels",
                    Severity::Error,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment \
                 (or a `# Safety` doc section) stating its precondition"
                        .into(),
                ),
            );
        }
    }
}

/// Walk upward from the `unsafe` token's line through comments, attributes
/// and blank lines; the adjacent comment block must state `SAFETY:` (or a
/// `# Safety` doc section).  The search stops at the first code line, so a
/// safety comment can never be borrowed from an unrelated neighbour.
fn safety_comment_precedes(file: &SourceFile, line: usize) -> bool {
    let marker = |l: usize| {
        let c = file.comment_on_line(l);
        c.contains("SAFETY:") || c.contains("# Safety")
    };
    if marker(line) {
        return true; // trailing comment on the unsafe line itself
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match file.kind_of_line(l) {
            LineKind::Comment | LineKind::Attr => {
                if marker(l) {
                    return true;
                }
            }
            LineKind::Blank => {}
            LineKind::Code => return false,
        }
    }
    false
}

// --- rule 3: unchecked-wire-narrowing -------------------------------------

fn unchecked_wire_narrowing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_wire_file(&file.rel_path) {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || file.is_exempt(i) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if matches!(target.text.as_str(), "usize" | "u32" | "u16") {
            out.push(file.diag(
                t,
                "unchecked-wire-narrowing",
                Severity::Error,
                format!(
                    "`as {}` in a wire-facing module — narrow with \
                     `{}::try_from` and surface the failure (WireError::Overflow \
                     or the module's error type)",
                    target.text, target.text
                ),
            ));
        }
    }
}

// --- rule 4: panic-in-decode-path -----------------------------------------

fn panic_in_decode_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_wire_file(&file.rel_path) {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_exempt(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
        };
        let panic_macro =
            |name: &str| t.text == name && toks.get(i + 1).is_some_and(|n| n.text == "!");
        let what = if method_call("unwrap") || method_call("expect") {
            format!(".{}()", t.text)
        } else if panic_macro("panic")
            || panic_macro("unreachable")
            || panic_macro("todo")
            || panic_macro("unimplemented")
        {
            format!("{}!", t.text)
        } else {
            continue;
        };
        out.push(file.diag(
            t,
            "panic-in-decode-path",
            Severity::Error,
            format!(
                "`{what}` in a transport-facing decode/ingest module — return the \
                 module's error type; attacker-controlled bytes must never panic \
                 the process"
            ),
        ));
    }
}

// --- rule 5: secret-compare -----------------------------------------------

/// Identifier fragments that mark an operand as authentication material.
const SECRET_NAMES: [&str; 7] = [
    "nonce",
    "sig",
    "signature",
    "tag",
    "mac",
    "fingerprint",
    "digest",
];

/// Files holding authentication logic, where a variable-time byte compare
/// leaks how many leading bytes matched.
const AUTH_FILES: [&str; 4] = ["auth.rs", "connauth.rs", "hmac.rs", "schnorr.rs"];

fn secret_compare(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !(has_path_segment(&file.rel_path, "src") && AUTH_FILES.contains(&basename(&file.rel_path)))
    {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !(t.text == "==" || t.text == "!=") || file.is_exempt(i) {
            continue;
        }
        // Examine identifiers on the operator's own line: if either operand
        // names authentication material, the compare must be constant-time.
        let line = t.line;
        let named: Vec<&str> = toks
            .iter()
            .filter(|n| n.line == line && n.kind == TokKind::Ident)
            .filter_map(|n| {
                let lower = n.text.to_ascii_lowercase();
                SECRET_NAMES
                    .iter()
                    .find(|s| lower.contains(*s))
                    .map(|_| n.text.as_str())
            })
            .collect();
        if let Some(name) = named.first() {
            out.push(file.diag(
                t,
                "secret-compare",
                Severity::Error,
                format!(
                    "`{}` on `{name}` in auth code — compare byte material with \
                     the constant-time dissent_crypto::xor::ct_eq",
                    t.text
                ),
            ));
        }
    }
}

// --- rule 6: lock-in-hot-path -----------------------------------------------

/// The per-round hot paths.  One lock acquisition per message would
/// serialize exactly the work the §3.6 pipeline exists to overlap, so
/// instrumentation on these paths must use the atomic cells of
/// `dissent-metrics`, never a `Mutex`/`RwLock`.
const HOT_PATH_FILES: [&str; 2] = ["crates/core/src/round.rs", "crates/core/src/pipeline.rs"];

fn is_hot_path_file(path: &str) -> bool {
    HOT_PATH_FILES.contains(&path) || path.starts_with("crates/dcnet/src/")
}

fn lock_in_hot_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_hot_path_file(&file.rel_path) {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_exempt(i) {
            continue;
        }
        let what = if t.text == "Mutex" || t.text == "RwLock" {
            format!("`{}`", t.text)
        } else if t.text == "lock"
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            "`.lock()`".to_string()
        } else {
            continue;
        };
        out.push(file.diag(
            t,
            "lock-in-hot-path",
            Severity::Error,
            format!(
                "{what} in a per-round hot path — round.rs/pipeline.rs/dcnet must stay \
                 lock-free; record shared state through atomics (the dissent-metrics \
                 cells are Arc<AtomicU64> for exactly this reason)"
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// One parsed `// lint:allow(<rules>): <reason>` comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rule names the waiver covers.
    pub rules: Vec<String>,
    /// Mandatory justification (text after the closing `):`).
    pub reason: String,
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// The source line the waiver covers: its own line if code shares it,
    /// otherwise the next line bearing a token.
    pub covers_line: Option<u32>,
    /// Set once a finding is waived by this waiver.
    pub used: bool,
}

/// Extract waivers from a file's comments.  A waiver is a comment whose
/// content *starts* with `lint:allow` once the comment markers are stripped
/// — prose that merely mentions the syntax (e.g. in backticks, in this
/// crate's own docs) is not a waiver.  Malformed waivers (unparsable,
/// unknown rule name, missing reason) are reported as `bad-waiver` errors —
/// an invariant exception that does not say *why* it is safe is itself a
/// violation.
pub fn extract_waivers(file: &SourceFile, out: &mut Vec<Diagnostic>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &file.lexed.comments {
        let content = c
            .text
            .trim_start_matches(|ch: char| matches!(ch, '/' | '*' | '!') || ch.is_whitespace());
        if !content.starts_with("lint:allow") {
            continue;
        }
        let bad = |message: String| Diagnostic {
            path: file.rel_path.clone(),
            line: c.line,
            col: c.col,
            rule: "bad-waiver",
            severity: Severity::Error,
            message,
            waived: false,
        };
        let rest = &content["lint:allow".len()..];
        let Some(inner_and_tail) = rest.strip_prefix('(') else {
            out.push(bad(
                "waiver must be written `lint:allow(<rule>): <reason>`".into()
            ));
            continue;
        };
        let Some(close) = inner_and_tail.find(')') else {
            out.push(bad("waiver rule list is missing its closing `)`".into()));
            continue;
        };
        let rules: Vec<String> = inner_and_tail[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if rules.is_empty() {
            out.push(bad("waiver names no rules".into()));
            continue;
        }
        let known: Vec<&str> = registry().iter().map(|r| r.name).collect();
        let mut ok = true;
        for r in &rules {
            if !known.contains(&r.as_str()) {
                out.push(bad(format!(
                    "waiver names unknown rule `{r}` (known: {})",
                    known.join(", ")
                )));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        let tail = inner_and_tail[close + 1..].trim_start();
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        if reason.is_empty() {
            out.push(bad(
                "waiver has no reason — write `lint:allow(<rule>): <why this is safe>`".into(),
            ));
            continue;
        }
        let covers_line = if file
            .line_has_tok
            .get(c.line as usize)
            .copied()
            .unwrap_or(false)
        {
            Some(c.line)
        } else {
            file.next_token_line(c.end_line as usize + 1)
        };
        waivers.push(Waiver {
            rules,
            reason,
            line: c.line,
            col: c.col,
            covers_line,
            used: false,
        });
    }
    waivers
}

/// Mark diagnostics covered by a waiver, and report unused waivers as
/// warnings (a waiver that no longer waives anything is stale
/// documentation).
pub fn apply_waivers(
    file: &SourceFile,
    waivers: &mut [Waiver],
    diags: &mut [Diagnostic],
    out: &mut Vec<Diagnostic>,
) {
    for d in diags.iter_mut() {
        if d.path != file.rel_path || d.rule == "bad-waiver" {
            continue;
        }
        for w in waivers.iter_mut() {
            if w.covers_line == Some(d.line) && w.rules.iter().any(|r| r == d.rule) {
                d.waived = true;
                w.used = true;
            }
        }
    }
    for w in waivers.iter().filter(|w| !w.used) {
        out.push(Diagnostic {
            path: file.rel_path.clone(),
            line: w.line,
            col: w.col,
            rule: "unused-waiver",
            severity: Severity::Warning,
            message: format!(
                "waiver for {} covers no finding — remove it or move it next to \
                 the line it excuses",
                w.rules.join(", ")
            ),
            waived: false,
        });
    }
}
