//! The `dissent-lint` binary: lint the workspace tree and exit non-zero on
//! any unwaived error, printing the stable machine-readable summary last.
//!
//! Usage: `dissent-lint [ROOT]` (default: the current directory — run it
//! from the workspace root, e.g. `cargo run -p dissent-lint --release`).
//! `dissent-lint --rules` lists the registered rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--rules" => {
                for rule in dissent_lint::rules::registry() {
                    println!(
                        "{} [{}]\n    {}",
                        rule.name,
                        rule.severity.label(),
                        rule.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: dissent-lint [--rules] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }

    let report = match dissent_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dissent-lint: cannot read {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    println!("{}", report.summary_line());

    let errors = report.unwaived_errors();
    if errors > 0 {
        eprintln!("dissent-lint: {errors} unwaived finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
