//! Property-based equivalence tests for the DC-net pad engine.
//!
//! The fused (`pad_xor_into`), seeked (`pad_bit`) and sharded
//! (`accumulate_pads_sharded`, parallel `server_ciphertext`) fast paths
//! must be byte-identical to the straightforward generate-then-XOR
//! reference for every length, bit position and shard count.  The pool is
//! forced to 4 workers (this file is its own test binary, hence its own
//! process) so the parallel paths really execute on multiple threads even
//! on a single-core CI box.

use dissent_dcnet::client::{ClientDcnet, Submission};
use dissent_dcnet::pad::{
    accumulate_pads_sharded, get_bit, pad, pad_bit, pad_bit_reference, pad_xor_into, xor_into,
    SharedSecret,
};
use dissent_dcnet::server::{server_ciphertext, ClientId};
use dissent_dcnet::slots::{SlotConfig, SlotSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn force_multithreaded_pool() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

fn secret_from(seed: u64, tag: u64) -> SharedSecret {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_be_bytes());
    s[8..16].copy_from_slice(&tag.to_be_bytes());
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn seeked_pad_bit_equals_bulk_pad_across_block_boundaries(
        seed in any::<u64>(),
        round in any::<u64>(),
    ) {
        force_multithreaded_pool();
        let secret = secret_from(seed, 1);
        let total_len = 200; // 1600 bits: covers three ChaCha block boundaries
        let full = pad(&secret, round, total_len);
        // The ChaCha20 block is 512 bits: 511/512/513 straddle the first
        // boundary, 1023/1024/1025 the second.
        for bit in [0usize, 1, 7, 8, 63, 64, 510, 511, 512, 513, 1023, 1024, 1025, 1599] {
            prop_assert_eq!(pad_bit(&secret, round, total_len, bit), get_bit(&full, bit));
            prop_assert_eq!(
                pad_bit(&secret, round, total_len, bit),
                pad_bit_reference(&secret, round, total_len, bit)
            );
        }
    }

    #[test]
    fn seeked_pad_bit_equals_reference_at_random_positions(
        seed in any::<u64>(),
        round in any::<u64>(),
        bit in 0usize..4096,
    ) {
        force_multithreaded_pool();
        let secret = secret_from(seed, 2);
        let total_len = 512;
        prop_assert_eq!(
            pad_bit(&secret, round, total_len, bit),
            pad_bit_reference(&secret, round, total_len, bit)
        );
    }

    #[test]
    fn bulk_pad_equals_bytewise_pad_across_wide_strides(
        seed in any::<u64>(),
        round in any::<u64>(),
    ) {
        // The bulk generator now consumes the keystream in 256 B
        // multi-block strides; drawing the same pad one byte at a time
        // forces the scalar buffered path the whole way.  Both must agree
        // at every stride-straddling length.
        force_multithreaded_pool();
        let secret = secret_from(seed, 9);
        for len in [1usize, 255, 256, 257, 511, 512, 513, 700] {
            let bulk = pad(&secret, round, len);
            let mut prng = dissent_crypto::prng::DetPrng::new(
                &secret,
                &{
                    let mut label = b"dissent-dcnet-pad-round-".to_vec();
                    label.extend_from_slice(&round.to_be_bytes());
                    label
                },
            );
            let bytewise: Vec<u8> = (0..len)
                .map(|_| {
                    let mut b = [0u8; 1];
                    prng.fill(&mut b);
                    b[0]
                })
                .collect();
            prop_assert_eq!(&bulk, &bytewise);
        }
    }

    #[test]
    fn fused_pad_xor_equals_pad_then_xor(
        seed in any::<u64>(),
        round in any::<u64>(),
        len in 1usize..700,
    ) {
        force_multithreaded_pool();
        let secret = secret_from(seed, 3);
        let base: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(37) ^ i >> 3) as u8).collect();
        let mut expected = base.clone();
        xor_into(&mut expected, &pad(&secret, round, len));
        let mut fused = base;
        pad_xor_into(&secret, round, &mut fused);
        prop_assert_eq!(fused, expected);
    }

    #[test]
    fn sharded_accumulation_matches_serial_for_1_to_4_shards(
        seed in any::<u64>(),
        round in any::<u64>(),
        n_secrets in 1usize..20,
        len in 1usize..400,
    ) {
        force_multithreaded_pool();
        let secrets: Vec<SharedSecret> =
            (0..n_secrets).map(|i| secret_from(seed, 100 + i as u64)).collect();
        let mut serial = vec![0u8; len];
        for s in &secrets {
            xor_into(&mut serial, &pad(s, round, len));
        }
        for shards in 1usize..=4 {
            let mut sharded = vec![0u8; len];
            accumulate_pads_sharded(&mut sharded, &secrets, round, shards);
            prop_assert_eq!(&sharded, &serial);
        }
    }

    #[test]
    fn parallel_server_ciphertext_is_byte_identical_to_serial(
        seed in any::<u64>(),
        round in any::<u64>(),
        n_clients in 1usize..40,
    ) {
        force_multithreaded_pool();
        let total_len = 300;
        let composite: Vec<ClientId> = (0..n_clients as ClientId).collect();
        let secrets: BTreeMap<ClientId, SharedSecret> = composite
            .iter()
            .map(|&c| (c, secret_from(seed, 200 + c as u64)))
            .collect();
        let own: BTreeMap<ClientId, Vec<u8>> = composite
            .iter()
            .filter(|&&c| c % 3 == 0)
            .map(|&c| (c, pad(&secret_from(seed, 300 + c as u64), round, total_len)))
            .collect();
        // Serial reference: generate-then-XOR, one client at a time.
        let mut expected = vec![0u8; total_len];
        for c in &composite {
            xor_into(&mut expected, &pad(&secrets[c], round, total_len));
        }
        for ct in own.values() {
            xor_into(&mut expected, ct);
        }
        // The production path shards across the 4-worker pool.
        let got = server_ciphertext(round, total_len, &composite, &secrets, &own);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn client_ciphertext_unchanged_by_parallel_pad_path(
        seed in any::<u64>(),
        n_servers in 1usize..8,
    ) {
        force_multithreaded_pool();
        let secrets: Vec<SharedSecret> =
            (0..n_servers).map(|j| secret_from(seed, 400 + j as u64)).collect();
        let schedule = SlotSchedule::new_all_open(4, SlotConfig::default());
        let layout = schedule.layout();
        let client = ClientDcnet::new(2, secrets.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = client.ciphertext(&mut rng, &layout, &Submission::null());
        // Null submission: the ciphertext is exactly the XOR of the pads.
        let mut expected = vec![0u8; layout.total_len];
        for s in &secrets {
            xor_into(&mut expected, &pad(s, layout.round, layout.total_len));
        }
        prop_assert_eq!(ct.ciphertext, expected);
    }
}
