//! The accusation process (paper §3.9): tracing and expelling disruptors.
//!
//! The scheme has three stages.
//!
//! 1. **Witness**: the victim of a disruption finds a *witness bit* — a bit
//!    that was 0 in its intended slot wire image but came out 1 in the
//!    round's cleartext.  The self-randomizing padding guarantees such a bit
//!    exists with probability ½ per flipped bit.
//! 2. **Accusation**: the victim transmits an accusation (round, slot, bit
//!    index) signed by its pseudonym key through the disruption-resistant
//!    accusation shuffle (handled by `dissent-shuffle`/`dissent-core`).
//! 3. **Blame**: the servers reveal every PRNG bit that contributed to the
//!    witness position and jointly locate the party that XORed in an
//!    unmatched 1: a server that withheld data (case *a*), a server whose
//!    revealed bits do not reproduce the ciphertext it sent (case *b*), or a
//!    client whose ciphertext bit disagrees with the XOR of its per-server
//!    pad bits (case *c*).  An accused client can *rebut* by proving a server
//!    lied about their shared pad bit.
//!
//! This module implements the witness search, the blame evaluation as a pure
//! function over the revealed bits, and the rebuttal check (built on a
//! Chaum–Pedersen DLEQ proof over the raw Diffie–Hellman share).

use crate::pad::{get_bit, pad_bit, SharedSecret};
use crate::server::{ClientId, ServerId};
use dissent_crypto::chaum_pedersen::{self, DleqProof};
use dissent_crypto::dh::derive_shared_key;
use dissent_crypto::group::{Element, Group};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An accusation naming a witness bit, to be signed with the slot owner's
/// pseudonym key by the caller.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accusation {
    /// Round in which the disruption occurred.
    pub round: u64,
    /// The victim's slot index π(i).
    pub slot: usize,
    /// Bit index (within the whole round cleartext) of the witness bit.
    pub bit: usize,
}

impl Accusation {
    /// Canonical byte encoding, the message signed by the pseudonym key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = b"dissent-accusation".to_vec();
        out.extend_from_slice(&self.round.to_be_bytes());
        out.extend_from_slice(&(self.slot as u64).to_be_bytes());
        out.extend_from_slice(&(self.bit as u64).to_be_bytes());
        out
    }
}

/// Search the victim's slot for a witness bit.
///
/// * `intended` — the wire image the victim submitted for its slot;
/// * `observed` — the bytes of that slot in the round output;
/// * `slot_offset` — byte offset of the slot within the round cleartext.
///
/// Returns an [`Accusation`] for the first 0→1 flip found.
pub fn find_witness(
    round: u64,
    slot: usize,
    slot_offset: usize,
    intended: &[u8],
    observed: &[u8],
) -> Option<Accusation> {
    dissent_crypto::padding::find_witness_bit(intended, observed).map(|bit| Accusation {
        round,
        slot,
        bit: slot_offset * 8 + bit,
    })
}

/// Everything one server reveals about the witness bit position.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerReveal {
    /// `s_ij[k]` — the pad bit this server shares with each client in the
    /// composite list `l`.
    pub pad_bits: BTreeMap<ClientId, bool>,
    /// `c_i[k]` — the witness-position bit of each client ciphertext this
    /// server received directly (clients in `l'_j`).
    pub client_ct_bits: BTreeMap<ClientId, bool>,
    /// `s_j[k]` — the witness-position bit of the server ciphertext it sent
    /// in the accused round (checked against the stored ciphertext by the
    /// caller before evaluation).
    pub server_ct_bit: bool,
}

/// Minimum composite size before the per-client pad-bit derivations are
/// sharded across the pool (each is one HKDF + one ChaCha block since
/// [`pad_bit`] seeks, so small reveals stay serial).
const PARALLEL_REVEAL_MIN_CLIENTS: usize = 64;

/// Honest-server helper: build a [`ServerReveal`] from the server's own
/// round state.  `own_ciphertexts` is generic over the buffer type so the
/// blame path can read shared `Arc<[u8]>` ciphertexts without copying them.
pub fn build_server_reveal<B: AsRef<[u8]>>(
    round: u64,
    total_len: usize,
    bit: usize,
    composite: &[ClientId],
    client_secrets: &BTreeMap<ClientId, SharedSecret>,
    own_ciphertexts: &BTreeMap<ClientId, B>,
    server_ciphertext: &[u8],
) -> ServerReveal {
    let threads = rayon::current_num_threads();
    let pad_bits: BTreeMap<ClientId, bool> =
        if threads > 1 && composite.len() >= PARALLEL_REVEAL_MIN_CLIENTS {
            use rayon::prelude::*;
            let chunk = composite.len().div_ceil(threads);
            let mut parts: Vec<Vec<(ClientId, bool)>> = Vec::new();
            composite
                .par_chunks(chunk)
                .map(|clients| {
                    clients
                        .iter()
                        .map(|c| (*c, pad_bit(&client_secrets[c], round, total_len, bit)))
                        .collect()
                })
                .collect_into_vec(&mut parts);
            parts.into_iter().flatten().collect()
        } else {
            composite
                .iter()
                .map(|c| (*c, pad_bit(&client_secrets[c], round, total_len, bit)))
                .collect()
        };
    let client_ct_bits = own_ciphertexts
        .iter()
        .map(|(c, ct)| (*c, get_bit(ct.as_ref(), bit)))
        .collect();
    ServerReveal {
        pad_bits,
        client_ct_bits,
        server_ct_bit: get_bit(server_ciphertext, bit),
    }
}

/// The verdict of a blame evaluation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlameOutcome {
    /// Case (a): a server failed to reveal the required bits.
    ServerWithheldData(ServerId),
    /// Case (b): a server's revealed bits do not reproduce the server
    /// ciphertext it previously sent — it equivocated.
    ServerEquivocated(ServerId),
    /// Case (c): these clients' ciphertext bits do not match the XOR of
    /// their per-server pad bits.  Each is a disruptor unless it produces a
    /// valid rebuttal proving a server lied about a shared pad bit.
    ClientsAccused(Vec<ClientId>),
    /// The revealed data is fully consistent with the accused output bit —
    /// the accusation does not identify a disruptor (e.g. it was forged).
    Consistent,
}

/// Evaluate the blame data for one witness bit.
///
/// * `composite` — the composite client list `l` of the accused round;
/// * `assignment` — which server received each client's ciphertext directly
///   (the trimmed lists `l'_j` flattened to a map);
/// * `reveals` — every server's [`ServerReveal`];
/// * `observed_bit` — the value of the witness bit in the round cleartext
///   (must be 1 for a valid accusation, but the evaluation recomputes the
///   full equation regardless).
pub fn evaluate_blame(
    composite: &[ClientId],
    assignment: &BTreeMap<ClientId, ServerId>,
    reveals: &BTreeMap<ServerId, ServerReveal>,
    observed_bit: bool,
) -> BlameOutcome {
    // Case (a): every server must reveal a pad bit for every composite client
    // and a ciphertext bit for every client assigned to it.
    for (&server, reveal) in reveals {
        for client in composite {
            if !reveal.pad_bits.contains_key(client) {
                return BlameOutcome::ServerWithheldData(server);
            }
            if assignment.get(client) == Some(&server)
                && !reveal.client_ct_bits.contains_key(client)
            {
                return BlameOutcome::ServerWithheldData(server);
            }
        }
    }

    // Case (b): each server's revealed bits must reproduce the server
    // ciphertext bit it sent: s_j[k] == ⊕_{i∈l} s_ij[k] ⊕ ⊕_{i∈l'_j} c_i[k].
    for (&server, reveal) in reveals {
        let mut expected = false;
        for client in composite {
            expected ^= reveal.pad_bits[client];
            if assignment.get(client) == Some(&server) {
                expected ^= reveal.client_ct_bits[client];
            }
        }
        if expected != reveal.server_ct_bit {
            return BlameOutcome::ServerEquivocated(server);
        }
    }

    // Case (c): for each client, the ciphertext bit it submitted must equal
    // the XOR of the pad bits it shares with all servers (its message bit at
    // the witness position is 0 by definition of a witness bit).
    let mut accused = Vec::new();
    for client in composite {
        let Some(&server) = assignment.get(client) else {
            continue;
        };
        let ct_bit = reveals[&server].client_ct_bits[client];
        let pad_xor = reveals
            .values()
            .fold(false, |acc, r| acc ^ r.pad_bits[client]);
        if ct_bit != pad_xor {
            accused.push(*client);
        }
    }
    if !accused.is_empty() {
        return BlameOutcome::ClientsAccused(accused);
    }

    // All revealed data is internally consistent.  (The caller has already
    // checked each revealed server_ct_bit against the commitments/stored
    // ciphertexts of the accused round, and that the observed output bit is
    // the XOR of the server bits; `observed_bit` is carried in the signature
    // for that cross-check and future auditing.)
    let _ = observed_bit;
    BlameOutcome::Consistent
}

/// A client's rebuttal against a case-(c) accusation: "server `server` lied
/// about our shared pad bit."  The client reveals the raw Diffie–Hellman
/// element shared with that server plus a DLEQ proof of its correctness, so
/// every party can recompute the true pad bit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rebuttal {
    /// The accused client.
    pub client: ClientId,
    /// The server the client claims equivocated.
    pub server: ServerId,
    /// The raw shared element `g^{x_i x_j}`.
    pub raw_shared: Element,
    /// DLEQ proof: `log_g(client_pk) == log_{server_pk}(raw_shared)`.
    pub proof: DleqProof,
}

/// Outcome of checking a rebuttal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebuttalOutcome {
    /// The rebuttal is valid and the named server did lie about the pad bit.
    ServerLied(ServerId),
    /// The rebuttal failed (bad proof, or the server's revealed bit was in
    /// fact correct): the client stands accused as the disruptor.
    ClientIsDisruptor(ClientId),
}

/// Parameters needed to recompute the disputed pad bit from a revealed raw
/// shared element.
#[derive(Clone, Debug)]
pub struct RebuttalContext<'a> {
    /// The session group.
    pub group: &'a Group,
    /// The accused client's DH public key.
    pub client_pk: &'a Element,
    /// The blamed server's DH public key.
    pub server_pk: &'a Element,
    /// Context label used when deriving `K_ij` (the group identifier).
    pub key_context: &'a [u8],
    /// The accused round.
    pub round: u64,
    /// Total cleartext length of the accused round.
    pub total_len: usize,
    /// The witness bit index.
    pub bit: usize,
}

/// Produce a rebuttal on behalf of an honest client.
pub fn build_rebuttal<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    group: &Group,
    client: ClientId,
    server: ServerId,
    client_secret_scalar: &dissent_crypto::group::Scalar,
    server_pk: &Element,
) -> Rebuttal {
    let raw_shared = group.exp(server_pk, client_secret_scalar);
    let proof = chaum_pedersen::prove(
        group,
        rng,
        &group.generator(),
        server_pk,
        client_secret_scalar,
        b"dissent-rebuttal",
    );
    Rebuttal {
        client,
        server,
        raw_shared,
        proof,
    }
}

/// Verify a rebuttal and decide who the disruptor is.
///
/// `server_claimed_bit` is the pad bit `s_ij[k]` the blamed server revealed
/// during the blame evaluation.
pub fn check_rebuttal(
    ctx: &RebuttalContext<'_>,
    rebuttal: &Rebuttal,
    server_claimed_bit: bool,
) -> RebuttalOutcome {
    // 1. The DLEQ proof must show raw_shared = server_pk^{x_i} for the same
    //    x_i with client_pk = g^{x_i}.
    let proof_ok = chaum_pedersen::verify(
        ctx.group,
        &ctx.group.generator(),
        ctx.server_pk,
        ctx.client_pk,
        &rebuttal.raw_shared,
        &rebuttal.proof,
        b"dissent-rebuttal",
    );
    if !proof_ok {
        return RebuttalOutcome::ClientIsDisruptor(rebuttal.client);
    }
    rebuttal_bit_outcome(ctx, rebuttal, server_claimed_bit)
}

/// Decide a rebuttal whose DLEQ proof has already been verified: recompute
/// `K_ij` from the revealed raw shared element and compare the true pad bit
/// with what the server claimed.
fn rebuttal_bit_outcome(
    ctx: &RebuttalContext<'_>,
    rebuttal: &Rebuttal,
    server_claimed_bit: bool,
) -> RebuttalOutcome {
    let key = derive_shared_key(
        ctx.group,
        &rebuttal.raw_shared,
        ctx.client_pk,
        ctx.server_pk,
        ctx.key_context,
    );
    let true_bit = pad_bit(&key, ctx.round, ctx.total_len, ctx.bit);
    if true_bit != server_claimed_bit {
        RebuttalOutcome::ServerLied(rebuttal.server)
    } else {
        RebuttalOutcome::ClientIsDisruptor(rebuttal.client)
    }
}

/// Check many rebuttals at once (a disruption wave produces one per framed
/// client): all DLEQ proofs are folded into a single
/// [`chaum_pedersen::batch_verify`] call, and only if the batch rejects does
/// the check fall back to per-rebuttal verification — so per-rebuttal
/// outcomes are always exactly those of [`check_rebuttal`].
///
/// Each item is `(context, rebuttal, server_claimed_bit)`; every context
/// must reference the same session group.
pub fn check_rebuttals(items: &[(&RebuttalContext<'_>, &Rebuttal, bool)]) -> Vec<RebuttalOutcome> {
    let Some((first_ctx, _, _)) = items.first() else {
        return Vec::new();
    };
    let group = first_ctx.group;
    debug_assert!(items.iter().all(|(c, _, _)| c.group == group));
    let generator = group.generator();
    let batch: Vec<chaum_pedersen::DleqBatchItem> = items
        .iter()
        .map(|(ctx, rebuttal, _)| chaum_pedersen::DleqBatchItem {
            g: &generator,
            h: ctx.server_pk,
            a: ctx.client_pk,
            b: &rebuttal.raw_shared,
            proof: &rebuttal.proof,
            context: b"dissent-rebuttal",
        })
        .collect();
    if chaum_pedersen::batch_verify(group, &batch) {
        items
            .iter()
            .map(|(ctx, rebuttal, claimed)| rebuttal_bit_outcome(ctx, rebuttal, *claimed))
            .collect()
    } else {
        items
            .iter()
            .map(|(ctx, rebuttal, claimed)| check_rebuttal(ctx, rebuttal, *claimed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::{pad, set_bit, xor_into};
    use dissent_crypto::dh::DhKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a consistent round: n clients, m servers, returns everything
    /// needed for blame evaluation.
    struct Fixture {
        round: u64,
        total_len: usize,
        composite: Vec<ClientId>,
        assignment: BTreeMap<ClientId, ServerId>,
        client_cts: BTreeMap<ClientId, Vec<u8>>,
        server_secret_maps: Vec<BTreeMap<ClientId, SharedSecret>>,
        server_cts: BTreeMap<ServerId, Vec<u8>>,
        cleartext: Vec<u8>,
    }

    #[allow(clippy::needless_range_loop)]
    fn fixture(n: usize, m: usize, disruptor: Option<(usize, usize)>) -> Fixture {
        let round = 3;
        let total_len = 64;
        let mut secrets = vec![vec![[0u8; 32]; m]; n];
        let mut server_secret_maps: Vec<BTreeMap<ClientId, SharedSecret>> =
            vec![BTreeMap::new(); m];
        for (i, row) in secrets.iter_mut().enumerate() {
            for (j, s) in row.iter_mut().enumerate() {
                s[0] = i as u8;
                s[1] = j as u8;
                s[2] = 0xab;
                server_secret_maps[j].insert(i as ClientId, *s);
            }
        }
        let composite: Vec<ClientId> = (0..n as ClientId).collect();
        let assignment: BTreeMap<ClientId, ServerId> = (0..n)
            .map(|i| (i as ClientId, (i % m) as ServerId))
            .collect();

        // Every client sends an all-zero cleartext (cover traffic); the
        // disruptor, if any, flips a bit in its ciphertext.
        let mut client_cts = BTreeMap::new();
        for i in 0..n {
            let mut ct = vec![0u8; total_len];
            for j in 0..m {
                xor_into(&mut ct, &pad(&secrets[i][j], round, total_len));
            }
            if let Some((d, bit)) = disruptor {
                if d == i {
                    let flipped = !get_bit(&ct, bit);
                    set_bit(&mut ct, bit, flipped);
                }
            }
            client_cts.insert(i as ClientId, ct);
        }

        let mut server_cts = BTreeMap::new();
        for j in 0..m {
            let own: BTreeMap<ClientId, Vec<u8>> = client_cts
                .iter()
                .filter(|(c, _)| assignment[c] == j as ServerId)
                .map(|(c, ct)| (*c, ct.clone()))
                .collect();
            let sct = crate::server::server_ciphertext(
                round,
                total_len,
                &composite,
                &server_secret_maps[j],
                &own,
            );
            server_cts.insert(j as ServerId, sct);
        }
        let cleartext = crate::server::combine(total_len, &server_cts);
        Fixture {
            round,
            total_len,
            composite,
            assignment,
            client_cts,
            server_secret_maps,
            server_cts,
            cleartext,
        }
    }

    fn reveals_for(f: &Fixture, bit: usize) -> BTreeMap<ServerId, ServerReveal> {
        f.server_cts
            .keys()
            .map(|&j| {
                let own: BTreeMap<ClientId, Vec<u8>> = f
                    .client_cts
                    .iter()
                    .filter(|(c, _)| f.assignment[c] == j)
                    .map(|(c, ct)| (*c, ct.clone()))
                    .collect();
                (
                    j,
                    build_server_reveal(
                        f.round,
                        f.total_len,
                        bit,
                        &f.composite,
                        &f.server_secret_maps[j as usize],
                        &own,
                        &f.server_cts[&j],
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn disruptor_client_is_traced() {
        let bit = 137;
        let f = fixture(5, 3, Some((2, bit)));
        // The disruption flips the cleartext bit from 0 to 1.
        assert!(get_bit(&f.cleartext, bit));
        let reveals = reveals_for(&f, bit);
        let outcome = evaluate_blame(&f.composite, &f.assignment, &reveals, true);
        assert_eq!(outcome, BlameOutcome::ClientsAccused(vec![2]));
    }

    #[test]
    fn honest_round_is_consistent() {
        let f = fixture(4, 2, None);
        let reveals = reveals_for(&f, 99);
        let outcome = evaluate_blame(
            &f.composite,
            &f.assignment,
            &reveals,
            get_bit(&f.cleartext, 99),
        );
        assert_eq!(outcome, BlameOutcome::Consistent);
    }

    #[test]
    fn withholding_server_is_blamed() {
        let bit = 12;
        let f = fixture(4, 2, Some((1, bit)));
        let mut reveals = reveals_for(&f, bit);
        reveals.get_mut(&1).unwrap().pad_bits.remove(&3);
        let outcome = evaluate_blame(&f.composite, &f.assignment, &reveals, true);
        assert_eq!(outcome, BlameOutcome::ServerWithheldData(1));
    }

    #[test]
    fn equivocating_server_is_blamed() {
        let bit = 40;
        let f = fixture(4, 2, None);
        let mut reveals = reveals_for(&f, bit);
        // Server 0 lies about one pad bit, so its revealed bits no longer
        // reproduce the ciphertext it sent.
        let lie = !reveals[&0].pad_bits[&2];
        reveals.get_mut(&0).unwrap().pad_bits.insert(2, lie);
        let outcome = evaluate_blame(&f.composite, &f.assignment, &reveals, false);
        // Either the server is caught directly (case b) or the lie lands on
        // client 2 (case c) — in this construction case (b) fires because the
        // server ciphertext bit no longer matches.
        assert_eq!(outcome, BlameOutcome::ServerEquivocated(0));
    }

    #[test]
    fn framed_client_wins_rebuttal() {
        // A malicious server lies about a pad bit *and* adjusts its own
        // ciphertext bit so case (b) passes, framing the client.  The client
        // rebuts with the DLEQ-proved shared element and the server is caught.
        let mut rng = StdRng::seed_from_u64(77);
        let group = Group::testing_256();
        let client_kp = DhKeyPair::generate(&group, &mut rng);
        let server_kp = DhKeyPair::generate(&group, &mut rng);
        let key_context = b"group-xyz";
        let true_key = client_kp.shared_secret(&group, server_kp.public(), key_context);
        let round = 9;
        let total_len = 32;
        let bit = 100;
        let true_bit = pad_bit(&true_key, round, total_len, bit);

        // Server claims the opposite bit.
        let claimed = !true_bit;
        let rebuttal = build_rebuttal(
            &mut rng,
            &group,
            4,
            1,
            client_kp.secret(),
            server_kp.public(),
        );
        let ctx = RebuttalContext {
            group: &group,
            client_pk: client_kp.public(),
            server_pk: server_kp.public(),
            key_context,
            round,
            total_len,
            bit,
        };
        assert_eq!(
            check_rebuttal(&ctx, &rebuttal, claimed),
            RebuttalOutcome::ServerLied(1)
        );
        // If the server told the truth, the rebuttal fails and the client is
        // confirmed as the disruptor.
        assert_eq!(
            check_rebuttal(&ctx, &rebuttal, true_bit),
            RebuttalOutcome::ClientIsDisruptor(4)
        );
    }

    #[test]
    fn batched_rebuttal_check_agrees_with_singles() {
        // Three rebuttals — a lying server, a truthful server, and a forged
        // proof — checked in one batch must produce exactly the per-rebuttal
        // outcomes of check_rebuttal.
        let mut rng = StdRng::seed_from_u64(79);
        let group = Group::testing_256();
        let server_kp = DhKeyPair::generate(&group, &mut rng);
        let key_context = b"group-xyz";
        let (round, total_len, bit) = (4u64, 32usize, 77usize);

        let clients: Vec<DhKeyPair> = (0..3)
            .map(|_| DhKeyPair::generate(&group, &mut rng))
            .collect();
        let true_bits: Vec<bool> = clients
            .iter()
            .map(|c| {
                let key = c.shared_secret(&group, server_kp.public(), key_context);
                pad_bit(&key, round, total_len, bit)
            })
            .collect();
        let mut rebuttals: Vec<Rebuttal> = clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                build_rebuttal(
                    &mut rng,
                    &group,
                    i as ClientId,
                    0,
                    c.secret(),
                    server_kp.public(),
                )
            })
            .collect();
        // Client 2's proof is forged (wrong secret).
        let other = DhKeyPair::generate(&group, &mut rng);
        rebuttals[2] = build_rebuttal(&mut rng, &group, 2, 0, other.secret(), server_kp.public());
        // Server lied about client 0's bit, told the truth about 1 and 2.
        let claimed = [!true_bits[0], true_bits[1], true_bits[2]];

        let ctxs: Vec<RebuttalContext> = clients
            .iter()
            .map(|c| RebuttalContext {
                group: &group,
                client_pk: c.public(),
                server_pk: server_kp.public(),
                key_context,
                round,
                total_len,
                bit,
            })
            .collect();
        let items: Vec<(&RebuttalContext, &Rebuttal, bool)> = ctxs
            .iter()
            .zip(&rebuttals)
            .zip(claimed)
            .map(|((c, r), b)| (c, r, b))
            .collect();
        let batched = check_rebuttals(&items);
        let singles: Vec<RebuttalOutcome> = items
            .iter()
            .map(|(c, r, b)| check_rebuttal(c, r, *b))
            .collect();
        assert_eq!(batched, singles);
        assert_eq!(batched[0], RebuttalOutcome::ServerLied(0));
        assert_eq!(batched[1], RebuttalOutcome::ClientIsDisruptor(1));
        assert_eq!(batched[2], RebuttalOutcome::ClientIsDisruptor(2));
        assert!(check_rebuttals(&[]).is_empty());
    }

    #[test]
    fn forged_rebuttal_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(78);
        let group = Group::testing_256();
        let client_kp = DhKeyPair::generate(&group, &mut rng);
        let server_kp = DhKeyPair::generate(&group, &mut rng);
        let other = DhKeyPair::generate(&group, &mut rng);
        // Client builds a rebuttal with the wrong secret (not matching its pk).
        let rebuttal = build_rebuttal(&mut rng, &group, 0, 0, other.secret(), server_kp.public());
        let ctx = RebuttalContext {
            group: &group,
            client_pk: client_kp.public(),
            server_pk: server_kp.public(),
            key_context: b"g",
            round: 1,
            total_len: 16,
            bit: 5,
        };
        assert_eq!(
            check_rebuttal(&ctx, &rebuttal, false),
            RebuttalOutcome::ClientIsDisruptor(0)
        );
    }

    #[test]
    fn witness_search_builds_accusation() {
        let intended = vec![0u8; 8];
        let mut observed = intended.clone();
        set_bit(&mut observed, 19, true);
        let acc = find_witness(5, 2, 100, &intended, &observed).unwrap();
        assert_eq!(
            acc,
            Accusation {
                round: 5,
                slot: 2,
                bit: 100 * 8 + 19
            }
        );
        assert!(find_witness(5, 2, 100, &intended, &intended).is_none());
        // The byte encoding is stable and unambiguous.
        assert_eq!(acc.to_bytes().len(), "dissent-accusation".len() + 24);
    }
}
