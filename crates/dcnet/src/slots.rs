//! Slot scheduling: the well-known function `S(r, π(i), H)` of Algorithm 1.
//!
//! The key shuffle assigns every client a secret permutation slot `π(i)`.
//! Each slot owns two regions of every round's cleartext (paper §3.8):
//!
//! * a **one-bit request slot** — setting it asks the servers to open the
//!   owner's message slot in the next round;
//! * a **variable-length message slot** — initially closed (length 0); once
//!   open it carries a padded payload containing a *length field* (to grow,
//!   shrink or close the slot in subsequent rounds), a *k-bit shuffle-request
//!   field* (any non-zero value triggers an accusation shuffle), and the
//!   anonymous message itself.
//!
//! Because the schedule is a deterministic function of the round number and
//! the history of prior round outputs, every client and server derives the
//! identical layout without communication.

use crate::pad::get_bit;
use dissent_crypto::padding::{self, Decoded};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Number of bits in the shuffle-request field (the paper's `k`).
pub const SHUFFLE_REQUEST_BITS: usize = 16;

/// Fixed per-payload header: 4-byte next-length field + 2-byte shuffle request.
pub const PAYLOAD_HEADER_LEN: usize = 6;

/// Configuration of the slot scheduler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotConfig {
    /// Length (bytes) a message slot opens to when its request bit is seen.
    pub default_open_len: usize,
    /// Maximum length a slot may request.
    pub max_len: usize,
    /// How many consecutive empty rounds an open slot tolerates before the
    /// scheduler closes it (covers silent or disconnected owners).
    pub grace_rounds: u32,
}

impl Default for SlotConfig {
    fn default() -> Self {
        SlotConfig {
            // Enough room for the padding overhead, header and a 128-byte
            // microblog post — the paper's workload unit.
            default_open_len: 192,
            max_len: 1 << 20,
            grace_rounds: 2,
        }
    }
}

impl SlotConfig {
    /// The smallest usable open length (padding overhead + header + 1 byte).
    pub fn min_open_len(&self) -> usize {
        padding::OVERHEAD + PAYLOAD_HEADER_LEN + 1
    }

    /// Clamp a requested length into the valid range (0 means "close").
    pub fn clamp_len(&self, requested: usize) -> usize {
        if requested == 0 {
            0
        } else {
            requested.clamp(self.min_open_len(), self.max_len)
        }
    }

    /// Slot length needed to carry a message of `msg_len` bytes.
    pub fn len_for_message(&self, msg_len: usize) -> usize {
        self.clamp_len(msg_len + padding::OVERHEAD + PAYLOAD_HEADER_LEN)
    }
}

/// Dynamic state of one slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotState {
    /// Current message-slot length in bytes (0 = closed).
    pub length: usize,
    /// Consecutive rounds the open slot produced an empty output.
    pub empty_streak: u32,
    /// Whether the request bit was observed set in the previous round.
    pub pending_open: bool,
}

impl SlotState {
    fn closed() -> Self {
        SlotState {
            length: 0,
            empty_streak: 0,
            pending_open: false,
        }
    }
}

/// Byte range of one slot inside a round's cleartext.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRange {
    /// Offset of the slot's first byte.
    pub offset: usize,
    /// Slot length in bytes.
    pub len: usize,
}

/// The complete layout of one round's cleartext.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundLayout {
    /// Round number this layout belongs to.
    pub round: u64,
    /// Length of the request-bit region in bytes (⌈slots/8⌉).
    pub request_region_len: usize,
    /// Message-slot ranges, indexed by slot; `None` when the slot is closed.
    pub slots: Vec<Option<SlotRange>>,
    /// Total cleartext length for the round.
    pub total_len: usize,
}

impl RoundLayout {
    /// Bit index (within the whole cleartext) of a slot's request bit.
    pub fn request_bit_index(&self, slot: usize) -> usize {
        slot
    }

    /// Number of open message slots.
    pub fn open_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The payload a slot owner places in its open message slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotPayload {
    /// Desired slot length for the next round (0 closes the slot).
    pub next_len: u32,
    /// Shuffle-request field: non-zero triggers an accusation shuffle.
    pub shuffle_request: u16,
    /// The anonymous message body.
    pub message: Vec<u8>,
}

impl SlotPayload {
    /// A payload carrying a message and keeping the slot sized for a
    /// follow-up message of the same size.
    pub fn message(msg: &[u8], config: &SlotConfig) -> Self {
        SlotPayload {
            next_len: config.len_for_message(msg.len()) as u32,
            shuffle_request: 0,
            message: msg.to_vec(),
        }
    }

    /// A payload that closes the slot after this round.
    pub fn closing(msg: &[u8]) -> Self {
        SlotPayload {
            next_len: 0,
            shuffle_request: 0,
            message: msg.to_vec(),
        }
    }

    /// Serialize to the on-wire byte form (before padding).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + self.message.len());
        out.extend_from_slice(&self.next_len.to_be_bytes());
        out.extend_from_slice(&self.shuffle_request.to_be_bytes());
        out.extend_from_slice(&self.message);
        out
    }

    /// Parse from decoded padding output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < PAYLOAD_HEADER_LEN {
            return None;
        }
        Some(SlotPayload {
            next_len: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            shuffle_request: u16::from_be_bytes([bytes[4], bytes[5]]),
            message: bytes[PAYLOAD_HEADER_LEN..].to_vec(),
        })
    }

    /// Encode the payload into a slot wire image of exactly `slot_len` bytes
    /// using the self-randomizing padding.
    pub fn encode<R: RngCore + ?Sized>(&self, rng: &mut R, slot_len: usize) -> Option<Vec<u8>> {
        padding::encode(rng, &self.to_bytes(), slot_len)
    }
}

/// What a round's output said about one slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotOutput {
    /// The slot was closed this round.
    Closed,
    /// The slot was open but carried no message.
    Empty,
    /// The slot carried a well-formed payload.
    Message(SlotPayload),
    /// The slot bytes failed to decode — disruption or garbling.
    Corrupted,
}

/// Per-round summary produced by [`SlotSchedule::apply_round_output`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundOutput {
    /// The round this output belongs to.
    pub round: u64,
    /// Decoded state of each slot.
    pub slots: Vec<SlotOutput>,
    /// Slots whose request bit was set this round.
    pub requests: Vec<usize>,
    /// Slots that signalled a non-zero shuffle request.
    pub shuffle_requests: Vec<usize>,
}

impl RoundOutput {
    /// All well-formed messages delivered this round, as (slot, bytes) pairs.
    pub fn messages(&self) -> Vec<(usize, Vec<u8>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                SlotOutput::Message(p) if !p.message.is_empty() => Some((i, p.message.clone())),
                _ => None,
            })
            .collect()
    }

    /// Slots observed as corrupted this round.
    pub fn corrupted(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, SlotOutput::Corrupted).then_some(i))
            .collect()
    }
}

/// The deterministic slot schedule shared by every node in the group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSchedule {
    config: SlotConfig,
    states: Vec<SlotState>,
    round: u64,
}

impl SlotSchedule {
    /// Create the schedule for `num_slots` clients.  All message slots start
    /// closed, matching the paper ("Initially the message slot is closed,
    /// with length 0").
    pub fn new(num_slots: usize, config: SlotConfig) -> Self {
        SlotSchedule {
            config,
            states: vec![SlotState::closed(); num_slots],
            round: 0,
        }
    }

    /// Create a schedule whose slots all start open at the default length —
    /// used by benchmarks that measure steady-state rounds.
    pub fn new_all_open(num_slots: usize, config: SlotConfig) -> Self {
        let state = SlotState {
            length: config.default_open_len.max(config.min_open_len()),
            empty_streak: 0,
            pending_open: false,
        };
        SlotSchedule {
            config,
            states: vec![state; num_slots],
            round: 0,
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SlotConfig {
        &self.config
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.states.len()
    }

    /// The next round number this schedule will lay out.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current length of a slot (0 = closed).
    pub fn slot_len(&self, slot: usize) -> usize {
        self.states[slot].length
    }

    /// Compute the layout of the upcoming round.
    pub fn layout(&self) -> RoundLayout {
        let request_region_len = self.states.len().div_ceil(8);
        let mut offset = request_region_len;
        let mut slots = Vec::with_capacity(self.states.len());
        for state in &self.states {
            if state.length == 0 {
                slots.push(None);
            } else {
                slots.push(Some(SlotRange {
                    offset,
                    len: state.length,
                }));
                offset += state.length;
            }
        }
        RoundLayout {
            round: self.round,
            request_region_len,
            slots,
            total_len: offset,
        }
    }

    /// Digest a round's cleartext output: decode every open slot, note the
    /// request bits, and advance the slot states so the next call to
    /// [`Self::layout`] reflects opens, closes and length changes.
    pub fn apply_round_output(&mut self, layout: &RoundLayout, cleartext: &[u8]) -> RoundOutput {
        assert_eq!(
            layout.round, self.round,
            "layout is not for the current round"
        );
        assert_eq!(
            cleartext.len(),
            layout.total_len,
            "cleartext length mismatch"
        );

        let mut outputs = Vec::with_capacity(self.states.len());
        let mut requests = Vec::new();
        let mut shuffle_requests = Vec::new();

        for (slot, state) in self.states.iter_mut().enumerate() {
            // Request bit.
            let req = get_bit(cleartext, layout.request_bit_index(slot));
            if req {
                requests.push(slot);
            }

            let output = match layout.slots[slot] {
                None => SlotOutput::Closed,
                Some(range) => {
                    let wire = &cleartext[range.offset..range.offset + range.len];
                    match padding::decode(wire) {
                        Decoded::Empty => SlotOutput::Empty,
                        Decoded::Corrupted => SlotOutput::Corrupted,
                        Decoded::Message(bytes) => match SlotPayload::from_bytes(&bytes) {
                            Some(p) => SlotOutput::Message(p),
                            None => SlotOutput::Corrupted,
                        },
                    }
                }
            };

            // State transition.
            match &output {
                SlotOutput::Closed => {
                    if req || state.pending_open {
                        state.length = self.config.default_open_len.max(self.config.min_open_len());
                        state.pending_open = false;
                        state.empty_streak = 0;
                    }
                }
                SlotOutput::Empty | SlotOutput::Corrupted => {
                    state.empty_streak += 1;
                    if state.empty_streak > self.config.grace_rounds {
                        state.length = 0;
                        state.empty_streak = 0;
                    }
                    // A request bit seen while open refreshes the slot.
                    if req {
                        state.empty_streak = 0;
                    }
                }
                SlotOutput::Message(p) => {
                    state.empty_streak = 0;
                    state.length = self.config.clamp_len(p.next_len as usize);
                    if p.shuffle_request != 0 {
                        shuffle_requests.push(slot);
                    }
                }
            }
            // Remember an unserved request so a slot still opens even if the
            // owner's request bit raced with a closing slot.
            if req && state.length == 0 {
                state.pending_open = true;
            }
            outputs.push(output);
        }

        let out = RoundOutput {
            round: self.round,
            slots: outputs,
            requests,
            shuffle_requests,
        };
        self.round += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::set_bit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule(n: usize) -> SlotSchedule {
        SlotSchedule::new(n, SlotConfig::default())
    }

    #[test]
    fn initial_layout_has_only_request_bits() {
        let s = schedule(10);
        let layout = s.layout();
        assert_eq!(layout.request_region_len, 2);
        assert_eq!(layout.total_len, 2);
        assert_eq!(layout.open_slots(), 0);
        assert!(layout.slots.iter().all(|r| r.is_none()));
    }

    #[test]
    fn request_bit_opens_slot_next_round() {
        let mut s = schedule(8);
        let layout = s.layout();
        let mut cleartext = vec![0u8; layout.total_len];
        set_bit(&mut cleartext, 3, true); // slot 3 requests to open
        let out = s.apply_round_output(&layout, &cleartext);
        assert_eq!(out.requests, vec![3]);
        let next = s.layout();
        assert_eq!(next.open_slots(), 1);
        assert!(next.slots[3].is_some());
        assert_eq!(
            next.slots[3].unwrap().len,
            SlotConfig::default().default_open_len
        );
    }

    #[test]
    fn payload_round_trips_through_slot() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = SlotConfig::default();
        let mut s = SlotSchedule::new_all_open(4, config.clone());
        let layout = s.layout();
        let range = layout.slots[2].unwrap();
        let payload = SlotPayload::message(b"hello dissent", &config);
        let wire = payload.encode(&mut rng, range.len).unwrap();
        let mut cleartext = vec![0u8; layout.total_len];
        cleartext[range.offset..range.offset + range.len].copy_from_slice(&wire);
        let out = s.apply_round_output(&layout, &cleartext);
        assert_eq!(out.messages(), vec![(2usize, b"hello dissent".to_vec())]);
        assert!(out.shuffle_requests.is_empty());
    }

    #[test]
    fn next_len_resizes_and_zero_closes() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = SlotConfig::default();
        let mut s = SlotSchedule::new_all_open(2, config.clone());

        // Round 0: slot 0 requests a large slot for its next message.
        let layout = s.layout();
        let range = layout.slots[0].unwrap();
        let payload = SlotPayload {
            next_len: 4096,
            shuffle_request: 0,
            message: b"x".to_vec(),
        };
        let wire = payload.encode(&mut rng, range.len).unwrap();
        let mut ct = vec![0u8; layout.total_len];
        ct[range.offset..range.offset + range.len].copy_from_slice(&wire);
        s.apply_round_output(&layout, &ct);
        assert_eq!(s.slot_len(0), 4096);

        // Round 1: slot 0 closes itself.
        let layout = s.layout();
        let range = layout.slots[0].unwrap();
        assert_eq!(range.len, 4096);
        let wire = SlotPayload::closing(b"bye")
            .encode(&mut rng, range.len)
            .unwrap();
        let mut ct = vec![0u8; layout.total_len];
        ct[range.offset..range.offset + range.len].copy_from_slice(&wire);
        let out = s.apply_round_output(&layout, &ct);
        assert_eq!(out.messages(), vec![(0usize, b"bye".to_vec())]);
        assert_eq!(s.slot_len(0), 0);
        assert!(s.layout().slots[0].is_none());
    }

    #[test]
    fn silent_slot_closes_after_grace_rounds() {
        let config = SlotConfig {
            grace_rounds: 2,
            ..SlotConfig::default()
        };
        let mut s = SlotSchedule::new_all_open(1, config);
        for expected_open in [true, true, true, false] {
            let layout = s.layout();
            assert_eq!(layout.slots[0].is_some(), expected_open);
            let ct = vec![0u8; layout.total_len];
            s.apply_round_output(&layout, &ct);
        }
    }

    #[test]
    fn corrupted_slot_reported() {
        let mut s = SlotSchedule::new_all_open(2, SlotConfig::default());
        let layout = s.layout();
        let range = layout.slots[1].unwrap();
        let mut ct = vec![0u8; layout.total_len];
        // Random garbage that will not checksum.
        for (i, b) in ct[range.offset..range.offset + range.len]
            .iter_mut()
            .enumerate()
        {
            *b = (i % 251) as u8 ^ 0x5a;
        }
        let out = s.apply_round_output(&layout, &ct);
        assert_eq!(out.corrupted(), vec![1]);
    }

    #[test]
    fn shuffle_request_flag_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = SlotConfig::default();
        let mut s = SlotSchedule::new_all_open(3, config.clone());
        let layout = s.layout();
        let range = layout.slots[1].unwrap();
        let payload = SlotPayload {
            next_len: config.default_open_len as u32,
            shuffle_request: 0xbeef,
            message: Vec::new(),
        };
        let wire = payload.encode(&mut rng, range.len).unwrap();
        let mut ct = vec![0u8; layout.total_len];
        ct[range.offset..range.offset + range.len].copy_from_slice(&wire);
        let out = s.apply_round_output(&layout, &ct);
        assert_eq!(out.shuffle_requests, vec![1]);
    }

    #[test]
    fn layouts_are_identical_across_replicas() {
        // Two replicas fed the same outputs stay in lock-step — the schedule
        // is a pure function of history, as the protocol requires.
        let mut rng = StdRng::seed_from_u64(4);
        let config = SlotConfig::default();
        let mut a = SlotSchedule::new(5, config.clone());
        let mut b = SlotSchedule::new(5, config.clone());
        for round in 0..6u64 {
            let la = a.layout();
            let lb = b.layout();
            assert_eq!(la, lb);
            let mut ct = vec![0u8; la.total_len];
            // Slot (round % 5) requests to open each round; open slots carry
            // a message.
            set_bit(&mut ct, (round % 5) as usize, true);
            for (slot, range) in la.slots.iter().enumerate() {
                if let Some(r) = range {
                    let wire = SlotPayload::message(format!("m{slot}").as_bytes(), &config)
                        .encode(&mut rng, r.len)
                        .unwrap();
                    ct[r.offset..r.offset + r.len].copy_from_slice(&wire);
                }
            }
            let oa = a.apply_round_output(&la, &ct);
            let ob = b.apply_round_output(&lb, &ct);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn clamp_len_respects_bounds() {
        let config = SlotConfig::default();
        assert_eq!(config.clamp_len(0), 0);
        assert_eq!(config.clamp_len(1), config.min_open_len());
        assert_eq!(config.clamp_len(10_000_000), config.max_len);
        assert!(config.len_for_message(128) >= 128 + padding::OVERHEAD + PAYLOAD_HEADER_LEN);
    }
}
