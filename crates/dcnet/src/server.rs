//! Server side of one DC-net exchange (Algorithm 2).
//!
//! Servers collect client ciphertexts until their submission window closes,
//! exchange *inventories* (who submitted), agree on the composite client
//! list, XOR in the pads they share with exactly those clients, commit to
//! their server ciphertexts, reveal them, and finally XOR everything into
//! the round cleartext which they sign and push to clients.
//!
//! This module implements the computational steps as pure functions over
//! in-memory state; `dissent-core` drives them over the (simulated) network
//! and applies the timing policies.

use crate::pad::{accumulate_pads, xor_into, SharedSecret};
use dissent_crypto::sha256::{sha256_tagged, DIGEST_LEN};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a client within a group (its index in the group roster).
pub type ClientId = u32;
/// Identifier of a server within a group.
pub type ServerId = u32;

/// A server's view of one round: which clients submitted ciphertexts to it
/// directly and what those ciphertexts were.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SubmissionSet {
    /// Client ciphertexts received directly, keyed by client id.
    pub ciphertexts: BTreeMap<ClientId, Vec<u8>>,
}

impl SubmissionSet {
    /// Create an empty submission set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a client ciphertext (later submissions overwrite earlier ones,
    /// mirroring the prototype's latest-wins behaviour).
    pub fn insert(&mut self, client: ClientId, ciphertext: Vec<u8>) {
        self.ciphertexts.insert(client, ciphertext);
    }

    /// The inventory list `l_j` the server broadcasts.
    pub fn inventory(&self) -> Vec<ClientId> {
        self.ciphertexts.keys().copied().collect()
    }

    /// Number of clients that submitted to this server.
    pub fn len(&self) -> usize {
        self.ciphertexts.len()
    }

    /// True if no client submitted.
    pub fn is_empty(&self) -> bool {
        self.ciphertexts.is_empty()
    }
}

/// Deterministically trim duplicate submissions: a client that submitted to
/// several servers is kept only by the lowest-numbered server that received
/// it.  Returns the per-server trimmed lists `l'_j` and the composite list
/// `l = ∪_j l'_j` (Algorithm 2, step 3).
pub fn trim_inventories(
    inventories: &BTreeMap<ServerId, Vec<ClientId>>,
) -> (BTreeMap<ServerId, Vec<ClientId>>, Vec<ClientId>) {
    let mut assigned: BTreeMap<ClientId, ServerId> = BTreeMap::new();
    for (&server, list) in inventories {
        for &client in list {
            assigned.entry(client).or_insert(server);
        }
    }
    let mut trimmed: BTreeMap<ServerId, Vec<ClientId>> =
        inventories.keys().map(|&s| (s, Vec::new())).collect();
    for (&client, &server) in &assigned {
        trimmed
            .get_mut(&server)
            .expect("server present")
            .push(client);
    }
    let composite: Vec<ClientId> = assigned.keys().copied().collect();
    (trimmed, composite)
}

/// Compute a server's ciphertext for a round:
/// `s_j = (⊕_{i∈l} s_ij) ⊕ (⊕_{i∈l'_j} c_i)`.
///
/// * `composite` — the agreed composite client list `l`;
/// * `client_secrets` — the pad secrets `K_ij` this server shares with each
///   client (keyed by client id, must cover every member of `l`);
/// * `own_ciphertexts` — the ciphertexts of the clients assigned to this
///   server by [`trim_inventories`].
///
/// The pad expansion over N clients × L bytes dominates server round cost
/// (the Figure 7/8 "server processing" term), so it is fused (no per-client
/// pad buffer, keystream generated in 4-block strides by the SIMD-dispatched
/// ChaCha20 kernel) and sharded across the thread pool; per-shard
/// accumulators XOR-merge deterministically, making the output
/// byte-identical to a serial run for any thread count.
///
/// `own_ciphertexts` is generic over the byte-buffer type so callers can
/// hand in shared `Arc<[u8]>` ciphertexts without re-materializing them.
pub fn server_ciphertext<B: AsRef<[u8]>>(
    round: u64,
    total_len: usize,
    composite: &[ClientId],
    client_secrets: &BTreeMap<ClientId, SharedSecret>,
    own_ciphertexts: &BTreeMap<ClientId, B>,
) -> Vec<u8> {
    let secrets: Vec<SharedSecret> = composite
        .iter()
        .map(|client| {
            *client_secrets
                .get(client)
                .expect("missing shared secret for a client in the composite list")
        })
        .collect();
    let mut out = vec![0u8; total_len];
    accumulate_pads(&mut out, &secrets, round);
    for ct in own_ciphertexts.values() {
        let ct = ct.as_ref();
        assert_eq!(ct.len(), total_len, "client ciphertext length mismatch");
        xor_into(&mut out, ct);
    }
    out
}

/// Commitment to a server ciphertext: `C_j = HASH(s_j)` (Algorithm 2, step 3).
///
/// The commitment is bound to the round and server id so commitments cannot
/// be replayed across rounds or attributed to the wrong server.
pub fn commitment(round: u64, server: ServerId, ciphertext: &[u8]) -> [u8; DIGEST_LEN] {
    sha256_tagged(&[
        b"dissent-server-commit",
        &round.to_be_bytes(),
        &server.to_be_bytes(),
        ciphertext,
    ])
}

/// Verify a previously received commitment against the revealed ciphertext.
pub fn verify_commitment(
    round: u64,
    server: ServerId,
    ciphertext: &[u8],
    commit: &[u8; DIGEST_LEN],
) -> bool {
    &commitment(round, server, ciphertext) == commit
}

/// Byte range per task when combining server ciphertexts in parallel; the
/// work per byte is one XOR, so ranges are kept large.
const COMBINE_RANGE_BYTES: usize = 64 * 1024;

/// Combine all server ciphertexts into the round cleartext `m = ⊕_j s_j`.
///
/// The XOR fold is split across disjoint output ranges (not across the few
/// servers), so bulk rounds (128 KB × M servers) use every core; each byte
/// is owned by exactly one range, so the result cannot depend on
/// scheduling.
pub fn combine<B: AsRef<[u8]>>(
    total_len: usize,
    server_ciphertexts: &BTreeMap<ServerId, B>,
) -> Vec<u8> {
    for ct in server_ciphertexts.values() {
        assert_eq!(
            ct.as_ref().len(),
            total_len,
            "server ciphertext length mismatch"
        );
    }
    let parts: Vec<&[u8]> = server_ciphertexts.values().map(|v| v.as_ref()).collect();
    let mut out = vec![0u8; total_len];
    if rayon::current_num_threads() <= 1 || total_len < 2 * COMBINE_RANGE_BYTES {
        for part in &parts {
            xor_into(&mut out, part);
        }
        return out;
    }
    out.par_chunks_mut(COMBINE_RANGE_BYTES)
        .enumerate()
        .for_each(|(i, range)| {
            let offset = i * COMBINE_RANGE_BYTES;
            for part in &parts {
                xor_into(range, &part[offset..offset + range.len()]);
            }
        });
    out
}

/// The message digest each server signs in the certification step
/// (Algorithm 2, step 5): bound to the round, the composite client list and
/// the cleartext.
pub fn certification_digest(
    round: u64,
    composite: &[ClientId],
    cleartext: &[u8],
) -> [u8; DIGEST_LEN] {
    let client_bytes: Vec<u8> = composite.iter().flat_map(|c| c.to_be_bytes()).collect();
    sha256_tagged(&[
        b"dissent-round-certify",
        &round.to_be_bytes(),
        &client_bytes,
        cleartext,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientDcnet, Submission};
    use crate::slots::{SlotConfig, SlotPayload, SlotSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a toy group: `n` clients, `m` servers, fully-populated secrets.
    fn group(n: usize, m: usize) -> (Vec<ClientDcnet>, Vec<BTreeMap<ClientId, SharedSecret>>) {
        let mut clients = Vec::new();
        let mut server_maps: Vec<BTreeMap<ClientId, SharedSecret>> = vec![BTreeMap::new(); m];
        for i in 0..n {
            let mut secrets = Vec::new();
            for (j, map) in server_maps.iter_mut().enumerate() {
                let mut s = [0u8; 32];
                s[0] = i as u8;
                s[1] = j as u8;
                s[2] = 0xcc;
                secrets.push(s);
                map.insert(i as ClientId, s);
            }
            clients.push(ClientDcnet::new(i, secrets));
        }
        (clients, server_maps)
    }

    /// Run one full exchange in-memory with every client online.
    fn run_round(
        n: usize,
        m: usize,
        submitting: &[(usize, Vec<u8>)],
        offline: &[usize],
    ) -> (Vec<u8>, SlotSchedule) {
        let mut rng = StdRng::seed_from_u64(99);
        let config = SlotConfig::default();
        let schedule = SlotSchedule::new_all_open(n, config.clone());
        let layout = schedule.layout();
        let (clients, server_maps) = group(n, m);

        // Clients build ciphertexts; offline ones never submit.
        let mut per_server: Vec<SubmissionSet> = vec![SubmissionSet::new(); m];
        for (i, client) in clients.iter().enumerate() {
            if offline.contains(&i) {
                continue;
            }
            let submission = submitting
                .iter()
                .find(|(s, _)| *s == i)
                .map(|(_, msg)| Submission::message(SlotPayload::message(msg, &config)))
                .unwrap_or_else(Submission::null);
            let ct = client.ciphertext(&mut rng, &layout, &submission);
            // Client i submits to server i % m.
            per_server[i % m].insert(i as ClientId, ct.ciphertext);
        }

        // Servers exchange inventories and compute ciphertexts.
        let inventories: BTreeMap<ServerId, Vec<ClientId>> = per_server
            .iter()
            .enumerate()
            .map(|(j, s)| (j as ServerId, s.inventory()))
            .collect();
        let (trimmed, composite) = trim_inventories(&inventories);
        let mut server_cts = BTreeMap::new();
        for j in 0..m {
            let own: BTreeMap<ClientId, Vec<u8>> = trimmed[&(j as ServerId)]
                .iter()
                .map(|c| (*c, per_server[j].ciphertexts[c].clone()))
                .collect();
            let sct = server_ciphertext(
                layout.round,
                layout.total_len,
                &composite,
                &server_maps[j],
                &own,
            );
            server_cts.insert(j as ServerId, sct);
        }
        let cleartext = combine(layout.total_len, &server_cts);
        (cleartext, schedule)
    }

    #[test]
    fn single_sender_message_is_revealed() {
        let (cleartext, mut schedule) = run_round(5, 3, &[(2, b"whistleblow".to_vec())], &[]);
        let layout = schedule.layout();
        let out = schedule.apply_round_output(&layout, &cleartext);
        assert_eq!(out.messages(), vec![(2usize, b"whistleblow".to_vec())]);
    }

    #[test]
    fn multiple_senders_in_distinct_slots() {
        let (cleartext, mut schedule) = run_round(
            6,
            2,
            &[
                (0, b"alpha".to_vec()),
                (3, b"bravo".to_vec()),
                (5, b"charlie".to_vec()),
            ],
            &[],
        );
        let layout = schedule.layout();
        let out = schedule.apply_round_output(&layout, &cleartext);
        let msgs = out.messages();
        assert_eq!(msgs.len(), 3);
        assert!(msgs.contains(&(0, b"alpha".to_vec())));
        assert!(msgs.contains(&(3, b"bravo".to_vec())));
        assert!(msgs.contains(&(5, b"charlie".to_vec())));
    }

    #[test]
    fn offline_clients_do_not_block_the_round() {
        // Clients 1 and 4 vanish; the round still decodes the online sender's
        // message because servers only XOR pads for submitting clients.
        let (cleartext, mut schedule) = run_round(5, 3, &[(2, b"still here".to_vec())], &[1, 4]);
        let layout = schedule.layout();
        let out = schedule.apply_round_output(&layout, &cleartext);
        assert_eq!(out.messages(), vec![(2usize, b"still here".to_vec())]);
        // The offline clients' slots show up as empty, not corrupted.
        assert!(out.corrupted().is_empty());
    }

    #[test]
    fn trim_inventories_deduplicates() {
        let mut inv = BTreeMap::new();
        inv.insert(0 as ServerId, vec![1, 2, 3]);
        inv.insert(1 as ServerId, vec![2, 3, 4]);
        inv.insert(2 as ServerId, vec![5]);
        let (trimmed, composite) = trim_inventories(&inv);
        assert_eq!(composite, vec![1, 2, 3, 4, 5]);
        assert_eq!(trimmed[&0], vec![1, 2, 3]);
        assert_eq!(trimmed[&1], vec![4]);
        assert_eq!(trimmed[&2], vec![5]);
        // Every client appears exactly once across the trimmed lists.
        let total: usize = trimmed.values().map(|v| v.len()).sum();
        assert_eq!(total, composite.len());
    }

    #[test]
    fn commitments_bind_round_and_server() {
        let ct = vec![1u8, 2, 3];
        let c = commitment(5, 0, &ct);
        assert!(verify_commitment(5, 0, &ct, &c));
        assert!(!verify_commitment(6, 0, &ct, &c));
        assert!(!verify_commitment(5, 1, &ct, &c));
        assert!(!verify_commitment(5, 0, &[1, 2, 4], &c));
    }

    #[test]
    fn certification_digest_changes_with_inputs() {
        let a = certification_digest(1, &[1, 2, 3], b"clear");
        assert_ne!(a, certification_digest(2, &[1, 2, 3], b"clear"));
        assert_ne!(a, certification_digest(1, &[1, 2], b"clear"));
        assert_ne!(a, certification_digest(1, &[1, 2, 3], b"other"));
        assert_eq!(a, certification_digest(1, &[1, 2, 3], b"clear"));
    }

    #[test]
    fn submission_set_latest_wins() {
        let mut s = SubmissionSet::new();
        assert!(s.is_empty());
        s.insert(7, vec![1]);
        s.insert(7, vec![2]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ciphertexts[&7], vec![2]);
        assert_eq!(s.inventory(), vec![7]);
    }
}
